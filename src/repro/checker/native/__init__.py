"""Generated native (C) frontier kernels for the batch engine.

``generator`` emits a translation unit specialized to one machine
class, ``build`` compiles and caches it on disk, and ``loader`` wraps
the shared object in the :class:`~repro.checker.batch.BatchKernel`
interface.  Everything is a soft dependency: without a C compiler (or
with ``REPRO_NATIVE_DISABLE=1``) the batch engine silently keeps its
numpy kernel and results are identical.
"""

from repro.checker.native.build import (
    NativeBuildError,
    build_library,
    cache_root,
    find_compiler,
    source_key,
)
from repro.checker.native.generator import generate_source
from repro.checker.native.loader import (
    KERNEL_CHOICES,
    NativeCanonicalizer,
    NativeKernel,
    NativeKernelUnavailable,
    load_library,
    native_available,
    resolve_kernel,
    warn_kernel_fallback,
)

__all__ = [
    "KERNEL_CHOICES",
    "NativeBuildError",
    "NativeCanonicalizer",
    "NativeKernel",
    "NativeKernelUnavailable",
    "build_library",
    "cache_root",
    "find_compiler",
    "generate_source",
    "load_library",
    "native_available",
    "resolve_kernel",
    "source_key",
    "warn_kernel_fallback",
]
