"""Compile generated kernels into shared objects, cached on disk.

The cache key is a hash of the emitted translation unit itself —
machine layout, wiring tables, symmetry tables, and the generator
version are all *in* the text, so any change to any of them produces a
new key and a fresh compile; nothing else can invalidate stale
objects.  Artifacts live under ``$REPRO_NATIVE_CACHE`` (or
``$XDG_CACHE_HOME/repro-native``, or ``~/.cache/repro-native``) as
``rk-<key>.c`` / ``rk-<key>.so`` pairs; the ``.c`` file is kept beside
the object for debuggability.

Builds are concurrency-safe: each builder compiles to a private
temporary name and ``os.replace``\\ s it into place, so parallel
workers racing on the same spec at worst compile twice.
"""

from __future__ import annotations

import hashlib
import os
import shutil
import subprocess
from pathlib import Path
from typing import List, Optional


class NativeBuildError(RuntimeError):
    """The C compiler failed (or is missing) for a generated kernel."""


def cache_root() -> Path:
    """The directory holding compiled kernels (not created here)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-native"


def find_compiler() -> Optional[str]:
    """The first usable C compiler: ``$CC``, then cc, gcc, clang."""
    candidates: List[str] = []
    env_cc = os.environ.get("CC")
    if env_cc:
        candidates.append(env_cc)
    candidates.extend(["cc", "gcc", "clang"])
    for candidate in candidates:
        resolved = shutil.which(candidate)
        if resolved:
            return resolved
    return None


def source_key(source: str) -> str:
    """Stable cache key: sha256 of the translation unit text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:32]


def cached_library_for(meta_key: str) -> Optional[Path]:
    """A cached ``.so`` recorded under a spec-derived index key, if any.

    ``meta_key`` is :func:`repro.checker.native.generator.spec_cache_key`
    — a hash of the *inputs* to source generation rather than the
    emitted text.  On a warm cache this skips regenerating megabytes of
    C (the dominant per-process setup cost for symmetry kernels) just
    to recompute the source hash.  A missing or stale index entry
    returns ``None`` and the caller falls back to the generate-and-hash
    slow path, which re-records the mapping.
    """
    index = cache_root() / f"rk-idx-{meta_key}.txt"
    try:
        name = index.read_text(encoding="utf-8").strip()
    except OSError:
        return None
    if not name or "/" in name or not name.startswith("rk-"):
        return None
    shared_object = cache_root() / name
    return shared_object if shared_object.exists() else None


def record_library_for(meta_key: str, shared_object: Path) -> None:
    """Record ``meta_key`` -> ``shared_object.name`` in the cache index.

    Atomic (tmp + ``os.replace``) and best-effort: an unwritable cache
    just means the next process takes the slow path again.
    """
    root = cache_root()
    index = root / f"rk-idx-{meta_key}.txt"
    tmp = root / f"rk-idx-{meta_key}.{os.getpid()}.tmp"
    try:
        root.mkdir(parents=True, exist_ok=True)
        tmp.write_text(shared_object.name, encoding="utf-8")
        os.replace(tmp, index)
    except OSError:
        tmp.unlink(missing_ok=True)


def build_library(source: str) -> Path:
    """The compiled ``.so`` for ``source``, building it on cache miss."""
    key = source_key(source)
    root = cache_root()
    shared_object = root / f"rk-{key}.so"
    if shared_object.exists():
        return shared_object
    compiler = find_compiler()
    if compiler is None:
        raise NativeBuildError(
            "no C compiler found (tried $CC, cc, gcc, clang)"
        )
    root.mkdir(parents=True, exist_ok=True)
    c_path = root / f"rk-{key}.c"
    tmp_c = root / f"rk-{key}.{os.getpid()}.tmp.c"
    tmp_so = root / f"rk-{key}.{os.getpid()}.tmp.so"
    tmp_c.write_text(source, encoding="utf-8")
    command = [
        compiler,
        "-O2",
        "-shared",
        "-fPIC",
        "-o",
        str(tmp_so),
        str(tmp_c),
    ]
    try:
        completed = subprocess.run(
            command, capture_output=True, text=True, timeout=600
        )
    except (OSError, subprocess.TimeoutExpired) as exc:
        tmp_c.unlink(missing_ok=True)
        tmp_so.unlink(missing_ok=True)
        raise NativeBuildError(f"compiler invocation failed: {exc}") from exc
    if completed.returncode != 0:
        tmp_c.unlink(missing_ok=True)
        tmp_so.unlink(missing_ok=True)
        tail = (completed.stderr or "").strip().splitlines()[-8:]
        raise NativeBuildError(
            "kernel compilation failed"
            f" ({' '.join(command[:4])}...):\n" + "\n".join(tail)
        )
    os.replace(tmp_c, c_path)
    os.replace(tmp_so, shared_object)
    return shared_object
