"""Emit a C translation unit specialized to one packed snapshot machine.

The generated source is the native twin of :mod:`repro.checker.batch`:
successor expansion, the scan micro-step, splitmix64 fingerprinting,
orbit-min canonicalization (stabilizer permutation tables baked in as
``static const`` arrays), sorted in-level dedup, the vectorized output
check, and the C0/C1 bitmask phase of the POR ample selector.  Every
machine-dependent quantity — field offsets, masks, reset templates,
wiring shifts, footprint tables, symmetry gather tables — is burned
into the source as a ``#define`` or a constant array, so the compiler
sees loop bounds and shift distances as literals (the TLC/`pan`
specialize-then-compile move).

The module is deliberately free of numpy and of any build machinery:
it is a pure ``spec -> str`` function, which keeps it cheap to test
and lets the disk cache key on nothing but the emitted text (see
:mod:`repro.checker.native.build`).
"""

from __future__ import annotations

import hashlib
from array import array
from typing import TYPE_CHECKING, Dict, List, Mapping, Sequence, Tuple

from repro.checker.constants import (
    MASK64,
    SPLITMIX_GAMMA,
    SPLITMIX_MULT1,
    SPLITMIX_MULT2,
    SPLITMIX_SHIFT1,
    SPLITMIX_SHIFT2,
    SPLITMIX_SHIFT3,
)
from repro.checker.por import export_footprint_tables

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.checker.fast_snapshot import FastSnapshotSpec

#: Bump when the emitted code changes shape without a table change, so
#: stale cached objects are never dlopened against new wrappers.
GENERATOR_VERSION = 5


def _u64(value: int) -> str:
    """A C ``uint64_t`` literal (two's-complement truncated)."""
    return f"0x{value & MASK64:x}ULL"


def _array_u64(name: str, values: Sequence[int]) -> str:
    body = _wrap([_u64(value) for value in values])
    return (
        f"static const uint64_t {name}[{len(values)}] = {{\n{body}\n}};\n"
    )


def _array_i64(name: str, values: Sequence[int]) -> str:
    body = _wrap([f"{value}" for value in values])
    return (
        f"static const int64_t {name}[{len(values)}] = {{\n{body}\n}};\n"
    )


def _array_int_2d(name: str, rows: Sequence[Sequence[int]]) -> str:
    inner = ",\n".join(
        "    {" + ", ".join(str(v) for v in row) + "}" for row in rows
    )
    width = len(rows[0])
    return (
        f"static const int {name}[{len(rows)}][{width}] = {{\n{inner}\n}};\n"
    )


def _array_u64_2d(name: str, rows: Sequence[Sequence[int]]) -> str:
    inner = ",\n".join(
        "    {" + ", ".join(_u64(v) for v in row) + "}" for row in rows
    )
    width = len(rows[0])
    return (
        f"static const uint64_t {name}[{len(rows)}][{width}] ="
        f" {{\n{inner}\n}};\n"
    )


def _wrap(items: List[str], per_line: int = 8) -> str:
    lines = []
    for start in range(0, len(items), per_line):
        lines.append("    " + ", ".join(items[start : start + per_line]) + ",")
    return "\n".join(lines)


class _TablePool:
    """Content-deduplicating pool of baked ``uint64_t`` arrays.

    Stabilizer elements frequently share sub-tables (elements with the
    same input-bit renaming share their ``local_table``); emitting each
    distinct table once keeps the translation unit small.
    """

    def __init__(self) -> None:
        self._by_content: Dict[Tuple[int, ...], str] = {}
        self.chunks: List[str] = []

    def name_for(self, values: Sequence[int]) -> str:
        key = tuple(int(v) & MASK64 for v in values)
        found = self._by_content.get(key)
        if found is not None:
            return found
        name = f"RK_T{len(self._by_content)}"
        self._by_content[key] = name
        self.chunks.append(_array_u64(name, key))
        return name


def _emit_image_fn(
    index: int,
    table: Mapping[str, object],
    pool: _TablePool,
) -> str:
    """One stabilizer element -> ``static inline uint64_t rk_image_i``."""
    kind = str(table["kind"])
    lines = [f"static inline uint64_t rk_image_{index}(uint64_t s) {{"]
    if kind == "fused":
        register_table = pool.name_for(_as_ints(table["register_table"]))
        local_table = pool.name_for(_as_ints(table["local_table"]))
        block_mask = _u64(_as_int(table["block_mask"]))
        local_mask = _u64(_as_int(table["local_mask"]))
        terms = [f"{register_table}[s & {block_mask}]"]
        for dst, src in _as_pairs(table["moves"]):
            terms.append(
                f"({local_table}[(s >> {src}) & {local_mask}] << {dst})"
            )
        joined = "\n        | ".join(terms)
        lines.append(f"    return {joined};")
    elif kind == "general":
        record_map = pool.name_for(_as_ints(table["record_map"]))
        view_map = pool.name_for(_as_ints(table["view_map"]))
        reg_mask = _u64(_as_int(table["reg_mask"]))
        local_mask = _u64(_as_int(table["local_mask"]))
        k_mask = _u64(_as_int(table["k_mask"]))
        k_clear = _u64(_as_int(table["k_clear"]))
        lines.append("    uint64_t out = 0, loc;")
        for dst, src in _as_pairs(table["reg_moves"]):
            lines.append(
                f"    out |= {record_map}[(s >> {src}) & {reg_mask}]"
                f" << {dst};"
            )
        for dst, src in _as_pairs(table["moves"]):
            lines.append(f"    loc = (s >> {src}) & {local_mask};")
            lines.append(
                f"    out |= ((loc & {k_clear}) | {view_map}[loc & {k_mask}])"
                f" << {dst};"
            )
        lines.append("    return out;")
    else:  # pragma: no cover - the canonicalizer emits only these two
        raise ValueError(f"unknown element table kind: {kind!r}")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _as_int(value: object) -> int:
    if not isinstance(value, int):
        raise TypeError(f"expected int table entry, got {type(value)!r}")
    return value


def _as_ints(value: object) -> Tuple[int, ...]:
    if not isinstance(value, (list, tuple)):
        raise TypeError(f"expected int sequence, got {type(value)!r}")
    return tuple(_as_int(item) for item in value)


def _as_pairs(value: object) -> Tuple[Tuple[int, int], ...]:
    if not isinstance(value, (list, tuple)):
        raise TypeError(f"expected pair sequence, got {type(value)!r}")
    pairs: List[Tuple[int, int]] = []
    for item in value:
        if not isinstance(item, (list, tuple)) or len(item) != 2:
            raise TypeError(f"expected (dst, src) pair, got {item!r}")
        pairs.append((_as_int(item[0]), _as_int(item[1])))
    return tuple(pairs)


def generate_source(
    spec: "FastSnapshotSpec",
    element_tables: Sequence[Mapping[str, object]] = (),
) -> str:
    """The full C translation unit for ``spec``.

    ``element_tables`` is :attr:`FastCanonicalizer.element_tables` (the
    non-identity stabilizer elements); pass an empty sequence for
    symmetry-free kernels — ``rk_canonical`` then degenerates to the
    identity and ``rk_orbit_sizes`` to all-ones.
    """
    if spec.state_bits > 64:
        raise ValueError(
            f"native kernel requires states in one u64 word"
            f" (state_bits={spec.state_bits})"
        )
    wmask, popcount = export_footprint_tables(spec)
    n_elements = len(element_tables)

    out: List[str] = []
    emit = out.append
    emit(
        "/* Generated by repro.checker.native.generator"
        f" (v{GENERATOR_VERSION}); do not edit.\n"
        f" * machine: n={spec.n} m={spec.m} k={spec.k}"
        f" level_target={spec.level_target}"
        f" state_bits={spec.state_bits}"
        f" stabilizer_elements={n_elements}\n"
        f" * wiring: {spec.wiring!r}\n"
        " */\n"
        "#include <stdint.h>\n"
        "#include <stdlib.h>\n"
    )

    defines: List[Tuple[str, str]] = [
        ("RK_N", str(spec.n)),
        ("RK_M", str(spec.m)),
        ("RK_K", str(spec.k)),
        ("RK_STATE_BITS", str(spec.state_bits)),
        ("RK_N_ELEMENTS", str(n_elements)),
        ("RK_LEVEL_TARGET", _u64(spec.level_target)),
        ("RK_ML_SENTINEL", _u64(spec.ml_sentinel)),
        ("RK_PHASE_WRITE", "0ULL"),
        ("RK_PHASE_SCAN", "1ULL"),
        ("RK_PHASE_DONE", "2ULL"),
        ("RK_O_LEVEL", str(spec.o_level)),
        ("RK_O_UNWRITTEN", str(spec.o_unwritten)),
        ("RK_O_PHASE", str(spec.o_phase)),
        ("RK_O_SCANPOS", str(spec.o_scanpos)),
        ("RK_O_ALLMATCH", str(spec.o_allmatch)),
        ("RK_O_MINLEVEL", str(spec.o_minlevel)),
        ("RK_K_MASK", _u64(spec.k_mask)),
        ("RK_LV_MASK", _u64(spec.lv_mask)),
        ("RK_ML_MASK", _u64(spec.ml_mask)),
        ("RK_SP_MASK", _u64(spec.sp_mask)),
        ("RK_M_MASK", _u64(spec.m_mask)),
        ("RK_REG_MASK", _u64(spec.reg_mask)),
        ("RK_LOCAL_MASK", _u64(spec.local_mask)),
        ("RK_LEVEL_FIELD", _u64(spec._level_field)),
        ("RK_UNWRITTEN_FIELD", _u64(spec._unwritten_field)),
        ("RK_RECORD_FIELD", _u64(spec._record_field)),
        ("RK_SCAN_RESET", _u64(spec._scan_reset)),
        ("RK_WRITE_RESET", _u64(spec._write_reset)),
        ("RK_DONE_RESET", _u64(spec._done_reset)),
        ("RK_SM_GAMMA", _u64(SPLITMIX_GAMMA)),
        ("RK_SM_MULT1", _u64(SPLITMIX_MULT1)),
        ("RK_SM_MULT2", _u64(SPLITMIX_MULT2)),
        ("RK_SM_SHIFT1", str(SPLITMIX_SHIFT1)),
        ("RK_SM_SHIFT2", str(SPLITMIX_SHIFT2)),
        ("RK_SM_SHIFT3", str(SPLITMIX_SHIFT3)),
    ]
    for name, value in defines:
        emit(f"#define {name} {value}")
    emit("")

    emit(_array_i64("RK_LOCAL_OFFSET", list(spec.local_offsets)))
    emit(_array_u64("RK_LOCAL_CLEAR", list(spec._local_clear)))
    emit(_array_u64("RK_INPUT_MASK", list(spec.input_masks)))
    emit(_array_int_2d("RK_PHYS_OFFSET", [list(row) for row in spec._phys_offset]))
    emit(_array_u64_2d("RK_WRITE_CLEAR", [list(row) for row in spec._write_clear]))
    emit(_array_u64_2d("RK_WMASK", [list(row) for row in wmask]))
    emit(_array_i64("RK_POPCOUNT", list(popcount)))

    pool = _TablePool()
    image_fns = [
        _emit_image_fn(index, table, pool)
        for index, table in enumerate(element_tables)
    ]
    out.extend(pool.chunks)
    out.extend(image_fns)

    emit(_SCAN_ONE)
    emit(_EXPAND)
    emit(_SCAN_STEP)
    emit(_FINGERPRINT)
    emit(_emit_canonical(n_elements))
    emit(_UNIQUE_FIRST)
    emit(_PROBE_SORTED)
    emit(_VIOLATIONS)
    emit(_POR_C0C1)
    emit(_STATE_BITS_FN)
    return "\n".join(out)


def _emit_canonical(n_elements: int) -> str:
    """``rk_canonical`` / ``rk_orbit_sizes`` over the baked images."""
    if n_elements == 0:
        return (
            "void rk_canonical(const uint64_t *in, int64_t n,"
            " uint64_t *out) {\n"
            "    for (int64_t i = 0; i < n; i++) out[i] = in[i];\n"
            "}\n\n"
            "void rk_orbit_sizes(const uint64_t *in, int64_t n,"
            " int64_t *out) {\n"
            "    (void)in;\n"
            "    for (int64_t i = 0; i < n; i++) out[i] = 1;\n"
            "}\n"
        )
    canon_body = "\n".join(
        f"        img = rk_image_{index}(s);"
        "\n        if (img < best) best = img;"
        for index in range(n_elements)
    )
    orbit_fill = "\n".join(
        f"        orbit[{index + 1}] = rk_image_{index}(s);"
        for index in range(n_elements)
    )
    return (
        "void rk_canonical(const uint64_t *in, int64_t n, uint64_t *out) {\n"
        "    for (int64_t i = 0; i < n; i++) {\n"
        "        uint64_t s = in[i];\n"
        "        uint64_t best = s, img;\n"
        f"{canon_body}\n"
        "        out[i] = best;\n"
        "    }\n"
        "}\n\n"
        "void rk_orbit_sizes(const uint64_t *in, int64_t n, int64_t *out) {\n"
        "    uint64_t orbit[RK_N_ELEMENTS + 1];\n"
        "    for (int64_t i = 0; i < n; i++) {\n"
        "        uint64_t s = in[i];\n"
        "        orbit[0] = s;\n"
        f"{orbit_fill}\n"
        "        int64_t distinct = 0;\n"
        "        for (int a = 0; a <= RK_N_ELEMENTS; a++) {\n"
        "            int dup = 0;\n"
        "            for (int b = 0; b < a; b++)\n"
        "                if (orbit[b] == orbit[a]) { dup = 1; break; }\n"
        "            if (!dup) distinct++;\n"
        "        }\n"
        "        out[i] = distinct;\n"
        "    }\n"
        "}\n"
    )


# ----------------------------------------------------------------------
# Fixed (layout-parameterized via the #defines) function bodies
# ----------------------------------------------------------------------

_SCAN_ONE = """\
static inline uint64_t rk_scan_one(uint64_t state, uint64_t local, int pid) {
    uint64_t view = local & RK_K_MASK;
    uint64_t scan_pos = (local >> RK_O_SCANPOS) & RK_SP_MASK;
    uint64_t all_match = (local >> RK_O_ALLMATCH) & 1u;
    uint64_t min_level = (local >> RK_O_MINLEVEL) & RK_ML_MASK;
    uint64_t record = (state >> RK_PHYS_OFFSET[pid][scan_pos]) & RK_REG_MASK;
    uint64_t read_view = record & RK_K_MASK;
    if (all_match && read_view == view) {
        uint64_t read_level = record >> RK_K;
        if (read_level < min_level) min_level = read_level;
    } else {
        all_match = 0;
        view |= read_view;
        min_level = RK_ML_SENTINEL;
    }
    uint64_t new_local;
    if (scan_pos + 1 < RK_M) {
        new_local = view
            | (local & RK_LEVEL_FIELD)
            | (local & RK_UNWRITTEN_FIELD)
            | (RK_PHASE_SCAN << RK_O_PHASE)
            | ((scan_pos + 1) << RK_O_SCANPOS)
            | (all_match << RK_O_ALLMATCH)
            | (min_level << RK_O_MINLEVEL);
    } else {
        uint64_t new_level = all_match ? min_level + 1 : 0;
        if (new_level >= RK_LEVEL_TARGET) {
            uint64_t clip = new_level < RK_LV_MASK ? new_level : RK_LV_MASK;
            new_local = view | (clip << RK_O_LEVEL) | RK_DONE_RESET;
        } else {
            new_local = view
                | (new_level << RK_O_LEVEL)
                | (local & RK_UNWRITTEN_FIELD)
                | RK_WRITE_RESET;
        }
    }
    return (state & RK_LOCAL_CLEAR[pid]) | (new_local << RK_LOCAL_OFFSET[pid]);
}
"""

_EXPAND = """\
int64_t rk_expand_level(const uint64_t *frontier, int64_t n_states,
                        const int64_t *selected, uint64_t *out_succ,
                        int64_t *out_counts) {
    uint64_t *out = out_succ;
    for (int64_t i = 0; i < n_states; i++) {
        uint64_t state = frontier[i];
        int64_t sel = selected ? selected[i] : -1;
        int64_t count = 0;
        if (sel >= -1) {
            for (int pid = 0; pid < RK_N; pid++) {
                if (sel >= 0 && sel != (int64_t)pid) continue;
                uint64_t local =
                    (state >> RK_LOCAL_OFFSET[pid]) & RK_LOCAL_MASK;
                uint64_t phase = (local >> RK_O_PHASE) & 3u;
                if (phase == RK_PHASE_DONE) continue;
                if (phase == RK_PHASE_WRITE) {
                    uint64_t record = local & RK_RECORD_FIELD;
                    uint64_t unwritten =
                        (local >> RK_O_UNWRITTEN) & RK_M_MASK;
                    for (int reg = 0; reg < RK_M; reg++) {
                        if (!((unwritten >> reg) & 1u)) continue;
                        uint64_t remaining = unwritten & ~(1ULL << reg);
                        if (remaining == 0) remaining = RK_M_MASK;
                        uint64_t new_local = record
                            | (remaining << RK_O_UNWRITTEN) | RK_SCAN_RESET;
                        out[count++] = (state & RK_WRITE_CLEAR[pid][reg])
                            | (record << RK_PHYS_OFFSET[pid][reg])
                            | (new_local << RK_LOCAL_OFFSET[pid]);
                    }
                } else {
                    out[count++] = rk_scan_one(state, local, pid);
                }
            }
        }
        out_counts[i] = count;
        out += count;
    }
    return (int64_t)(out - out_succ);
}
"""

_SCAN_STEP = """\
void rk_scan_step(const uint64_t *states, const uint64_t *locs, int64_t n,
                  int64_t pid, uint64_t *out) {
    for (int64_t i = 0; i < n; i++)
        out[i] = rk_scan_one(states[i], locs[i], (int)pid);
}
"""

_FINGERPRINT = """\
static inline uint64_t rk_splitmix64(uint64_t v) {
    v = (v ^ (v >> RK_SM_SHIFT1)) * RK_SM_MULT1;
    v = (v ^ (v >> RK_SM_SHIFT2)) * RK_SM_MULT2;
    return v ^ (v >> RK_SM_SHIFT3);
}

void rk_fingerprint(const uint64_t *in, int64_t n, uint64_t *out) {
    for (int64_t i = 0; i < n; i++)
        out[i] = rk_splitmix64(in[i] ^ RK_SM_GAMMA);
}
"""

_UNIQUE_FIRST = """\
int64_t rk_unique_first(const uint64_t *keys, int64_t n, uint64_t *out_keys,
                        int64_t *out_first) {
    if (n <= 0) return 0;
    /* One scan feeds both fast paths: sorted input skips the sort
     * entirely, and the maximum key bounds how many radix passes the
     * unsorted path needs (states and fingerprints rarely fill all
     * eight bytes). */
    int already_sorted = 1;
    uint64_t maxk = keys[0];
    for (int64_t i = 1; i < n; i++) {
        if (keys[i] < keys[i - 1]) already_sorted = 0;
        if (keys[i] > maxk) maxk = keys[i];
    }
    if (already_sorted) {
        /* Sorted input: run starts are already the minimal original
         * positions, so dedup is a single linear pass. */
        int64_t u = 0;
        for (int64_t i = 0; i < n; i++) {
            if (i == 0 || keys[i] != keys[i - 1]) {
                out_keys[u] = keys[i];
                out_first[u] = i;
                u++;
            }
        }
        return u;
    }
    uint64_t *ka = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
    uint64_t *kb = (uint64_t *)malloc((size_t)n * sizeof(uint64_t));
    int64_t *ia = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    int64_t *ib = (int64_t *)malloc((size_t)n * sizeof(int64_t));
    if (!ka || !kb || !ia || !ib) {
        free(ka); free(kb); free(ia); free(ib);
        return -1;
    }
    for (int64_t i = 0; i < n; i++) { ka[i] = keys[i]; ia[i] = i; }
    /* Stable LSD radix sort on (key, original index): stability makes
     * each run's first entry carry the minimal original position.
     * Byte digits keep the scatter to 256 open streams (wider digits
     * measured slower here — 64Ki streams thrash the cache), the
     * maximum key trims passes the keys never reach, digits the whole
     * level agrees on are skipped, and all eight histograms are built
     * in one scan instead of one per pass. */
    int passes = 1;
    while (passes < 8 && (maxk >> (8 * passes)) != 0) passes++;
    int64_t hist[8][256];
    for (int p = 0; p < passes; p++)
        for (int b = 0; b < 256; b++) hist[p][b] = 0;
    for (int64_t i = 0; i < n; i++) {
        uint64_t v = ka[i];
        for (int p = 0; p < passes; p++) hist[p][(v >> (8 * p)) & 0xff]++;
    }
    for (int pass = 0; pass < passes; pass++) {
        int shift = pass * 8;
        int64_t *count = hist[pass];
        if (count[(ka[0] >> shift) & 0xff] == n)
            continue; /* constant digit */
        int64_t offset = 0;
        for (int b = 0; b < 256; b++) {
            int64_t c = count[b];
            count[b] = offset;
            offset += c;
        }
        for (int64_t i = 0; i < n; i++) {
            int64_t dst = count[(ka[i] >> shift) & 0xff]++;
            kb[dst] = ka[i];
            ib[dst] = ia[i];
        }
        uint64_t *tk = ka; ka = kb; kb = tk;
        int64_t *ti = ia; ia = ib; ib = ti;
    }
    int64_t u = 0;
    for (int64_t i = 0; i < n; i++) {
        if (i == 0 || ka[i] != ka[i - 1]) {
            out_keys[u] = ka[i];
            out_first[u] = ia[i];
            u++;
        }
    }
    free(ka); free(kb); free(ia); free(ib);
    return u;
}
"""

_PROBE_SORTED = """\
void rk_probe_sorted(const uint64_t *haystack, int64_t h_n,
                     const uint64_t *values, int64_t n,
                     unsigned char *out_present, int64_t *out_at) {
    /* Both sides ascending, so one merge walk replaces per-value
     * binary search: out_at[i] is searchsorted-left(haystack,
     * values[i]) and the cursor never moves backwards. */
    int64_t j = 0;
    for (int64_t i = 0; i < n; i++) {
        uint64_t v = values[i];
        while (j < h_n && haystack[j] < v) j++;
        out_at[i] = j;
        out_present[i] = (unsigned char)(j < h_n && haystack[j] == v);
    }
}
"""

_VIOLATIONS = """\
void rk_violations(const uint64_t *states, int64_t n, unsigned char *out) {
    for (int64_t i = 0; i < n; i++) {
        uint64_t state = states[i];
        uint64_t views[RK_N];
        int done[RK_N];
        int bad = 0;
        for (int pid = 0; pid < RK_N; pid++) {
            uint64_t local = (state >> RK_LOCAL_OFFSET[pid]) & RK_LOCAL_MASK;
            done[pid] = ((local >> RK_O_PHASE) & 3u) == RK_PHASE_DONE;
            views[pid] = local & RK_K_MASK;
            if (done[pid] && (views[pid] & RK_INPUT_MASK[pid]) == 0) bad = 1;
        }
        for (int a = 0; a < RK_N && !bad; a++) {
            if (!done[a]) continue;
            for (int b = a + 1; b < RK_N; b++) {
                if (!done[b]) continue;
                uint64_t meet = views[a] & views[b];
                if (meet != views[a] && meet != views[b]) { bad = 1; break; }
            }
        }
        out[i] = (unsigned char)bad;
    }
}
"""

_POR_C0C1 = """\
void rk_por_c0c1(const uint64_t *frontier, int64_t n_states,
                 unsigned char *out_qualified, int64_t *out_nsucc,
                 unsigned char *out_is_scan, int64_t *out_total) {
    for (int64_t i = 0; i < n_states; i++) {
        uint64_t state = frontier[i];
        uint64_t w[RK_N], r[RK_N];
        int64_t cnt[RK_N];
        int active = 0;
        int64_t total = 0;
        for (int pid = 0; pid < RK_N; pid++) {
            uint64_t local = (state >> RK_LOCAL_OFFSET[pid]) & RK_LOCAL_MASK;
            uint64_t phase = (local >> RK_O_PHASE) & 3u;
            int writing = phase == RK_PHASE_WRITE;
            int scanning = phase == RK_PHASE_SCAN;
            uint64_t unwritten = (local >> RK_O_UNWRITTEN) & RK_M_MASK;
            w[pid] = writing ? RK_WMASK[pid][unwritten] : 0;
            r[pid] = scanning ? RK_M_MASK : 0;
            cnt[pid] = (writing ? RK_POPCOUNT[unwritten] : 0)
                + (scanning ? 1 : 0);
            out_nsucc[(int64_t)pid * n_states + i] = cnt[pid];
            out_is_scan[(int64_t)pid * n_states + i] =
                (unsigned char)scanning;
            if (writing || scanning) active++;
            total += cnt[pid];
        }
        out_total[i] = total;
        int eligible = active >= 2;
        for (int pid = 0; pid < RK_N; pid++) {
            int conflict = 0;
            for (int other = 0; other < RK_N; other++) {
                if (other == pid) continue;
                uint64_t clash = (w[pid] & (w[other] | r[other]))
                    | (r[pid] & w[other]);
                if (clash != 0) { conflict = 1; break; }
            }
            out_qualified[(int64_t)pid * n_states + i] =
                (unsigned char)(cnt[pid] > 0 && eligible && !conflict);
        }
    }
}
"""

_STATE_BITS_FN = """\
int64_t rk_state_bits(void) {
    return RK_STATE_BITS;
}
"""


def spec_cache_key(
    spec: "FastSnapshotSpec",
    element_tables: Sequence[Mapping[str, object]] = (),
) -> str:
    """Disk-cache index key for ``spec`` without generating the source.

    :func:`generate_source` is a deterministic pure function of the
    machine parameters, the stabilizer element tables, and the module
    constants (versioned by :data:`GENERATOR_VERSION`), so hashing
    those inputs identifies the emitted translation unit without
    re-emitting megabytes of C per process.  The build cache uses this
    as a fast index in front of the source-hash key (see
    :func:`repro.checker.native.build.cached_library_for`); a stale or
    missing index entry merely falls back to the slow path, so the key
    never needs to be *collision-proof* against adversaries — sha256
    over the full parameter tuple is far beyond sufficient.
    """
    digest = hashlib.sha256()
    digest.update(
        repr(
            (
                GENERATOR_VERSION,
                spec.n,
                spec.m,
                spec.k,
                spec.state_bits,
                spec.level_target,
                spec.inputs,
                spec.wiring,
            )
        ).encode()
    )
    for table in element_tables:
        for name in sorted(table):
            value = table[name]
            digest.update(b"\x00")
            digest.update(name.encode())
            digest.update(b"\x01")
            if isinstance(value, list):
                # int tables are by far the bulk of the payload; pack
                # them at C speed and let anything else (negative or
                # non-int entries) drop to repr
                try:
                    digest.update(array("Q", value).tobytes())
                    continue
                except (TypeError, OverflowError):
                    pass
            digest.update(repr(value).encode())
    return digest.hexdigest()[:32]
