"""Load compiled kernels and wrap them in the batch-kernel interface.

Two dynamic-loading backends share one signature table: cffi in ABI
mode (``ffi.cdef`` + ``ffi.dlopen`` — no ``Python.h`` needed) when
cffi is importable, plain ``ctypes.CDLL`` otherwise.  Both receive
numpy buffer addresses (``array.ctypes.data``) as integers, so the
wrappers below are backend-agnostic.

:class:`NativeKernel` subclasses
:class:`~repro.checker.batch.BatchKernel` and overrides exactly the
hot methods the generated translation unit implements — expansion,
the scan micro-step, fingerprinting, in-level dedup, the vectorized
safety mask, canonicalization, and the C0/C1 selector phase — so the
level loop, the visited set, the stores, and the POR phase-2 logic
are shared verbatim with the numpy kernel.  Every override is
bit-identical to its numpy twin by construction (same tables, same
arithmetic, same ordering), which is what lets the conformance matrix
demand field-identical results rather than mere verdict agreement.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple

try:  # numpy is a soft dependency of the whole batch stack
    import numpy as np
except ImportError:  # pragma: no cover - exercised via native_available
    np = None  # type: ignore[assignment]

from repro.checker.batch import BatchKernel
from repro.checker.native.build import (
    NativeBuildError,
    build_library,
    cached_library_for,
    find_compiler,
    record_library_for,
)
from repro.checker.native.generator import generate_source, spec_cache_key

if TYPE_CHECKING:
    from numpy.typing import NDArray

    from repro.checker.fast_snapshot import FastSnapshotSpec
    from repro.checker.symmetry import FastCanonicalizer

    U64Array = NDArray[np.uint64]
    BoolArray = NDArray[np.bool_]
    I64Array = NDArray[np.int64]

#: Kernel choices accepted everywhere a kernel can be named.
KERNEL_CHOICES = ("auto", "numpy", "native")


class NativeKernelUnavailable(RuntimeError):
    """The native kernel was requested but cannot be provided here."""


def native_available() -> bool:
    """True when a native kernel could actually be built and loaded.

    Requires numpy (the wrappers exchange numpy buffers), a C compiler
    on PATH, and no explicit opt-out via ``REPRO_NATIVE_DISABLE=1``
    (the test seam for the degradation paths).
    """
    if os.environ.get("REPRO_NATIVE_DISABLE") == "1":
        return False
    if np is None:
        return False
    return find_compiler() is not None


def resolve_kernel(requested: str) -> str:
    """The effective kernel name for a requested one.

    ``auto`` picks ``native`` when available, else ``numpy``; an
    explicit ``native`` also degrades to ``numpy`` when unavailable
    (library callers stay silent — service workers on heterogeneous
    hosts must not crash; the CLI warns via
    :func:`warn_kernel_fallback`).
    """
    if requested not in KERNEL_CHOICES:
        raise ValueError(
            f"unknown kernel {requested!r}; choose one of"
            f" {', '.join(KERNEL_CHOICES)}"
        )
    if requested in ("auto", "native"):
        return "native" if native_available() else "numpy"
    return "numpy"


_warned_fallback = False


def warn_kernel_fallback() -> None:
    """One stderr warning per process when ``native`` degrades."""
    global _warned_fallback
    if _warned_fallback:
        return
    _warned_fallback = True
    import sys

    print(
        "warning: --kernel native unavailable (no C compiler, no numpy,"
        " or REPRO_NATIVE_DISABLE=1); falling back to the numpy batch"
        " kernel — results are identical, only slower",
        file=sys.stderr,
    )


# ----------------------------------------------------------------------
# Library loading: one signature table, two backends
# ----------------------------------------------------------------------

#: name -> (return C type, argument C types).  Pointer arguments are
#: passed as integer buffer addresses (``ndarray.ctypes.data``); 0 is
#: NULL.
_SIGNATURES: Dict[str, Tuple[str, Tuple[str, ...]]] = {
    "rk_state_bits": ("int64_t", ()),
    "rk_expand_level": (
        "int64_t",
        (
            "const uint64_t *",
            "int64_t",
            "const int64_t *",
            "uint64_t *",
            "int64_t *",
        ),
    ),
    "rk_scan_step": (
        "void",
        ("const uint64_t *", "const uint64_t *", "int64_t", "int64_t",
         "uint64_t *"),
    ),
    "rk_fingerprint": (
        "void",
        ("const uint64_t *", "int64_t", "uint64_t *"),
    ),
    "rk_canonical": (
        "void",
        ("const uint64_t *", "int64_t", "uint64_t *"),
    ),
    "rk_orbit_sizes": (
        "void",
        ("const uint64_t *", "int64_t", "int64_t *"),
    ),
    "rk_unique_first": (
        "int64_t",
        ("const uint64_t *", "int64_t", "uint64_t *", "int64_t *"),
    ),
    "rk_probe_sorted": (
        "void",
        (
            "const uint64_t *",
            "int64_t",
            "const uint64_t *",
            "int64_t",
            "unsigned char *",
            "int64_t *",
        ),
    ),
    "rk_violations": (
        "void",
        ("const uint64_t *", "int64_t", "unsigned char *"),
    ),
    "rk_por_c0c1": (
        "void",
        (
            "const uint64_t *",
            "int64_t",
            "unsigned char *",
            "int64_t *",
            "unsigned char *",
            "int64_t *",
        ),
    ),
}


class NativeLibrary:
    """A loaded kernel: ``call(name, *int_args)`` with int pointers."""

    def __init__(self, fns: Dict[str, Callable[..., Any]]) -> None:
        self._fns = fns

    def call(self, name: str, *args: int) -> int:
        result = self._fns[name](*args)
        return 0 if result is None else int(result)


def _open_cffi(path: str) -> NativeLibrary:
    import cffi

    ffi = cffi.FFI()
    declarations = []
    for name, (ret, args) in _SIGNATURES.items():
        arg_list = ", ".join(args) if args else "void"
        declarations.append(f"{ret} {name}({arg_list});")
    ffi.cdef("\n".join(declarations))
    lib = ffi.dlopen(path)
    fns: Dict[str, Callable[..., Any]] = {}
    for name, (_ret, args) in _SIGNATURES.items():
        raw = getattr(lib, name)

        def call(
            *values: int,
            _raw: Any = raw,
            _args: Tuple[str, ...] = args,
            _cast: Any = ffi.cast,
        ) -> Any:
            converted = [
                _cast(ctype, value) if ctype.endswith("*") else value
                for ctype, value in zip(_args, values)
            ]
            return _raw(*converted)

        fns[name] = call
    return NativeLibrary(fns)


def _open_ctypes(path: str) -> NativeLibrary:
    import ctypes

    scalar = {"int64_t": ctypes.c_int64, "uint64_t": ctypes.c_uint64}
    lib = ctypes.CDLL(path)
    fns: Dict[str, Callable[..., Any]] = {}
    for name, (ret, args) in _SIGNATURES.items():
        fn = getattr(lib, name)
        fn.restype = None if ret == "void" else scalar[ret]
        fn.argtypes = [
            ctypes.c_void_p if ctype.endswith("*") else scalar[ctype]
            for ctype in args
        ]
        fns[name] = fn
    return NativeLibrary(fns)


#: Loaded libraries by shared-object path, so repeated explores of the
#: same machine class reuse one dlopen.
_loaded: Dict[str, NativeLibrary] = {}


def _load_path(path: str) -> NativeLibrary:
    """dlopen ``path`` (cffi preferred), memoized per process."""
    cached = _loaded.get(path)
    if cached is not None:
        return cached
    try:
        import cffi  # noqa: F401

        library = _open_cffi(path)
    except ImportError:
        library = _open_ctypes(path)
    _loaded[path] = library
    return library


def load_library(source: str) -> NativeLibrary:
    """Compile (cache-aware) and dlopen the kernel for ``source``."""
    return _load_path(str(build_library(source)))


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------


class NativeCanonicalizer:
    """Orbit reduction through the baked stabilizer tables."""

    def __init__(self, library: NativeLibrary, order: int) -> None:
        self._lib = library
        self.order = order

    def canonical_many(self, states: "U64Array") -> "U64Array":
        n = int(states.size)
        out = np.empty(n, dtype=np.uint64)
        if n:
            states = np.ascontiguousarray(states, dtype=np.uint64)
            self._lib.call(
                "rk_canonical", states.ctypes.data, n, out.ctypes.data
            )
        return out

    def orbit_sizes(self, states: "U64Array") -> "I64Array":
        n = int(states.size)
        out = np.empty(n, dtype=np.int64)
        if n:
            states = np.ascontiguousarray(states, dtype=np.uint64)
            self._lib.call(
                "rk_orbit_sizes", states.ctypes.data, n, out.ctypes.data
            )
        return out


class NativeKernel(BatchKernel):
    """The compiled twin of :class:`~repro.checker.batch.BatchKernel`.

    Construction generates the specialized C source for ``spec`` (with
    ``canonicalizer``'s stabilizer tables baked in when given and
    non-trivial), compiles it through the disk cache, and dlopens the
    result; :exc:`NativeKernelUnavailable` or
    :exc:`~repro.checker.native.build.NativeBuildError` signal the
    caller to fall back to the numpy kernel.
    """

    kernel_name = "native"

    def __init__(
        self,
        spec: "FastSnapshotSpec",
        canonicalizer: Optional["FastCanonicalizer"] = None,
    ) -> None:
        super().__init__(spec)
        if not native_available():
            raise NativeKernelUnavailable(
                "native kernel unavailable: needs numpy and a C compiler"
                " (and REPRO_NATIVE_DISABLE unset)"
            )
        baked: Tuple[Any, ...] = ()
        if canonicalizer is not None and not canonicalizer.trivial:
            baked = tuple(canonicalizer.element_tables)
        self._baked_for = canonicalizer if baked else None
        # Warm-cache fast path: a spec-derived index key finds the
        # compiled object without regenerating the (multi-megabyte,
        # for symmetry kernels) C source just to hash it.
        meta_key = spec_cache_key(spec, baked)
        cached_so = cached_library_for(meta_key)
        if cached_so is not None:
            self._lib = _load_path(str(cached_so))
        else:
            shared_object = build_library(generate_source(spec, baked))
            record_library_for(meta_key, shared_object)
            self._lib = _load_path(str(shared_object))
        if self._lib.call("rk_state_bits") != spec.state_bits:
            raise NativeKernelUnavailable(
                "compiled kernel does not match this spec's layout"
            )

    # -- expansion -----------------------------------------------------
    def expand_level(
        self,
        frontier: "U64Array",
        selected: Optional["I64Array"] = None,
    ) -> Tuple["U64Array", "I64Array"]:
        spec = self.spec
        n_states = int(frontier.shape[0])
        counts = np.zeros(n_states, dtype=np.int64)
        if n_states == 0:
            return np.empty(0, dtype=np.uint64), counts
        frontier = np.ascontiguousarray(frontier, dtype=np.uint64)
        out = np.empty(n_states * spec.n * spec.m, dtype=np.uint64)
        if selected is None:
            selected_address = 0
        else:
            selected = np.ascontiguousarray(selected, dtype=np.int64)
            selected_address = selected.ctypes.data
        total = self._lib.call(
            "rk_expand_level",
            frontier.ctypes.data,
            n_states,
            selected_address,
            out.ctypes.data,
            counts.ctypes.data,
        )
        return out[:total], counts

    def _scan_step(
        self,
        states: "U64Array",
        loc: "U64Array",
        pid: int,
    ) -> "U64Array":
        n = int(states.size)
        out = np.empty(n, dtype=np.uint64)
        if n:
            states = np.ascontiguousarray(states, dtype=np.uint64)
            loc = np.ascontiguousarray(loc, dtype=np.uint64)
            self._lib.call(
                "rk_scan_step",
                states.ctypes.data,
                loc.ctypes.data,
                n,
                pid,
                out.ctypes.data,
            )
        return out

    # -- keys ----------------------------------------------------------
    def fingerprint_many(self, states: "U64Array") -> "U64Array":
        n = int(states.size)
        out = np.empty(n, dtype=np.uint64)
        if n:
            states = np.ascontiguousarray(states, dtype=np.uint64)
            self._lib.call(
                "rk_fingerprint", states.ctypes.data, n, out.ctypes.data
            )
        return out

    def unique_first(
        self, keys: "U64Array"
    ) -> Tuple["U64Array", "I64Array"]:
        n = int(keys.size)
        if n == 0:
            return keys, np.empty(0, dtype=np.intp)
        keys = np.ascontiguousarray(keys, dtype=np.uint64)
        out_keys = np.empty(n, dtype=np.uint64)
        out_first = np.empty(n, dtype=np.int64)
        unique = self._lib.call(
            "rk_unique_first",
            keys.ctypes.data,
            n,
            out_keys.ctypes.data,
            out_first.ctypes.data,
        )
        if unique < 0:  # allocation failure inside the radix sort
            return super().unique_first(keys)
        return out_keys[:unique], out_first[:unique]

    def probe_sorted(
        self, sorted_keys: "U64Array", values: "U64Array"
    ) -> Tuple["BoolArray", "I64Array"]:
        n = int(values.size)
        present = np.empty(n, dtype=np.uint8)
        at = np.empty(n, dtype=np.int64)
        if n:
            sorted_keys = np.ascontiguousarray(sorted_keys, dtype=np.uint64)
            values = np.ascontiguousarray(values, dtype=np.uint64)
            self._lib.call(
                "rk_probe_sorted",
                sorted_keys.ctypes.data,
                int(sorted_keys.size),
                values.ctypes.data,
                n,
                present.ctypes.data,
                at.ctypes.data,
            )
        return present.view(np.bool_), at

    # -- safety --------------------------------------------------------
    def violations(self, states: "U64Array") -> "BoolArray":
        n = int(states.size)
        out = np.empty(n, dtype=np.uint8)
        if n:
            states = np.ascontiguousarray(states, dtype=np.uint64)
            self._lib.call(
                "rk_violations", states.ctypes.data, n, out.ctypes.data
            )
        return out.view(np.bool_)

    # -- POR phase 1 ---------------------------------------------------
    def por_c0c1(
        self, frontier: "U64Array", tables: Any
    ) -> Tuple["BoolArray", "I64Array", "BoolArray", "I64Array"]:
        n = self.spec.n
        n_states = int(frontier.shape[0])
        qualified = np.zeros((n, n_states), dtype=np.uint8)
        nsucc = np.zeros((n, n_states), dtype=np.int64)
        is_scan = np.zeros((n, n_states), dtype=np.uint8)
        total = np.zeros(n_states, dtype=np.int64)
        if n_states:
            frontier = np.ascontiguousarray(frontier, dtype=np.uint64)
            self._lib.call(
                "rk_por_c0c1",
                frontier.ctypes.data,
                n_states,
                qualified.ctypes.data,
                nsucc.ctypes.data,
                is_scan.ctypes.data,
                total.ctypes.data,
            )
        return qualified.view(np.bool_), nsucc, is_scan.view(np.bool_), total

    # -- symmetry ------------------------------------------------------
    def make_canonicalizer(
        self, canonicalizer: Optional["FastCanonicalizer"]
    ) -> Optional[Any]:
        if canonicalizer is None or canonicalizer.trivial:
            return None
        if canonicalizer is self._baked_for:
            return NativeCanonicalizer(self._lib, canonicalizer.order)
        # Tables for a different canonicalizer were not baked into this
        # translation unit; serve them through the numpy gather path.
        return super().make_canonicalizer(canonicalizer)


__all__ = [
    "KERNEL_CHOICES",
    "NativeBuildError",
    "NativeCanonicalizer",
    "NativeKernel",
    "NativeKernelUnavailable",
    "NativeLibrary",
    "load_library",
    "native_available",
    "resolve_kernel",
    "warn_kernel_fallback",
]
