"""Ample-set partial-order reduction for the write-scan machines.

Symmetry (:mod:`repro.checker.symmetry`) quotients *states*; this
module quotients *schedules*.  Two steps of different processors are
*independent* when their current operations touch disjoint physical
registers — computable per state from the same precomputed wiring
tables the canonicalizer uses, because each processor's private wiring
``sigma_p`` fixes which physical cell a local operation lands on:

- writes to distinct physical cells commute;
- a scan step conflicts with every write to any register (the scan's
  remaining reads sweep the whole memory, so its read footprint is
  taken to be all ``m`` registers);
- steps of ``DONE`` processors do not exist, and purely local/decide
  steps (no register operand) are globally independent.

At each expanded state the selector tries to pick an **ample set**:
all enabled operations of one single processor, subject to the classic
conditions (Clarke–Grumberg–Peled, ch. 10):

- **C0** — the ample set is nonempty unless the state is terminal (we
  only ever pick a processor that has enabled operations).
- **C1** — dependency closure: the chosen processor's current
  operations must be independent of every *other* enabled processor's
  current operations **and** of every operation those processors can
  ever issue from here on.  For the write-scan machines both halves
  collapse to current-operation granularity: enabledness depends only
  on the stepping processor's own local state, and every active
  processor eventually scans every register, so the future footprint
  is the full register set and closing over it would degenerate to no
  reduction — the selectors therefore use current operations and let
  exhaustive N=2 conformance tests and CI back the approximation (see
  ``docs/checking.md``).  Machines that permanently *retire* registers
  (some register is never touched again from a given local state) can
  do better *and* need the closure for soundness when another
  processor's current quiescence is temporary: such a machine may
  declare an optional ``future_footprint(local) -> (writes, reads)``
  hook (local register indices, or ``"all"``), and the generic
  selector then checks the candidate's *current* footprint against
  every other processor's *future* footprint.  Without the hook the
  future footprint defaults to the current one, preserving the
  write-scan behavior exactly.
- **C2** — invisibility: no ample step may change the truth of any
  checked property.  Each property declares a *visibility footprint*
  (:func:`repro.checker.properties.visibility_footprint`); undeclared
  properties conservatively make every step visible, which disables
  reduction entirely.  The fast engine's hard-wired safety check
  (`check_outputs`) reads terminated outputs only, so a step is
  visible exactly when it terminates the stepping processor.
- **C3** — cycle proviso: an ample set is acceptable only if at least
  one of its successor states is *new* (not in the visited set); a
  state whose every candidate fails this is fully expanded.  This is
  the BFS variant of the proviso and prevents the classic livelock
  where a cycle of invisible steps starves the other processors
  forever.  The membership test is supplied by the engine as a
  closure over its visited structure (fingerprint store, canonical
  set, ...), so the proviso composes with every backend; sharded
  engines can only certify locally-owned successors as new and are
  therefore pessimistic (sound, weaker reduction).

Composition with symmetry: ample selection happens on the (already
canonical, when symmetry is on) expanded state's *concrete*
successors; each chosen successor is then canonicalized through the
same pipeline as an unreduced transition.  Reduced paths are real
paths of the full system, so counterexample reconstruction needs no
POR-specific handling.

Composition with the batch engine: a *level-synchronous* formulation.
The vectorized level kernel (:mod:`repro.checker.batch`) selects ample
sets for a whole BFS level at once: :class:`FootprintTables` compiles
the write-scan independence relation above into per-pid u64 lookup
arrays (unwritten-mask -> physical write footprint), C0/C1 become
bitmask AND-reductions over whole frontier arrays, C2 is the same
outputs-only visibility mask applied to vectorized scan successors,
and C3 certifies novelty against ``visited ∪ earlier-in-level``: a
tentative ample successor counts as *new* only when its key is absent
from the visited set as of the level boundary (one bulk
``contains_many`` gather, replacing the scalar mid-level ``is_new``
closure) **and** it is the first occurrence of that key within the
current candidate pool.  That proviso is pessimistic *within* a level
— a successor first produced by an earlier state of the same level
blocks later ample candidates even though the scalar loop might have
accepted them — and therefore sound: every key certified new really is
admitted this level and re-expanded on the next, so no invisible cycle
can be starved.  The price of the formulation is that the two engines'
C3 oracles legitimately disagree, so batch+POR conformance is
verdict-level (same ok/violation/complete), not count-identical as in
the unreduced case; exhaustive N=2 cross-engine verdict equality is
enforced in tier-1 and CI.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.sim.ops import Write

if TYPE_CHECKING:
    import numpy

    from numpy.typing import NDArray

    from repro.checker.fast_snapshot import FastSnapshotSpec

    U64Array = NDArray[numpy.uint64]
    I64Array = NDArray[numpy.int64]

_PHASE_WRITE = 0
_PHASE_SCAN = 1
_PHASE_DONE = 2

#: Engine-supplied membership closure: True when the candidate
#: successor is certainly NOT in the visited set yet (C3).
IsNew = Callable[[object], bool]

#: Attributes followed when resolving a ``por_footprint = "delegate"``
#: declaration to the machine that actually issues the ops.  The same
#: order the shipped machines use for their embedded machines.
_DELEGATE_ATTRS = ("snapshot_machine", "_inner", "inner")

#: Delegation chains in this codebase are one hop; bound the resolver
#: walk far above that so a cyclic delegation cannot loop it.
_MAX_DELEGATION_DEPTH = 8


def declared_machine_footprint(
    machine: object,
) -> Optional[Tuple[Dict[str, str], int]]:
    """Resolve a machine's ``por_footprint`` declaration at runtime.

    Machines declare their write/read discipline for anonlint's POR002
    rule as a class attribute: either a dict like ``{"writes":
    "unwritten", "reads": "all"}`` or the string ``"delegate"`` (all
    ops come from an embedded machine).  This resolver follows
    delegation through the conventional inner-machine attributes and
    returns ``(footprint, depth)``, where ``depth`` counts the hops —
    the number of ``.inner`` accesses a *state* of the outer machine
    needs before ``unwritten``-style fields of the declaring machine
    are visible.  ``None`` when nothing along the chain declares a
    dict footprint (POR002 then falls back to static inference alone).
    """
    current: object = machine
    depth = 0
    for _ in range(_MAX_DELEGATION_DEPTH):
        declared = getattr(current, "por_footprint", None)
        if isinstance(declared, dict):
            return dict(declared), depth
        if declared != "delegate":
            return None
        for attr in _DELEGATE_ATTRS:
            inner = getattr(current, attr, None)
            if inner is not None:
                current = inner
                depth += 1
                break
        else:
            return None
    return None


def observed_step_footprint(
    spec: Any, state: Any, pid: int
) -> Tuple[int, bool]:
    """``(physical write mask, any read?)`` of one pid's enabled ops.

    The runtime half of POR002's cross-check: what the machine
    *actually* offers from ``state``, folded through the pid's private
    wiring — compared by :mod:`repro.lint.dynamic` against the
    declared footprint on a sample of reachable states.
    """
    physical = spec._physical
    wmask = 0
    has_read = False
    for op in spec.machine.enabled_ops(state.locals[pid]):
        if isinstance(op, Write):
            wmask |= 1 << physical[pid][op.reg]
        else:
            has_read = True
    return wmask, has_read


class PORCounters:
    """Per-run reduction counters (one instance per selector)."""

    __slots__ = (
        "transitions_pruned",
        "ample_states",
        "fully_expanded_states",
        "cycle_proviso_expansions",
    )

    def __init__(self) -> None:
        self.transitions_pruned = 0
        self.ample_states = 0
        self.fully_expanded_states = 0
        self.cycle_proviso_expansions = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "transitions_pruned": self.transitions_pruned,
            "ample_states": self.ample_states,
            "fully_expanded_states": self.fully_expanded_states,
            "cycle_proviso_expansions": self.cycle_proviso_expansions,
        }

    def load(self, counters: Dict[str, int]) -> None:
        """Restore from a checkpoint counters dict (missing keys -> 0)."""
        self.transitions_pruned = int(counters.get("transitions_pruned", 0))
        self.ample_states = int(counters.get("ample_states", 0))
        self.fully_expanded_states = int(
            counters.get("fully_expanded_states", 0)
        )
        self.cycle_proviso_expansions = int(
            counters.get("cycle_proviso_expansions", 0)
        )


# ----------------------------------------------------------------------
# Visibility footprints (C2)
# ----------------------------------------------------------------------


class Visibility:
    """Aggregated visibility footprint of a set of checked properties.

    ``all_steps`` — some property made no declaration (or declared
    ``locals=True``): every step is visible and reduction is off.
    ``outputs`` — some property reads terminated outputs: steps that
    terminate a processor are visible.  ``register_mask`` — union of
    declared physical-register footprints: writes landing in the mask
    are visible.
    """

    __slots__ = ("all_steps", "outputs", "register_mask")

    def __init__(
        self, all_steps: bool, outputs: bool, register_mask: int
    ) -> None:
        self.all_steps = all_steps
        self.outputs = outputs
        self.register_mask = register_mask


def aggregate_visibility(
    invariants: Sequence[Callable[..., object]], n_registers: int
) -> Visibility:
    """Fold the ``visibility_footprint`` declarations of ``invariants``.

    A property without a declaration defaults to "all steps visible"
    (the conservative choice mandated by C2: we may only prune steps
    provably unable to flip any verdict).
    """
    all_steps = False
    outputs = False
    register_mask = 0
    full = (1 << n_registers) - 1
    for invariant in invariants:
        footprint = getattr(invariant, "visibility_footprint", None)
        if footprint is None or footprint["locals"]:
            all_steps = True
            continue
        if footprint["outputs"]:
            outputs = True
        registers = footprint["registers"]
        if registers == "all":
            register_mask = full
        else:
            for reg in registers:
                if not 0 <= reg < n_registers:
                    raise ValueError(
                        f"visibility footprint register {reg} outside"
                        f" 0..{n_registers - 1}"
                    )
                register_mask |= 1 << reg
    return Visibility(all_steps, outputs, register_mask)


# ----------------------------------------------------------------------
# Footprint tables (shared by the scalar and batch selectors)
# ----------------------------------------------------------------------


def _write_footprint_table(wiring: Sequence[int], m: int) -> List[int]:
    """``unwritten-mask -> physical write-footprint bitmask`` for one pid.

    Entry ``u`` is the union over the set bits of ``u`` of the physical
    cell the pid's wiring maps that local register to — exactly the set
    of cells the pid's next write step could touch.
    """
    table = [0] * (1 << m)
    for unwritten in range(1, 1 << m):
        mask = 0
        for reg in range(m):
            if (unwritten >> reg) & 1:
                mask |= 1 << wiring[reg]
        table[unwritten] = mask
    return table


def export_footprint_tables(
    spec: "FastSnapshotSpec",
) -> Tuple[Tuple[Tuple[int, ...], ...], Tuple[int, ...]]:
    """The C0/C1 mask tables as plain ints, for code generators.

    Returns ``(wmask, popcount)``: ``wmask[pid][unwritten]`` is the
    physical write-footprint bitmask (the same table
    :class:`FootprintTables` loads into numpy arrays) and
    ``popcount[unwritten]`` the write-successor count.  Deliberately
    numpy-free so :mod:`repro.checker.native.generator` can bake the
    tables into a translation unit without importing the batch stack.
    """
    m = spec.m
    wmask = tuple(
        tuple(_write_footprint_table(spec.wiring[pid], m))
        for pid in range(spec.n)
    )
    popcount = tuple(bin(u).count("1") for u in range(1 << m))
    return wmask, popcount


class FootprintTables:
    """The write-scan independence relation as numpy gather tables.

    The level-synchronous selector in :mod:`repro.checker.batch` needs,
    for a whole frontier array at once, each pid's physical write
    footprint (a u64 register bitmask) and successor count.  Both are
    pure functions of the pid's wiring and its packed ``unwritten``
    field, so they compile once into ``(2**m,)`` lookup arrays indexed
    by that field — the vectorized twin of
    :class:`FastAmpleSelector`'s scalar ``_wmask_tables``.

    numpy is imported lazily here so the module (and the scalar
    selectors) stays importable without it.
    """

    __slots__ = ("wmask", "popcount", "m_mask", "visibility")

    def __init__(self, spec: "FastSnapshotSpec") -> None:
        import numpy as np

        m = spec.m
        size = 1 << m
        wmask = np.zeros((spec.n, size), dtype=np.uint64)
        for pid in range(spec.n):
            wmask[pid] = _write_footprint_table(spec.wiring[pid], m)
        #: pid -> unwritten-mask -> physical write-footprint bitmask.
        self.wmask: "U64Array" = wmask
        #: unwritten-mask -> number of write successors (set bits).
        self.popcount: "I64Array" = np.bitwise_count(
            np.arange(size, dtype=np.uint64)
        ).astype(np.int64)
        #: A scan's read footprint: every physical register.
        self.m_mask = np.uint64(spec.m_mask)
        #: The fast engine's one safety property (``check_outputs``)
        #: compiled through the same aggregation the generic selector
        #: uses: it reads terminated outputs only, so its footprint is
        #: outputs-only with an empty register mask.
        self.visibility = Visibility(
            all_steps=False, outputs=True, register_mask=0
        )


# ----------------------------------------------------------------------
# Fast (packed-integer) selector
# ----------------------------------------------------------------------


class FastAmpleSelector:
    """Ample sets over :class:`~repro.checker.fast_snapshot.FastSnapshotSpec`.

    The fast engine's only safety property is ``check_outputs``
    (terminated outputs comparable + self-inclusive), whose visibility
    footprint is outputs-only: a step is visible exactly when it moves
    the stepping processor to ``DONE``.  With ``check_safety=False``
    nothing is checked and no step is visible.

    ``cycle_proviso`` is a test seam: disabling it demonstrates the
    classic livelock miss that C3 exists to prevent
    (``tests/test_por.py``); production callers leave it on.
    """

    def __init__(
        self,
        spec: "FastSnapshotSpec",
        check_safety: bool = True,
        cycle_proviso: bool = True,
    ) -> None:
        self.spec = spec
        self.check_safety = check_safety
        self.cycle_proviso = cycle_proviso
        self.counters = PORCounters()
        m = spec.m
        #: pid -> unwritten-mask -> physical-register write footprint.
        self._wmask_tables: List[Tuple[int, ...]] = [
            tuple(_write_footprint_table(spec.wiring[pid], m))
            for pid in range(spec.n)
        ]
        self._popcount = tuple(bin(v).count("1") for v in range(1 << m))

    # ------------------------------------------------------------------
    def expand(self, state: int, buf: List[int], is_new: IsNew) -> List[int]:
        """Fill ``buf`` with the selected successors of ``state``.

        Either one processor's successors (an ample set satisfying
        C0–C3) or, when no candidate qualifies, the full successor set
        in the engines' canonical enumeration order.  Returns ``buf``.
        """
        spec = self.spec
        buf.clear()
        local_mask = spec.local_mask
        phase_shift = spec.o_phase
        unwritten_shift = spec.o_unwritten
        m_mask = spec.m_mask
        pids: List[int] = []
        locals_: List[int] = []
        offsets: List[int] = []
        wmasks: List[int] = []
        rmasks: List[int] = []
        total = 0
        for pid in range(spec.n):
            offset = spec.local_offsets[pid]
            local = (state >> offset) & local_mask
            phase = (local >> phase_shift) & 3
            if phase == _PHASE_DONE:
                continue
            if phase == _PHASE_WRITE:
                unwritten = (local >> unwritten_shift) & m_mask
                wmasks.append(self._wmask_tables[pid][unwritten])
                rmasks.append(0)
                total += self._popcount[unwritten]
            else:
                # A scan conflicts with every write to any register.
                wmasks.append(0)
                rmasks.append(m_mask)
                total += 1
            pids.append(pid)
            locals_.append(local)
            offsets.append(offset)

        counters = self.counters
        active = len(pids)
        if active >= 2:
            proviso_blocked = False
            for i in range(active):
                w = wmasks[i]
                r = rmasks[i]
                conflict = False
                for j in range(active):
                    if j == i:
                        continue
                    if (w & (wmasks[j] | rmasks[j])) or (r & wmasks[j]):
                        conflict = True
                        break
                if conflict:
                    continue
                offset = offsets[i]
                cand = self._pid_successors(
                    state, pids[i], locals_[i], offset
                )
                # C2: writes never terminate a processor (invisible);
                # a scan read is visible iff it finishes the scan.
                if self.check_safety and r:
                    succ_phase = (cand[0] >> (offset + phase_shift)) & 3
                    if succ_phase == _PHASE_DONE:
                        continue
                # C3: at least one ample successor must be new.
                if self.cycle_proviso and not any(is_new(s) for s in cand):
                    proviso_blocked = True
                    continue
                buf.extend(cand)
                counters.ample_states += 1
                counters.transitions_pruned += total - len(cand)
                return buf
            if proviso_blocked:
                counters.cycle_proviso_expansions += 1
        spec.successor_states_into(state, buf)
        counters.fully_expanded_states += 1
        return buf

    def _pid_successors(
        self, state: int, pid: int, local: int, offset: int
    ) -> List[int]:
        """One processor's successors, in the canonical (reg-ascending)
        enumeration order of ``successor_states_into``."""
        spec = self.spec
        if ((local >> spec.o_phase) & 3) == _PHASE_SCAN:
            return [spec._apply_read(state, pid, local, offset)]
        record = local & spec._record_field
        unwritten = (local >> spec.o_unwritten) & spec.m_mask
        phys_offset = spec._phys_offset[pid]
        write_clear = spec._write_clear[pid]
        scan_reset = spec._scan_reset
        out: List[int] = []
        for reg in range(spec.m):
            if not (unwritten >> reg) & 1:
                continue
            remaining = unwritten & ~(1 << reg)
            if remaining == 0:
                remaining = spec.m_mask
            new_local = record | (remaining << spec.o_unwritten) | scan_reset
            out.append(
                (state & write_clear[reg])
                | (record << phys_offset[reg])
                | (new_local << offset)
            )
        return out


# ----------------------------------------------------------------------
# Generic (object-encoded) selector
# ----------------------------------------------------------------------


class AmpleSelector:
    """Ample sets over the generic :class:`~repro.checker.system.SystemSpec`.

    Footprints come from each processor's currently enabled operations
    and the spec's wiring tables: a :class:`~repro.sim.ops.Write` with
    local index ``r`` touches physical cell ``sigma_p(r)``; any enabled
    :class:`~repro.sim.ops.Read` marks the processor as scanning, whose
    read footprint is all registers (see module docstring).  A machine
    exposing a ``future_footprint(local) -> (writes, reads)`` hook
    (local indices or ``"all"``) upgrades the C1 check to the true
    dependency closure: the candidate's current operations are tested
    against every other processor's *future* footprint, and the
    candidate's own enabled reads use their exact registers instead of
    the whole-memory scan assumption.  Visibility (C2) follows the
    checked invariants' declared footprints; an invariant without a
    declaration makes every step visible, so the selector degenerates
    to full expansion — conformant, just reduction-free.
    """

    def __init__(
        self,
        spec: Any,
        invariants: Sequence[Callable[..., object]],
        cycle_proviso: bool = True,
    ) -> None:
        self.spec = spec
        self.cycle_proviso = cycle_proviso
        self.counters = PORCounters()
        self.visibility = aggregate_visibility(invariants, spec.n_registers)
        self._m_mask = (1 << spec.n_registers) - 1
        #: Optional machine hook closing C1 over future operations.
        self._future: Optional[Callable[[Any], Tuple[Any, Any]]] = getattr(
            spec.machine, "future_footprint", None
        )

    def _fold_regs(self, pid: int, regs: Any) -> int:
        """Local register indices (or ``"all"``) -> physical bitmask."""
        if regs == "all":
            return self._m_mask
        physical = self.spec._physical
        mask = 0
        for reg in regs:
            mask |= 1 << physical[pid][reg]
        return mask

    def expand(self, state: Any, is_new: IsNew) -> List[Tuple[Any, Any]]:
        """The selected ``(action, successor)`` pairs for ``state``."""
        spec = self.spec
        machine = spec.machine
        counters = self.counters
        visibility = self.visibility
        if visibility.all_steps:
            counters.fully_expanded_states += 1
            return list(spec.successors(state))

        physical = spec._physical
        future = self._future
        infos: List[Tuple[int, List[Any], int, int, int, int]] = []
        total = 0
        for pid in range(spec.n_processors):
            ops = list(machine.enabled_ops(state.locals[pid]))
            if not ops:
                continue
            total += len(ops)
            wmask = 0
            rmask = 0
            for op in ops:
                if isinstance(op, Write):
                    wmask |= 1 << physical[pid][op.reg]
                elif future is None:
                    rmask = self._m_mask
                else:
                    rmask |= 1 << physical[pid][op.reg]
            if future is None:
                fwmask, frmask = wmask, rmask
            else:
                writes, reads = future(state.locals[pid])
                fwmask = self._fold_regs(pid, writes)
                frmask = self._fold_regs(pid, reads)
            infos.append((pid, ops, wmask, rmask, fwmask, frmask))

        if len(infos) >= 2:
            proviso_blocked = False
            for i, (pid, ops, wmask, rmask, _, _) in enumerate(infos):
                conflict = False
                for j, (_, _, _, _, other_fw, other_fr) in enumerate(infos):
                    if j == i:
                        continue
                    if (wmask & (other_fw | other_fr)) or (rmask & other_fw):
                        conflict = True
                        break
                if conflict:
                    continue
                # C2: writes landing in a declared register footprint
                # can flip a register-reading property's verdict.
                if wmask & visibility.register_mask:
                    continue
                pairs = [spec.apply(state, pid, op) for op in ops]
                if visibility.outputs:
                    before = machine.output(state.locals[pid])
                    if any(
                        machine.output(successor.locals[pid]) != before
                        for _, successor in pairs
                    ):
                        continue
                if self.cycle_proviso and not any(
                    is_new(successor) for _, successor in pairs
                ):
                    proviso_blocked = True
                    continue
                counters.ample_states += 1
                counters.transitions_pruned += total - len(pairs)
                return pairs
            if proviso_blocked:
                counters.cycle_proviso_expansions += 1
        counters.fully_expanded_states += 1
        return list(spec.successors(state))
