"""Breadth-first explicit-state exploration with invariant checking.

This is the reproduction's TLC: it enumerates every reachable global
state of a :class:`~repro.checker.system.SystemSpec`, checks invariants
on each, and reconstructs a minimal-length counterexample path when one
fails.  Exploration statistics (distinct states, transitions, depth) are
reported the way TLC reports them, so benchmark E4 can print the
"exhaustively explored all 3-processor executions" result in familiar
terms.

For liveness (wait-freedom) the explorer optionally retains the full
edge list, which :mod:`repro.checker.liveness` turns into an SCC
analysis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.checker.system import Action, GlobalState, SystemSpec

#: An invariant takes the spec and a reachable state; it returns an error
#: string when violated, or None when satisfied.
Invariant = Callable[[SystemSpec, GlobalState], Optional[str]]


@dataclass
class InvariantViolation:
    """A reachable state violating an invariant, with a shortest path."""

    message: str
    state: GlobalState
    path: List[Action]

    def schedule(self) -> List[int]:
        return [action.pid for action in self.path]


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive (or budget-capped) exploration."""

    states: int
    transitions: int
    depth: int
    violation: Optional[InvariantViolation] = None
    complete: bool = True
    #: Final states (no enabled ops for any processor), capped collection.
    final_states: List[GlobalState] = field(default_factory=list)
    #: Retained edge list (state-index, pid, state-index) when requested.
    edges: Optional[List[Tuple[int, int, int]]] = None
    #: Index -> state, aligned with edge endpoints, when edges retained.
    state_table: Optional[List[GlobalState]] = None

    @property
    def ok(self) -> bool:
        return self.violation is None


class Explorer:
    """BFS over a :class:`SystemSpec`.

    Parameters
    ----------
    spec:
        The system to explore.
    invariants:
        Checked on every reachable state (including the initial one).
    max_states:
        Exploration budget; exceeding it sets ``complete=False`` on the
        result instead of raising — partial exploration is still a
        useful falsification attempt.
    keep_edges:
        Retain the transition list for liveness analysis (costs memory).
    collect_final_states:
        Gather fully-terminated states (used by the task-level checks),
        capped at ``max_final_states``.
    """

    def __init__(
        self,
        spec: SystemSpec,
        invariants: Sequence[Invariant] = (),
        max_states: int = 5_000_000,
        keep_edges: bool = False,
        collect_final_states: bool = False,
        max_final_states: int = 100_000,
    ) -> None:
        self.spec = spec
        self.invariants = list(invariants)
        self.max_states = max_states
        self.keep_edges = keep_edges
        self.collect_final_states = collect_final_states
        self.max_final_states = max_final_states

    def run(self) -> ExplorationResult:
        spec = self.spec
        initial = spec.initial_state()
        index_of: Dict[GlobalState, int] = {initial: 0}
        # parent[i] = (parent index, action) for path reconstruction.
        parents: List[Optional[Tuple[int, Action]]] = [None]
        depths: List[int] = [0]
        states: List[GlobalState] = [initial]
        queue: deque = deque([0])
        edges: Optional[List[Tuple[int, int, int]]] = [] if self.keep_edges else None
        final_states: List[GlobalState] = []
        transitions = 0
        max_depth = 0
        complete = True

        violation = self._check_invariants(initial, 0, parents, states)
        if violation is not None:
            return ExplorationResult(
                states=1,
                transitions=0,
                depth=0,
                violation=violation,
                final_states=final_states,
                edges=edges,
                state_table=states if self.keep_edges else None,
            )

        while queue:
            current_index = queue.popleft()
            current = states[current_index]
            successors = list(spec.successors(current))
            if not successors and self.collect_final_states:
                if len(final_states) < self.max_final_states:
                    final_states.append(current)
            for action, successor in successors:
                transitions += 1
                successor_index = index_of.get(successor)
                if successor_index is None:
                    if len(states) >= self.max_states:
                        complete = False
                        continue
                    successor_index = len(states)
                    index_of[successor] = successor_index
                    states.append(successor)
                    parents.append((current_index, action))
                    depth = depths[current_index] + 1
                    depths.append(depth)
                    max_depth = max(max_depth, depth)
                    queue.append(successor_index)
                    violation = self._check_invariants(
                        successor, successor_index, parents, states
                    )
                    if violation is not None:
                        return ExplorationResult(
                            states=len(states),
                            transitions=transitions,
                            depth=max_depth,
                            violation=violation,
                            complete=complete,
                            final_states=final_states,
                            edges=edges,
                            state_table=states if self.keep_edges else None,
                        )
                if edges is not None:
                    edges.append((current_index, action.pid, successor_index))

        return ExplorationResult(
            states=len(states),
            transitions=transitions,
            depth=max_depth,
            complete=complete,
            final_states=final_states,
            edges=edges,
            state_table=states if self.keep_edges else None,
        )

    # ------------------------------------------------------------------
    def _check_invariants(
        self,
        state: GlobalState,
        index: int,
        parents: List[Optional[Tuple[int, Action]]],
        states: List[GlobalState],
    ) -> Optional[InvariantViolation]:
        for invariant in self.invariants:
            message = invariant(self.spec, state)
            if message is not None:
                return InvariantViolation(
                    message=message,
                    state=state,
                    path=_reconstruct_path(index, parents),
                )
        return None


def _reconstruct_path(
    index: int, parents: List[Optional[Tuple[int, Action]]]
) -> List[Action]:
    path: List[Action] = []
    cursor: Optional[int] = index
    while cursor is not None:
        entry = parents[cursor]
        if entry is None:
            break
        parent_index, action = entry
        path.append(action)
        cursor = parent_index
    path.reverse()
    return path
