"""Breadth-first explicit-state exploration with invariant checking.

This is the reproduction's TLC: it enumerates every reachable global
state of a :class:`~repro.checker.system.SystemSpec`, checks invariants
on each, and reconstructs a minimal-length counterexample path when one
fails.  Exploration statistics (distinct states, transitions, depth) are
reported the way TLC reports them, so benchmark E4 can print the
"exhaustively explored all 3-processor executions" result in familiar
terms.

For liveness (wait-freedom) the explorer optionally retains the full
edge list, which :mod:`repro.checker.liveness` turns into an SCC
analysis.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.checker.fingerprint import fingerprint_state
from repro.checker.symmetry import (
    GroupElement,
    StateCanonicalizer,
    assert_permutation_invariant,
    lift_canonical_path,
)
from repro.checker.system import Action, GlobalState, SystemSpec
from repro.store.base import StoreConfig

#: An invariant takes the spec and a reachable state; it returns an error
#: string when violated, or None when satisfied.
Invariant = Callable[[SystemSpec, GlobalState], Optional[str]]


@dataclass
class InvariantViolation:
    """A reachable state violating an invariant, with a shortest path."""

    message: str
    state: GlobalState
    path: List[Action]

    def schedule(self) -> List[int]:
        return [action.pid for action in self.path]


@dataclass
class ExplorationResult:
    """Outcome of one exhaustive (or budget-capped) exploration."""

    states: int
    transitions: int
    depth: int
    violation: Optional[InvariantViolation] = None
    complete: bool = True
    #: Transitions whose (new) target state was dropped because the
    #: ``max_states`` budget was exhausted.  Nonzero iff truncated.
    truncated_transitions: int = 0
    #: Final states (no enabled ops for any processor), capped collection.
    final_states: List[GlobalState] = field(default_factory=list)
    #: Retained edge list (state-index, pid, state-index) when requested.
    edges: Optional[List[Tuple[int, int, int]]] = None
    #: Index -> state, aligned with edge endpoints, when edges retained.
    state_table: Optional[List[GlobalState]] = None
    #: Symmetry runs only: concrete states covered by the explored orbit
    #: representatives (sum of orbit sizes); ``covered / states`` is the
    #: reduction ratio achieved by the quotient.
    covered_states: Optional[int] = None
    #: Symmetry runs only: order of the wiring-stabilizer group used.
    symmetry_group_order: Optional[int] = None
    #: Runs with an explicit store configuration: the backend's
    #: operation counters plus ``file_bytes`` (disk footprint).
    store_counters: Optional[Dict[str, int]] = None
    #: POR runs only: the ample-set selector's counters
    #: (transitions pruned, ample vs fully-expanded states, cycle-
    #: proviso expansions); see :class:`repro.checker.por.PORCounters`.
    por_counters: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return self.violation is None


class Explorer:
    """BFS over a :class:`SystemSpec`.

    Parameters
    ----------
    spec:
        The system to explore.
    invariants:
        Checked on every reachable state (including the initial one).
    max_states:
        Exploration budget; exceeding it sets ``complete=False`` on the
        result instead of raising — partial exploration is still a
        useful falsification attempt.
    keep_edges:
        Retain the transition list for liveness analysis (costs memory).
    collect_final_states:
        Gather fully-terminated states (used by the task-level checks),
        capped at ``max_final_states``.
    fingerprint:
        Memory-lean mode: remember only a 64-bit fingerprint per
        reached state instead of the full state/parent tables (TLC's
        fingerprint set).  Cuts per-state memory roughly an order of
        magnitude, so budgets can rise accordingly; the cost is a
        ~n²/2⁶⁵ collision probability and, when a violation actually
        fires, a second bounded re-traversal (depth-capped BFS with
        parent pointers) to reconstruct the minimal counterexample
        path.  Incompatible with ``keep_edges``.
    symmetry:
        Symmetry reduction: explore one representative per orbit of the
        wiring-stabilizer group (:mod:`repro.checker.symmetry`).  Every
        generated successor is canonicalized before the visited-set
        lookup, shrinking the reachable set by up to ``N!``.  Requires
        every invariant to be marked ``@permutation_invariant``
        (raises otherwise); counterexamples are de-canonicalized into
        valid concrete executions via the stored permutation
        witnesses.  Final states are collected as representatives.
        Incompatible with ``keep_edges``: pid edge labels are not
        orbit-stable, so the liveness/lasso analysis needs the
        unreduced graph.
    store:
        Visited-set backend for the fingerprint modes
        (:mod:`repro.store`); the 64-bit digests slot directly into the
        disk-backed tables.  Requires ``fingerprint`` — the full modes
        index whole state objects, which only RAM structures hold.
        Note that ``fingerprint_state`` digests are randomized per
        interpreter, so a disk store written by this engine is
        meaningful within the writing process only (no checkpoint /
        resume here; use the packed-integer engines for that).
    por:
        Ample-set partial-order reduction (:mod:`repro.checker.por`):
        at each state, when one processor's enabled operations are
        independent of every other enabled processor's (disjoint
        physical-register footprints), invisible under every checked
        invariant's declared visibility footprint, and lead to at
        least one unvisited state (cycle proviso), only that
        processor is expanded.  Invariants without a
        ``@visibility_footprint`` declaration make every step visible,
        so the run degenerates to full expansion.  Composes with
        ``symmetry`` (selection happens on the representative's
        concrete successors, which are then canonicalized as usual)
        and with ``fingerprint``/``store``.  Incompatible with
        ``keep_edges``: liveness (lasso) analysis needs the unreduced
        graph.
    por_cycle_proviso:
        Test seam: disables C3, demonstrating the livelock miss the
        proviso prevents (``tests/test_por.py``).  Leave on.
    """

    def __init__(
        self,
        spec: SystemSpec,
        invariants: Sequence[Invariant] = (),
        max_states: int = 5_000_000,
        keep_edges: bool = False,
        collect_final_states: bool = False,
        max_final_states: int = 100_000,
        fingerprint: bool = False,
        symmetry: bool = False,
        store: Optional[StoreConfig] = None,
        por: bool = False,
        por_cycle_proviso: bool = True,
    ) -> None:
        if por and keep_edges:
            raise ValueError(
                "partial-order reduction prunes interleavings, but"
                " keep_edges (liveness/lasso analysis) needs the full"
                " unreduced transition graph — drop --por"
            )
        if fingerprint and keep_edges:
            raise ValueError(
                "fingerprint mode stores no state table; keep_edges"
                " (liveness analysis) needs the full object-encoded run"
            )
        if store is not None and store.backend != "ram" and not fingerprint:
            raise ValueError(
                "disk-backed stores hold 64-bit digests; the full"
                " object-encoded modes keep state/parent tables that only"
                " live in RAM — combine --store with fingerprint mode"
            )
        if symmetry and keep_edges:
            raise ValueError(
                "symmetry reduction relabels processors per state, so"
                " pid edge labels are not orbit-stable; liveness (lasso)"
                " analysis needs the unreduced graph — drop symmetry"
            )
        if symmetry:
            assert_permutation_invariant(invariants)
        self.spec = spec
        self.invariants = list(invariants)
        self.max_states = max_states
        self.keep_edges = keep_edges
        self.collect_final_states = collect_final_states
        self.max_final_states = max_final_states
        self.fingerprint = fingerprint
        self.symmetry = symmetry
        self.store = store
        self.por = por
        self.por_cycle_proviso = por_cycle_proviso
        self._selector = None

    def _make_store(self):
        return (self.store or StoreConfig()).create()

    def _store_counters(self, store_obj) -> Optional[Dict[str, int]]:
        if self.store is None:
            return None
        counters = dict(store_obj.counters())
        counters["file_bytes"] = store_obj.file_bytes()
        return counters

    def run(self) -> ExplorationResult:
        self._selector = None
        if self.por:
            from repro.checker.por import AmpleSelector

            self._selector = AmpleSelector(
                self.spec, self.invariants,
                cycle_proviso=self.por_cycle_proviso,
            )
        if self.symmetry:
            canonicalizer = StateCanonicalizer(self.spec)
            if self.fingerprint:
                result = self._run_fingerprint_symmetric(canonicalizer)
            else:
                result = self._run_full_symmetric(canonicalizer)
        elif self.fingerprint:
            result = self._run_fingerprint()
        else:
            result = self._run_full()
        if self._selector is not None:
            result.por_counters = self._selector.counters.as_dict()
        return result

    def _successors_of(self, current, is_new):
        """The expansion of ``current``: ample-reduced when POR is on."""
        if self._selector is not None:
            return self._selector.expand(current, is_new)
        return list(self.spec.successors(current))

    def _run_full(self) -> ExplorationResult:
        spec = self.spec
        initial = spec.initial_state()
        index_of: Dict[GlobalState, int] = {initial: 0}
        # parent[i] = (parent index, action) for path reconstruction.
        parents: List[Optional[Tuple[int, Action]]] = [None]
        depths: List[int] = [0]
        states: List[GlobalState] = [initial]
        queue: deque = deque([0])
        edges: Optional[List[Tuple[int, int, int]]] = [] if self.keep_edges else None
        final_states: List[GlobalState] = []
        transitions = 0
        max_depth = 0
        complete = True

        violation = self._check_invariants(initial, 0, parents, states)
        if violation is not None:
            return ExplorationResult(
                states=1,
                transitions=0,
                depth=0,
                violation=violation,
                final_states=final_states,
                edges=edges,
                state_table=states if self.keep_edges else None,
            )

        truncated = 0
        is_new = lambda s: s not in index_of
        while queue:
            current_index = queue.popleft()
            current = states[current_index]
            successors = self._successors_of(current, is_new)
            if not successors and self.collect_final_states:
                if len(final_states) < self.max_final_states:
                    final_states.append(current)
            for action, successor in successors:
                transitions += 1
                successor_index = index_of.get(successor)
                if successor_index is None:
                    if len(states) >= self.max_states:
                        complete = False
                        truncated += 1
                        continue
                    successor_index = len(states)
                    index_of[successor] = successor_index
                    states.append(successor)
                    parents.append((current_index, action))
                    depth = depths[current_index] + 1
                    depths.append(depth)
                    max_depth = max(max_depth, depth)
                    queue.append(successor_index)
                    violation = self._check_invariants(
                        successor, successor_index, parents, states
                    )
                    if violation is not None:
                        return ExplorationResult(
                            states=len(states),
                            transitions=transitions,
                            depth=max_depth,
                            violation=violation,
                            complete=complete,
                            truncated_transitions=truncated,
                            final_states=final_states,
                            edges=edges,
                            state_table=states if self.keep_edges else None,
                        )
                if edges is not None:
                    edges.append((current_index, action.pid, successor_index))
            if not complete:
                # The budget is exhausted: no queued state can admit a
                # new state, so further expansion is invariant-free
                # wasted work — short-circuit instead of draining the
                # queue (the seed explorer kept iterating here).
                break

        return ExplorationResult(
            states=len(states),
            transitions=transitions,
            depth=max_depth,
            complete=complete,
            truncated_transitions=truncated,
            final_states=final_states,
            edges=edges,
            state_table=states if self.keep_edges else None,
        )

    # ------------------------------------------------------------------
    # Symmetry-reduced mode
    # ------------------------------------------------------------------
    def _run_full_symmetric(
        self, canonicalizer: StateCanonicalizer
    ) -> ExplorationResult:
        """BFS over the quotient graph: one state per orbit.

        Each parent entry stores, besides the parent index and the
        action (in the parent representative's frame), the witness
        group element mapping the concrete successor to the child
        representative — exactly what
        :func:`~repro.checker.symmetry.lift_canonical_path` needs to
        rebuild a valid concrete execution.  Quotient edges lift to
        single concrete steps, so BFS depth — and counterexample
        minimality — carries over unchanged.
        """
        spec = self.spec
        initial = spec.initial_state()
        root, root_witness = canonicalizer.canonical(initial)
        index_of: Dict[GlobalState, int] = {root: 0}
        parents: List[Optional[Tuple[int, Action, GroupElement]]] = [None]
        depths: List[int] = [0]
        states: List[GlobalState] = [root]
        covered = canonicalizer.orbit_size(root)
        queue: deque = deque([0])
        final_states: List[GlobalState] = []
        transitions = 0
        max_depth = 0
        complete = True
        truncated = 0

        violation = self._lifted_violation(
            canonicalizer, root_witness, 0, parents, states
        )
        if violation is not None:
            return ExplorationResult(
                states=1, transitions=0, depth=0, violation=violation,
                final_states=final_states,
                covered_states=covered,
                symmetry_group_order=canonicalizer.order,
            )

        is_new = lambda s: canonicalizer.canonical(s)[0] not in index_of
        while queue:
            current_index = queue.popleft()
            current = states[current_index]
            successors = self._successors_of(current, is_new)
            if not successors and self.collect_final_states:
                if len(final_states) < self.max_final_states:
                    final_states.append(current)
            for action, successor in successors:
                transitions += 1
                representative, witness = canonicalizer.canonical(successor)
                successor_index = index_of.get(representative)
                if successor_index is None:
                    if len(states) >= self.max_states:
                        complete = False
                        truncated += 1
                        continue
                    successor_index = len(states)
                    index_of[representative] = successor_index
                    states.append(representative)
                    parents.append((current_index, action, witness))
                    covered += canonicalizer.orbit_size(representative)
                    depth = depths[current_index] + 1
                    depths.append(depth)
                    max_depth = max(max_depth, depth)
                    queue.append(successor_index)
                    violation = self._lifted_violation(
                        canonicalizer, root_witness,
                        successor_index, parents, states,
                    )
                    if violation is not None:
                        return ExplorationResult(
                            states=len(states),
                            transitions=transitions,
                            depth=max_depth,
                            violation=violation,
                            complete=complete,
                            truncated_transitions=truncated,
                            final_states=final_states,
                            covered_states=covered,
                            symmetry_group_order=canonicalizer.order,
                        )
            if not complete:
                break

        return ExplorationResult(
            states=len(states),
            transitions=transitions,
            depth=max_depth,
            complete=complete,
            truncated_transitions=truncated,
            final_states=final_states,
            covered_states=covered,
            symmetry_group_order=canonicalizer.order,
        )

    def _run_fingerprint_symmetric(
        self, canonicalizer: StateCanonicalizer
    ) -> ExplorationResult:
        """Fingerprint set over canonical forms: both reductions stack.

        The visited set keys on the fingerprint of the orbit
        *representative*, so memory shrinks by the reduction ratio on
        top of fingerprinting's constant factor.  Counterexamples are
        rebuilt by a depth-bounded re-BFS of the quotient graph that
        this time records the permutation witnesses, then lifted.
        """
        spec = self.spec
        initial = spec.initial_state()
        root, root_witness = canonicalizer.canonical(initial)
        seen = self._make_store()
        seen_add = seen.add
        try:
            seen_add(fingerprint_state(root))
            n_seen = 1
            covered = canonicalizer.orbit_size(root)
            queue: deque = deque([(0, root)])
            final_states: List[GlobalState] = []
            transitions = 0
            truncated = 0
            max_depth = 0
            complete = True

            message = self._first_violation_message(root)
            if message is not None:
                actions, concrete = lift_canonical_path(
                    canonicalizer, root_witness, []
                )
                return ExplorationResult(
                    states=1, transitions=0, depth=0,
                    violation=InvariantViolation(
                        message=self._first_violation_message(concrete)
                        or message,
                        state=concrete,
                        path=actions,
                    ),
                    final_states=final_states,
                    covered_states=covered,
                    symmetry_group_order=canonicalizer.order,
                    store_counters=self._store_counters(seen),
                )

            is_new = lambda s: (
                fingerprint_state(canonicalizer.canonical(s)[0]) not in seen
            )
            while queue:
                depth, current = queue.popleft()
                successors = self._successors_of(current, is_new)
                if not successors and self.collect_final_states:
                    if len(final_states) < self.max_final_states:
                        final_states.append(current)
                child_depth = depth + 1
                for _action, successor in successors:
                    transitions += 1
                    representative, _ = canonicalizer.canonical(successor)
                    digest = fingerprint_state(representative)
                    if n_seen < self.max_states:
                        if not seen_add(digest):
                            continue
                        n_seen += 1
                    else:
                        if digest in seen:
                            continue
                        complete = False
                        truncated += 1
                        continue
                    covered += canonicalizer.orbit_size(representative)
                    queue.append((child_depth, representative))
                    if child_depth > max_depth:
                        max_depth = child_depth
                    message = self._first_violation_message(representative)
                    if message is not None:
                        actions, concrete = self._shortest_symmetric_path_to(
                            canonicalizer, root, root_witness,
                            representative, child_depth,
                        )
                        return ExplorationResult(
                            states=n_seen,
                            transitions=transitions,
                            depth=max_depth,
                            violation=InvariantViolation(
                                message=self._first_violation_message(concrete)
                                or message,
                                state=concrete,
                                path=actions,
                            ),
                            complete=complete,
                            truncated_transitions=truncated,
                            final_states=final_states,
                            covered_states=covered,
                            symmetry_group_order=canonicalizer.order,
                            store_counters=self._store_counters(seen),
                        )
                if not complete:
                    break

            return ExplorationResult(
                states=n_seen,
                transitions=transitions,
                depth=max_depth,
                complete=complete,
                truncated_transitions=truncated,
                final_states=final_states,
                covered_states=covered,
                symmetry_group_order=canonicalizer.order,
                store_counters=self._store_counters(seen),
            )
        finally:
            seen.close()

    def _lifted_violation(
        self,
        canonicalizer: StateCanonicalizer,
        root_witness: GroupElement,
        index: int,
        parents: List[Optional[Tuple[int, Action, GroupElement]]],
        states: List[GlobalState],
    ) -> Optional[InvariantViolation]:
        """Check invariants on a representative; report concretely.

        The verdict is decided on the representative (sound by
        permutation-invariance); on violation the canonical path is
        lifted to a concrete execution and the message recomputed on
        the concrete final state, so the report never mentions the
        quotient.
        """
        message = self._first_violation_message(states[index])
        if message is None:
            return None
        steps: List[Tuple[Action, GroupElement]] = []
        cursor = index
        while True:
            entry = parents[cursor]
            if entry is None:
                break
            parent_index, action, witness = entry
            steps.append((action, witness))
            cursor = parent_index
        steps.reverse()
        actions, concrete = lift_canonical_path(
            canonicalizer, root_witness, steps
        )
        return InvariantViolation(
            message=self._first_violation_message(concrete) or message,
            state=concrete,
            path=actions,
        )

    def _shortest_symmetric_path_to(
        self,
        canonicalizer: StateCanonicalizer,
        root: GlobalState,
        root_witness: GroupElement,
        target: GlobalState,
        depth_limit: int,
    ) -> Tuple[List[Action], GlobalState]:
        """Depth-bounded quotient re-BFS recording witnesses, then lift.

        The fingerprint-mode twin of :meth:`_shortest_path_to`: only
        runs when a violation fired, and BFS order over the quotient
        graph keeps the lifted concrete path minimal.
        """
        spec = self.spec
        if target == root:
            return lift_canonical_path(canonicalizer, root_witness, [])
        index_of: Dict[GlobalState, int] = {root: 0}
        parents: List[Optional[Tuple[int, Action, GroupElement]]] = [None]
        states: List[GlobalState] = [root]
        depths: List[int] = [0]
        queue: deque = deque([0])
        while queue:
            current_index = queue.popleft()
            depth = depths[current_index]
            if depth >= depth_limit:
                continue
            for action, successor in spec.successors(states[current_index]):
                representative, witness = canonicalizer.canonical(successor)
                if representative in index_of:
                    continue
                successor_index = len(states)
                index_of[representative] = successor_index
                states.append(representative)
                parents.append((current_index, action, witness))
                depths.append(depth + 1)
                if representative == target:
                    steps: List[Tuple[Action, GroupElement]] = []
                    cursor = successor_index
                    while True:
                        entry = parents[cursor]
                        if entry is None:
                            break
                        parent_index, step_action, step_witness = entry
                        steps.append((step_action, step_witness))
                        cursor = parent_index
                    steps.reverse()
                    return lift_canonical_path(
                        canonicalizer, root_witness, steps
                    )
                queue.append(successor_index)
        raise RuntimeError(  # pragma: no cover - fingerprint collision
            "violating representative unreachable within its BFS depth —"
            " a 64-bit fingerprint collision corrupted the frontier"
        )

    # ------------------------------------------------------------------
    # Fingerprint mode
    # ------------------------------------------------------------------
    def _run_fingerprint(self) -> ExplorationResult:
        """BFS keeping a 64-bit fingerprint set instead of state tables.

        The frontier still holds concrete states (successors must be
        computable), but the visited set — the structure that dominates
        memory at scale — shrinks to one small int per state, and no
        parent/index/state tables are kept at all.  Counterexample
        paths are rebuilt on demand by :meth:`_shortest_path_to`.
        """
        spec = self.spec
        initial = spec.initial_state()
        seen = self._make_store()
        seen_add = seen.add
        try:
            seen_add(fingerprint_state(initial))
            n_seen = 1
            # (depth, state) pairs; depth feeds the bounded re-traversal.
            queue: deque = deque([(0, initial)])
            final_states: List[GlobalState] = []
            transitions = 0
            truncated = 0
            max_depth = 0
            complete = True

            message = self._first_violation_message(initial)
            if message is not None:
                return ExplorationResult(
                    states=1, transitions=0, depth=0,
                    violation=InvariantViolation(
                        message=message, state=initial, path=[]
                    ),
                    final_states=final_states,
                    store_counters=self._store_counters(seen),
                )

            is_new = lambda s: fingerprint_state(s) not in seen
            while queue:
                depth, current = queue.popleft()
                successors = self._successors_of(current, is_new)
                if not successors and self.collect_final_states:
                    if len(final_states) < self.max_final_states:
                        final_states.append(current)
                child_depth = depth + 1
                for _action, successor in successors:
                    transitions += 1
                    digest = fingerprint_state(successor)
                    if n_seen < self.max_states:
                        if not seen_add(digest):
                            continue
                        n_seen += 1
                    else:
                        if digest in seen:
                            continue
                        complete = False
                        truncated += 1
                        continue
                    queue.append((child_depth, successor))
                    if child_depth > max_depth:
                        max_depth = child_depth
                    message = self._first_violation_message(successor)
                    if message is not None:
                        path = self._shortest_path_to(successor, child_depth)
                        return ExplorationResult(
                            states=n_seen,
                            transitions=transitions,
                            depth=max_depth,
                            violation=InvariantViolation(
                                message=message, state=successor, path=path
                            ),
                            complete=complete,
                            truncated_transitions=truncated,
                            final_states=final_states,
                            store_counters=self._store_counters(seen),
                        )
                if not complete:
                    break

            return ExplorationResult(
                states=n_seen,
                transitions=transitions,
                depth=max_depth,
                complete=complete,
                truncated_transitions=truncated,
                final_states=final_states,
                store_counters=self._store_counters(seen),
            )
        finally:
            seen.close()

    def _first_violation_message(self, state: GlobalState) -> Optional[str]:
        for invariant in self.invariants:
            message = invariant(self.spec, state)
            if message is not None:
                return message
        return None

    def _shortest_path_to(
        self, target: GlobalState, depth_limit: int
    ) -> List[Action]:
        """Depth-bounded BFS with parent pointers, for fingerprint mode.

        Only runs when a violation actually fired; memory is bounded by
        the states within ``depth_limit`` of the initial state, and BFS
        order guarantees the returned path is minimal.
        """
        spec = self.spec
        initial = spec.initial_state()
        if target == initial:
            return []
        index_of: Dict[GlobalState, int] = {initial: 0}
        parents: List[Optional[Tuple[int, Action]]] = [None]
        states: List[GlobalState] = [initial]
        depths: List[int] = [0]
        queue: deque = deque([0])
        while queue:
            current_index = queue.popleft()
            depth = depths[current_index]
            if depth >= depth_limit:
                continue
            for action, successor in spec.successors(states[current_index]):
                if successor in index_of:
                    continue
                successor_index = len(states)
                index_of[successor] = successor_index
                states.append(successor)
                parents.append((current_index, action))
                depths.append(depth + 1)
                if successor == target:
                    return _reconstruct_path(successor_index, parents)
                queue.append(successor_index)
        raise RuntimeError(  # pragma: no cover - fingerprint collision
            "violating state unreachable within its BFS depth — a"
            " 64-bit fingerprint collision corrupted the frontier"
        )

    # ------------------------------------------------------------------
    def _check_invariants(
        self,
        state: GlobalState,
        index: int,
        parents: List[Optional[Tuple[int, Action]]],
        states: List[GlobalState],
    ) -> Optional[InvariantViolation]:
        for invariant in self.invariants:
            message = invariant(self.spec, state)
            if message is not None:
                return InvariantViolation(
                    message=message,
                    state=state,
                    path=_reconstruct_path(index, parents),
                )
        return None


def _reconstruct_path(
    index: int, parents: List[Optional[Tuple[int, Action]]]
) -> List[Action]:
    path: List[Action] = []
    cursor: Optional[int] = index
    while cursor is not None:
        entry = parents[cursor]
        if entry is None:
            break
        parent_index, action = entry
        path.append(action)
        cursor = parent_index
    path.reverse()
    return path
