"""Claim-B machinery: the snapshot task ≠ atomic memory snapshots.

Section 8 of the paper: "the TLC model-checker confirms that, when there
are 3 processors, the algorithm of Figure 3 ... does not provide atomic
memory snapshots: in some executions, a processor returns a set of
inputs I such that at no point in time did the memory contain exactly
the set of inputs I."

"The memory contains the set of inputs I at time t" is read as: the
union of the views stored in the registers at time t equals I.  A
counterexample is an execution prefix in which some processor outputs
``I`` while no state from the initial one up to (and including) the
output step had memory union ``I`` — the output cannot be linearized as
a memory snapshot anywhere within the operation's interval (the
operation spans the whole prefix, since the algorithm is single-shot).

Two search strategies are provided:

- :func:`find_non_atomic_execution` — exhaustive BFS over a
  history-augmented system whose states carry the set of memory unions
  seen along the path (a small, monotonically growing set bounded by
  ``2^N``); finds a shortest counterexample or proves none exists for
  the given wiring;
- :func:`random_walk_non_atomic_search` — cheap randomized search over
  schedules and wirings, used by the statistical experiments and for
  larger ``N``.

Counterexamples carry the full schedule, so they can be (and in the
tests are) replayed step-by-step in the simulator for independent
validation against the recorded trace.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.checker.system import Action, GlobalState, SystemSpec
from repro.core.views import RegisterRecord, View


def memory_union(state: GlobalState) -> View:
    """The set of inputs currently stored in memory (union of register views)."""
    union: frozenset = frozenset()
    for record in state.registers:
        view = record.view if isinstance(record, RegisterRecord) else record
        union |= view
    return union


@dataclass
class AtomicityCounterexample:
    """An execution whose output never matched the memory contents."""

    pid: int
    output: View
    actions: List[Action]
    unions_seen: FrozenSet[View]

    def schedule(self) -> List[int]:
        return [action.pid for action in self.actions]

    def describe(self) -> str:
        unions = sorted(
            (sorted(u, key=repr) for u in self.unions_seen), key=lambda u: (len(u), u)
        )
        return (
            f"processor {self.pid} outputs {sorted(self.output, key=repr)!r} after"
            f" {len(self.actions)} steps, but the memory only ever contained"
            f" the unions {unions!r}"
        )


def find_non_atomic_execution(
    spec: SystemSpec, max_states: int = 2_000_000
) -> Tuple[Optional[AtomicityCounterexample], int, bool]:
    """BFS for a shortest claim-B counterexample under ``spec``'s wiring.

    Returns ``(counterexample_or_None, states_explored, complete)``.
    ``complete=True`` with no counterexample proves that, for this
    wiring, every output always matched some earlier memory union.
    """
    initial = spec.initial_state()
    initial_aug = (initial, frozenset({memory_union(initial)}))
    index_of: Dict[Tuple[GlobalState, FrozenSet[View]], int] = {initial_aug: 0}
    table: List[Tuple[GlobalState, FrozenSet[View]]] = [initial_aug]
    parents: List[Optional[Tuple[int, Action]]] = [None]
    queue: deque = deque([0])
    complete = True

    while queue:
        current_index = queue.popleft()
        current, seen = table[current_index]
        already_done = {
            pid
            for pid in range(spec.n_processors)
            if spec.terminated(current, pid)
        }
        for action, successor in spec.successors(current):
            new_seen = seen | {memory_union(successor)}
            # Did this step terminate a processor?
            pid = action.pid
            if spec.terminated(successor, pid) and pid not in already_done:
                output = spec.outputs(successor).get(pid)
                if output is not None and output not in new_seen:
                    path = _reconstruct(current_index, parents) + [action]
                    return (
                        AtomicityCounterexample(
                            pid=pid,
                            output=output,
                            actions=path,
                            unions_seen=new_seen,
                        ),
                        len(table),
                        complete,
                    )
            key = (successor, new_seen)
            if key not in index_of:
                if len(table) >= max_states:
                    complete = False
                    continue
                index_of[key] = len(table)
                table.append(key)
                parents.append((current_index, action))
                queue.append(len(table) - 1)
    return None, len(table), complete


def _reconstruct(
    index: int, parents: List[Optional[Tuple[int, Action]]]
) -> List[Action]:
    path: List[Action] = []
    cursor: Optional[int] = index
    while cursor is not None:
        entry = parents[cursor]
        if entry is None:
            break
        parent, action = entry
        path.append(action)
        cursor = parent
    path.reverse()
    return path


def dfs_non_atomic_search(
    spec: SystemSpec,
    max_visited: int = 1_000_000,
    rng: Optional[random.Random] = None,
) -> Tuple[Optional[AtomicityCounterexample], int]:
    """Depth-first claim-B search (reaches deep termination events).

    BFS visits states in length order and exhausts its budget long
    before any processor terminates; DFS dives straight down execution
    branches, which is where termination events (and hence candidate
    counterexamples) live.  With ``rng`` the successor order is
    shuffled per expansion, de-biasing the dive direction.

    Returns ``(counterexample_or_None, states_visited)``.  Paths are
    reconstructed by parent pointers, so discovered counterexamples are
    replayable like the BFS ones.
    """
    initial = spec.initial_state()
    start = (initial, frozenset({memory_union(initial)}))
    index_of: Dict[Tuple[GlobalState, FrozenSet[View]], int] = {start: 0}
    parents: List[Optional[Tuple[int, Action]]] = [None]
    table: List[Tuple[GlobalState, FrozenSet[View]]] = [start]
    stack: List[int] = [0]

    while stack and len(table) < max_visited:
        current_index = stack.pop()
        current, seen = table[current_index]
        already_done = {
            pid
            for pid in range(spec.n_processors)
            if spec.terminated(current, pid)
        }
        successors = list(spec.successors(current))
        if rng is not None:
            rng.shuffle(successors)
        for action, successor in successors:
            new_seen = seen | {memory_union(successor)}
            pid = action.pid
            if pid not in already_done and spec.terminated(successor, pid):
                output = spec.outputs(successor).get(pid)
                if output is not None and output not in new_seen:
                    path = _reconstruct(current_index, parents) + [action]
                    return (
                        AtomicityCounterexample(
                            pid=pid,
                            output=output,
                            actions=path,
                            unions_seen=new_seen,
                        ),
                        len(table),
                    )
            key = (successor, new_seen)
            if key not in index_of:
                index_of[key] = len(table)
                table.append(key)
                parents.append((current_index, action))
                stack.append(len(table) - 1)
    return None, len(table)


def extend_avoiding_union(
    spec: SystemSpec,
    counterexample: AtomicityCounterexample,
    max_extra_steps: int = 100_000,
) -> Optional[List[Action]]:
    """Extend a prefix counterexample to a quiescent full execution.

    The prefix certifies that the output ``I`` was never a memory union
    *up to the output*.  The paper's phrasing is stronger — "at no point
    in time" — so we greedily extend the schedule, preferring steps that
    keep the union different from ``I``, until every processor has
    terminated (the algorithm is wait-free, so this is finite).  After
    quiescence the memory never changes again; if ``I`` never appeared,
    the completed (now trivially infinite: only stuttering remains)
    execution witnesses the full claim.

    Returns the complete action list, or ``None`` if every continuation
    from some point would make the union equal ``I`` (not observed in
    practice; callers treat it as "prefix-only certificate").
    """
    state = spec.initial_state()
    for action in counterexample.actions:
        action, state = spec.apply(state, action.pid, action.op)
    actions = list(counterexample.actions)
    forbidden = counterexample.output
    for _ in range(max_extra_steps):
        if spec.all_terminated(state):
            return actions
        candidates = []
        for pid in range(spec.n_processors):
            for op in spec.machine.enabled_ops(state.locals[pid]):
                candidates.append((pid, op))
        progressed = False
        for pid, op in candidates:
            action, successor = spec.apply(state, pid, op)
            if memory_union(successor) != forbidden:
                state = successor
                actions.append(action)
                progressed = True
                break
        if not progressed:
            return None
    return None


def random_walk_non_atomic_search(
    spec: SystemSpec,
    rng: random.Random,
    walks: int = 1_000,
    max_steps: int = 10_000,
) -> Optional[AtomicityCounterexample]:
    """Randomized schedule search for a claim-B counterexample.

    Cheap and incomplete; used for larger configurations and as a
    cross-check of the exhaustive search.
    """
    for _ in range(walks):
        state = spec.initial_state()
        seen = frozenset({memory_union(state)})
        actions: List[Action] = []
        done: set = set()
        for _ in range(max_steps):
            enabled: List[Tuple[int, object]] = []
            for pid in range(spec.n_processors):
                for op in spec.machine.enabled_ops(state.locals[pid]):
                    enabled.append((pid, op))
            if not enabled:
                break
            pid, op = enabled[rng.randrange(len(enabled))]
            action, state = spec.apply(state, pid, op)
            actions.append(action)
            seen = seen | {memory_union(state)}
            if pid not in done and spec.terminated(state, pid):
                done.add(pid)
                output = spec.outputs(state).get(pid)
                if output is not None and output not in seen:
                    return AtomicityCounterexample(
                        pid=pid, output=output, actions=actions, unions_seen=seen
                    )
    return None


def pattern_walk_non_atomic_search(
    spec: SystemSpec,
    rng: random.Random,
    walks: int = 200,
    max_steps: int = 3_000,
    max_pattern_length: int = 12,
) -> Optional[AtomicityCounterexample]:
    """Pattern-scheduled claim-B search.

    Uniform walks never hit the structured interleavings that covering
    choreographies need; repeating a short random pid pattern (the kind
    of schedule behind Figure 2) reaches them.  Each walk draws a fresh
    pattern and a fresh resolution of the write-choice nondeterminism.
    """
    for _ in range(walks):
        pattern = [
            rng.randrange(spec.n_processors)
            for _ in range(rng.randint(2, max_pattern_length))
        ]
        state = spec.initial_state()
        seen = frozenset({memory_union(state)})
        actions: List[Action] = []
        done: set = set()
        cursor = 0
        for _ in range(max_steps):
            chosen = None
            for _ in range(len(pattern)):
                pid = pattern[cursor % len(pattern)]
                cursor += 1
                if spec.machine.enabled_ops(state.locals[pid]):
                    chosen = pid
                    break
            if chosen is None:
                break
            ops = spec.machine.enabled_ops(state.locals[chosen])
            op = ops[rng.randrange(len(ops))]
            action, state = spec.apply(state, chosen, op)
            actions.append(action)
            seen = seen | {memory_union(state)}
            if chosen not in done and spec.terminated(state, chosen):
                done.add(chosen)
                output = spec.outputs(state).get(chosen)
                if output is not None and output not in seen:
                    return AtomicityCounterexample(
                        pid=chosen, output=output, actions=actions,
                        unions_seen=seen,
                    )
    return None


def best_first_non_atomic_search(
    spec: SystemSpec,
    max_visited: int = 1_000_000,
) -> Tuple[Optional[AtomicityCounterexample], int]:
    """Best-first claim-B search prioritizing level progress.

    Witness terminations live behind long level climbs; plain BFS
    exhausts its budget at shallow depth and plain DFS dives without
    direction.  This search orders the frontier by the summed levels of
    the processors (ties broken FIFO), steering the budget toward
    states where a termination — and hence a potential counterexample —
    is near.  Returns ``(counterexample_or_None, states_visited)``;
    like the other bounded searches, a ``None`` is a failed
    falsification attempt, not a proof (the proof lives in
    :mod:`repro.checker.claim_b`).
    """
    import heapq
    import itertools as _itertools

    def priority(state: GlobalState) -> int:
        total = 0
        for local in state.locals:
            total += getattr(local, "level", 0)
        return -total

    initial = spec.initial_state()
    start = (initial, frozenset({memory_union(initial)}))
    counter = _itertools.count()
    heap = [(priority(initial), next(counter), start)]
    visited = {start}
    parents: Dict[Tuple[GlobalState, FrozenSet[View]], Optional[Tuple]] = {
        start: None
    }

    while heap and len(visited) < max_visited:
        _, _, (state, seen) = heapq.heappop(heap)
        already_done = {
            pid
            for pid in range(spec.n_processors)
            if spec.terminated(state, pid)
        }
        for action, successor in spec.successors(state):
            new_seen = seen | {memory_union(successor)}
            pid = action.pid
            if pid not in already_done and spec.terminated(successor, pid):
                output = spec.outputs(successor).get(pid)
                if output is not None and output not in new_seen:
                    # Reconstruct the path through the parent links.
                    path = [action]
                    cursor = (state, seen)
                    while parents[cursor] is not None:
                        parent_key, parent_action = parents[cursor]
                        path.append(parent_action)
                        cursor = parent_key
                    path.reverse()
                    return (
                        AtomicityCounterexample(
                            pid=pid, output=output, actions=path,
                            unions_seen=new_seen,
                        ),
                        len(visited),
                    )
            key = (successor, new_seen)
            if key not in visited:
                visited.add(key)
                parents[key] = ((state, seen), action)
                heapq.heappush(
                    heap, (priority(successor), next(counter), key)
                )
    return None, len(visited)
