"""Claim B investigated: is any output never the memory content?

Section 8 of the paper reports that TLC found, for 3 processors, an
execution of the Figure 3 algorithm in which "a processor returns a set
of inputs I such that at no point in time did the memory contain exactly
the set of inputs I".  We formalize "the memory contains the set of
inputs I at time t" as: the union of the views stored in the registers
at time t equals I (the set of inputs currently stored in memory).

**Reproduction outcome (documented in EXPERIMENTS.md): under this
formalization the claim does not hold for our faithful implementation.**
This module contains the machinery behind that finding:

- :func:`exhaustive_claim_b_search` — an *exhaustive* search over a
  sound abstraction of the only possible counterexample shape.  For a
  witness output ``W = {1,2}`` (sizes 1 and 3 are impossible — see
  below — and other two-element sets are isomorphic under renaming):

  * both processors with inputs in ``W`` must keep their views within
    ``W`` until the witness outputs (reading any 3-containing record
    permanently contaminates a view, and a contaminated processor can
    never again write the exactly-``W`` records the witness's clean
    scans must read; a single clean climber cannot sustain the token
    dance — its one write per cycle cannot both erase the covering
    "3-token" in its next read path and bridge the gap its own write
    instant opens);
  * the union must differ from ``W`` at every state up to the output;
  * processor 3's exact view is irrelevant: in this region nobody ever
    reads its records (doing so is contamination), its enabled
    operations do not depend on its view, and any register it last
    wrote contributes its input to the union regardless — so it is
    abstracted to an opaque *token writer*, collapsing the state space
    to ~1.5M states per wiring class, which the search exhausts.

  The search explores every wiring (modulo relabelling) and returns
  ``exhausted=True`` with no hit: no such execution exists.

- Witness sizes 1 and 3 are impossible analytically: a full-set output
  ``{1,2,3}`` fails because the witness writes its own view during its
  final climb and the union then equals it (everything is an input);
  a singleton ``{x}`` fails by the single-clean-climber argument above
  (only the witness itself can write exactly-``{x}`` records).

The *spirit* of claim B is nevertheless true and reproducible: the
output need not correspond to the memory contents at any instant of the
scan that produced it — see
:func:`repro.sim.scripted.build_non_linearizable_scan_runner` and
benchmark E5.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

#: Opaque register value standing for "last written by the token
#: processor" — its precise view is irrelevant in the searched region.
TOKEN = "TOKEN"
_INIT = ("INIT",)

#: The witness output: both "climber" inputs.
_W = frozenset({1, 2})

_PHASE_WRITE = 0
_PHASE_SCAN = 1
_PHASE_DONE = 2


@dataclass
class ClaimBResult:
    """Outcome of the abstracted exhaustive search for one wiring."""

    wiring: Tuple[Tuple[int, ...], ...]
    found: bool
    exhausted: bool
    states: int
    #: Schedule of the counterexample, if found (never, empirically).
    schedule: Optional[List[Tuple[int, Optional[int]]]] = None


def _initial_state():
    climber_a = (frozenset({1}), 0, 0b111, _PHASE_WRITE, 0, 1, None)
    climber_b = (frozenset({2}), 0, 0b111, _PHASE_WRITE, 0, 1, None)
    token_writer = (0b111, _PHASE_WRITE, 0)
    return ((_INIT, _INIT, _INIT), climber_a, climber_b, token_writer)


def _union_of(registers) -> frozenset:
    union: set = set()
    for value in registers:
        if value == TOKEN:
            union.add(3)
        elif value is not _INIT and value[0] == "R":
            union |= value[1]
    return frozenset(union)


def _successors(state, wirings, level_target):
    registers, climber_a, climber_b, token_writer = state
    result = []
    for pid, local in ((0, climber_a), (1, climber_b)):
        view, level, unwritten, phase, scan_pos, all_match, min_level = local
        if phase == _PHASE_DONE:
            continue
        if phase == _PHASE_WRITE:
            for reg in range(3):
                if not (unwritten >> reg) & 1:
                    continue
                remaining = unwritten & ~(1 << reg)
                if remaining == 0:
                    remaining = 0b111
                physical = wirings[pid][reg]
                new_registers = (
                    registers[:physical]
                    + (("R", view, level),)
                    + registers[physical + 1 :]
                )
                new_local = (view, level, remaining, _PHASE_SCAN, 0, 1, None)
                result.append((pid, reg, new_registers, new_local))
        else:
            physical = wirings[pid][scan_pos]
            value = registers[physical]
            if value == TOKEN:
                continue  # prune: the climber would absorb input 3
            if value is _INIT:
                read_view, read_level = frozenset(), 0
            else:
                read_view, read_level = value[1], value[2]
            if all_match and read_view == view:
                new_view = view
                new_min = (
                    read_level if min_level is None else min(min_level, read_level)
                )
                new_match = 1
            else:
                new_view = view | read_view
                new_min = None
                new_match = 0
            if scan_pos + 1 < 3:
                new_local = (
                    new_view, level, unwritten, _PHASE_SCAN,
                    scan_pos + 1, new_match, new_min,
                )
            else:
                new_level = (new_min + 1) if new_match else 0
                if new_level >= level_target:
                    new_local = (
                        new_view, new_level, 0, _PHASE_DONE, 0, 1, None
                    )
                else:
                    new_local = (
                        new_view, new_level, unwritten, _PHASE_WRITE,
                        0, 1, None,
                    )
            result.append((pid, None, registers, new_local))

    unwritten, phase, scan_pos = token_writer
    if phase == _PHASE_WRITE:
        for reg in range(3):
            if not (unwritten >> reg) & 1:
                continue
            remaining = unwritten & ~(1 << reg)
            if remaining == 0:
                remaining = 0b111
            physical = wirings[2][reg]
            new_registers = (
                registers[:physical] + (TOKEN,) + registers[physical + 1 :]
            )
            result.append((2, reg, new_registers, (remaining, _PHASE_SCAN, 0)))
    else:
        next_pos = scan_pos + 1
        new_local = (
            (unwritten, _PHASE_WRITE, 0)
            if next_pos == 3
            else (unwritten, _PHASE_SCAN, next_pos)
        )
        result.append((2, None, registers, new_local))
    return result


def _apply(state, successor):
    pid, _, new_registers, new_local = successor
    registers, climber_a, climber_b, token_writer = state
    if pid == 0:
        return (new_registers, new_local, climber_b, token_writer)
    if pid == 1:
        return (new_registers, climber_a, new_local, token_writer)
    return (new_registers, climber_a, climber_b, new_local)


def exhaustive_claim_b_search(
    wirings: Sequence[Sequence[int]],
    level_target: int = 3,
    max_visited: int = 50_000_000,
) -> ClaimBResult:
    """Exhaust the abstracted counterexample region for one wiring.

    Returns ``exhausted=True`` when the *entire* pruned region was
    explored without finding a witness termination — a proof (for this
    wiring and the ``W = {1,2}`` shape) that no execution outputs ``W``
    while the memory union avoids ``W`` throughout.
    """
    wirings = tuple(tuple(w) for w in wirings)
    initial = _initial_state()
    visited: Set = {initial}
    frames: List[List] = [[initial, None, 0]]
    path: List[Tuple[int, Optional[int]]] = []

    while frames:
        frame = frames[-1]
        state, successors, cursor = frame
        if successors is None:
            successors = _successors(state, wirings, level_target)
            frame[1] = successors
        if cursor >= len(successors):
            frames.pop()
            if path:
                path.pop()
            continue
        frame[2] = cursor + 1
        successor = successors[cursor]
        new_state = _apply(state, successor)
        if _union_of(new_state[0]) == _W:
            continue  # the union hit W: no continuation can be a witness
        pid = successor[0]
        if pid in (0, 1):
            new_local = new_state[1] if pid == 0 else new_state[2]
            old_local = state[1] if pid == 0 else state[2]
            if new_local[3] == _PHASE_DONE and old_local[3] != _PHASE_DONE:
                if new_local[0] == _W:
                    return ClaimBResult(
                        wiring=wirings,
                        found=True,
                        exhausted=False,
                        states=len(visited),
                        schedule=path + [(pid, successor[1])],
                    )
        if new_state in visited:
            continue
        if len(visited) >= max_visited:
            return ClaimBResult(
                wiring=wirings, found=False, exhausted=False,
                states=len(visited),
            )
        visited.add(new_state)
        frames.append([new_state, None, 0])
        path.append((pid, successor[1]))
    return ClaimBResult(
        wiring=wirings, found=False, exhausted=True, states=len(visited)
    )


def _sweep_task(
    task: Tuple[Tuple[Tuple[int, ...], ...], int, int]
) -> ClaimBResult:
    wiring, level_target, max_visited = task
    return exhaustive_claim_b_search(
        wiring, level_target=level_target, max_visited=max_visited
    )


def sweep_all_wirings(
    level_target: int = 3, max_visited: int = 50_000_000, jobs: int = 1
) -> List[ClaimBResult]:
    """Run the exhaustive search over all wirings with ``σ_A = id``.

    Relabelling physical registers normalizes the first climber's wiring
    to the identity, so the 36 remaining combinations cover every
    configuration.  Independent per wiring, so ``jobs > 1`` fans the 36
    searches over a worker pool (results stay in enumeration order).
    """
    from repro.checker.parallel import ordered_parallel_map

    permutations = list(itertools.permutations(range(3)))
    tasks = [
        ((tuple(range(3)), wiring_b, wiring_c), level_target, max_visited)
        for wiring_b in permutations
        for wiring_c in permutations
    ]
    return ordered_parallel_map(_sweep_task, tasks, jobs)
