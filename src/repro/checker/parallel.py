"""Multi-core exploration: the reproduction's parallel TLC engine.

TLC is a *parallel* fingerprint-set explorer; this module gives the
reproduction the same architecture on top of ``multiprocessing``, at
two grains:

**Across wiring classes** (:func:`check_snapshot_classes`) — experiment
E4's natural unit of work.  Each canonical wiring class (from
:func:`~repro.checker.fast_snapshot.canonical_wiring_classes`) is an
independent exhaustive/budgeted exploration, so a pool of workers
sweeps classes with zero coordination; results come back in class order
regardless of completion order, so the merged report is deterministic.

**Within one class** (:func:`explore_sharded`) — frontier-sharded BFS
for the day one class outgrows a single core.  Every state is owned by
the shard ``fingerprint_int(state) % jobs`` (the deterministic packed
-integer fingerprint, *not* Python's randomized object hash, so all
workers — even spawn-started ones — agree on ownership).  Workers hold
the visited set of their own shard only, expand one BFS layer per
round, and hand successors owned by other shards back to the driver,
which routes them; per-shard statistics are merged in shard order, so
two runs with the same ``jobs`` produce identical results.

Exhaustive runs are partition-invariant: the sharded engine reports
exactly the serial engine's ``(states, transitions, ok)`` because both
count each distinct state once and each generated successor once.
Budgeted runs stop at a BFS-layer boundary (the first round whose
admissions reach the budget), which is deterministic for a fixed
``jobs`` but may admit slightly more than ``max_states``.

Everything degrades gracefully: ``jobs=1`` (or an environment without
usable ``multiprocessing``) runs the serial engines in-process with
identical semantics.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

from repro.checker.fast_snapshot import (
    FastExplorationResult,
    FastSnapshotSpec,
    canonical_wiring_classes,
)
from repro.checker.fingerprint import fingerprint_int

WiringClass = Tuple[Tuple[int, ...], ...]


# ----------------------------------------------------------------------
# Pool plumbing
# ----------------------------------------------------------------------

def _mp_context():
    """Prefer fork (cheap, inherits the interpreter) when available."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def effective_jobs(requested: int) -> int:
    """Cap a worker count at the host's usable core count, warning once.

    Oversubscription is a measured regression, not a no-op: the PR 1
    bench on a 1-CPU host recorded ``jobs=2``/``jobs=4`` sweeps *slower*
    than serial, because extra workers add fork + IPC cost without any
    added parallelism.  Both parallel entry points route through this
    cap; benchmarks record the capped value next to the requested one.
    """
    available = os.cpu_count() or 1
    if requested > available:
        warnings.warn(
            f"jobs={requested} exceeds the {available} usable core(s);"
            f" capping to {available} — oversubscribed workers are pure"
            " fork/IPC overhead (see BENCH_checker.json jobs regression)",
            RuntimeWarning,
            stacklevel=2,
        )
        return available
    return max(1, requested)


def ordered_parallel_map(func, items: Sequence, jobs: int) -> List:
    """``[func(x) for x in items]`` fanned over ``jobs`` processes.

    Results keep the input order (determinism), one item per task
    (exploration tasks are coarse and uneven).  Falls back to the
    serial comprehension when ``jobs <= 1``, for single-item inputs,
    or when worker processes cannot be created in this environment.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    ctx = _mp_context()
    try:
        pool = ctx.Pool(processes=min(jobs, len(items)))
    except OSError:  # pragma: no cover - sandboxed/fork-less hosts
        return [func(item) for item in items]
    with pool:
        return pool.map(func, items, chunksize=1)


# ----------------------------------------------------------------------
# Grain 1: one worker per canonical wiring class
# ----------------------------------------------------------------------

def _explore_class_task(
    task: Tuple[
        Tuple[int, ...], WiringClass, Optional[int], int, bool, bool, bool
    ],
) -> FastExplorationResult:
    (inputs, wiring, level_target, max_states, check_safety, fingerprint,
     symmetry) = task
    spec = FastSnapshotSpec(inputs, wiring, level_target=level_target)
    return spec.explore(
        max_states=max_states,
        check_safety=check_safety,
        fingerprint=fingerprint,
        symmetry=symmetry,
    )


def check_snapshot_classes(
    n_processors: int,
    n_registers: Optional[int] = None,
    budget: Optional[int] = None,
    jobs: int = 1,
    check_safety: bool = True,
    fingerprint: bool = False,
    level_target: Optional[int] = None,
    inputs: Optional[Sequence[int]] = None,
    symmetry: bool = False,
) -> List[Tuple[WiringClass, FastExplorationResult]]:
    """Sweep every canonical wiring class, ``jobs`` classes at a time.

    The parallel entry point behind experiment E4's N=3 sweep and
    ``python -m repro check --jobs N``.  Returns ``(wiring, result)``
    pairs in canonical class order whatever the completion order, so
    reports and verdicts are byte-identical across ``jobs`` settings.
    ``jobs`` is capped at the host's core count (:func:`effective_jobs`);
    with ``symmetry`` each class explores orbit representatives under
    its wiring-stabilizer group and reports ``covered_states``.
    """
    registers = n_registers if n_registers is not None else n_processors
    classes = canonical_wiring_classes(n_processors, registers)
    chosen_inputs = (
        tuple(inputs)
        if inputs is not None
        else tuple(range(1, n_processors + 1))
    )
    max_states = budget if budget is not None else 10 ** 9
    tasks = [
        (chosen_inputs, wiring, level_target, max_states, check_safety,
         fingerprint, symmetry)
        for wiring in classes
    ]
    results = ordered_parallel_map(
        _explore_class_task, tasks, effective_jobs(jobs)
    )
    return list(zip(classes, results))


# ----------------------------------------------------------------------
# Grain 2: frontier-sharded BFS within one wiring class
# ----------------------------------------------------------------------

def _shard_worker(
    conn,
    inputs: Tuple[int, ...],
    wiring: WiringClass,
    level_target: Optional[int],
    shard: int,
    n_shards: int,
    check_safety: bool,
    fingerprint: bool,
    symmetry: bool = False,
) -> None:
    """One frontier shard: owns states with ``fp(s) % n_shards == shard``.

    Protocol: driver sends ``("round", entries)``; worker admits the
    new ones into its visited set, expands that BFS layer, and replies
    ``("layer", admitted, transitions, violation, outboxes, covered,
    skipped)`` where ``outboxes`` maps each shard id to the successor
    entries it owns.  ``("stop",)`` terminates.

    Wire format: every boundary state travels as ``(state << 1) |
    canonical_bit``.  The bit asserts the sender already put the state
    in canonical form, letting the receiver skip re-canonicalizing it
    — ``skipped`` counts those skips (0 outside symmetry runs).  States
    without the bit are canonicalized on receipt, so the protocol stays
    correct for any mix.

    With ``symmetry`` every successor is canonicalized *before* the
    ownership fingerprint, so each orbit has exactly one owning shard
    and the union of shard visited-sets is the quotient graph; the
    driver canonicalizes the initial state with the same group.
    ``covered`` then sums the orbit sizes of this layer's admissions
    (``None`` otherwise).
    """
    try:
        spec = FastSnapshotSpec(inputs, wiring, level_target=level_target)
        canonicalizer = None
        if symmetry:
            from repro.checker.symmetry import FastCanonicalizer

            canonicalizer = FastCanonicalizer(spec)
            if canonicalizer.trivial:
                canonicalizer = None
        seen = set()
        buf: List[int] = []
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            batch = message[1]
            admitted: List[int] = []
            covered: Optional[int] = 0 if symmetry else None
            violation: Optional[str] = None
            skipped = 0
            for entry in batch:
                state = entry >> 1
                if canonicalizer is not None:
                    if entry & 1:
                        skipped += 1  # sender certified canonical form
                    else:
                        state = canonicalizer.canonical(state)
                key = fingerprint_int(state) if fingerprint else state
                if key in seen:
                    continue
                seen.add(key)
                admitted.append(state)
                if symmetry:
                    covered += (
                        canonicalizer.orbit_size(state)
                        if canonicalizer is not None
                        else 1
                    )
                if check_safety and violation is None:
                    violation = spec.check_outputs(state)
            transitions = 0
            outboxes: Dict[int, List[int]] = {}
            if violation is None:
                canonical = (
                    canonicalizer.canonical
                    if canonicalizer is not None
                    else None
                )
                canonical_bit = 1 if canonical is not None else 0
                for state in admitted:
                    spec.successor_states_into(state, buf)
                    transitions += len(buf)
                    for successor in buf:
                        if canonical is not None:
                            successor = canonical(successor)
                        owner = fingerprint_int(successor) % n_shards
                        outboxes.setdefault(owner, []).append(
                            (successor << 1) | canonical_bit
                        )
            conn.send(
                ("layer", len(admitted), transitions, violation, outboxes,
                 covered, skipped)
            )
    except EOFError:  # driver went away mid-run
        pass
    except Exception as exc:  # surface worker crashes to the driver
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, BrokenPipeError):
            pass
    finally:
        conn.close()


def explore_sharded(
    inputs: Sequence[int],
    wiring: WiringClass,
    jobs: int = 2,
    max_states: int = 200_000_000,
    check_safety: bool = True,
    level_target: Optional[int] = None,
    fingerprint: bool = False,
    symmetry: bool = False,
) -> FastExplorationResult:
    """Frontier-sharded BFS over one wiring class across ``jobs`` cores.

    Level-synchronous: each round every worker expands exactly one BFS
    layer of its shard and exchanges boundary states through the
    driver.  The driver merges per-shard statistics in shard order and
    applies the state budget at layer boundaries, so the result is
    deterministic for a fixed ``jobs`` — and equal to the serial
    engine's on any exhaustive (non-truncated) run.  ``jobs`` is capped
    at the host's core count (:func:`effective_jobs`).

    With ``symmetry`` the shards jointly explore the quotient graph:
    workers canonicalize successors before the ownership fingerprint
    (so orbits have unique owners) and the merged result carries
    ``covered_states``.  Boundary states cross the wire as ``(state <<
    1) | canonical_bit``; the bit certifies the sender's
    canonicalization, so receivers skip the (previously duplicated)
    re-canonicalization of every boundary state — the merged result
    reports the skips as ``recanonicalizations_skipped``.

    Wait-freedom (lasso) analysis needs the full cross-shard edge list
    and is deliberately not offered here; run the serial engine with
    ``check_wait_freedom=True`` for that (N=2 certification does).
    """
    spec = FastSnapshotSpec(inputs, wiring, level_target=level_target)
    jobs = effective_jobs(jobs)
    if jobs <= 1:
        return spec.explore(
            max_states=max_states,
            check_safety=check_safety,
            fingerprint=fingerprint,
            symmetry=symmetry,
        )

    canonicalizer = None
    if symmetry:
        from repro.checker.symmetry import FastCanonicalizer

        canonicalizer = FastCanonicalizer(spec)

    ctx = _mp_context()
    connections = []
    workers = []
    try:
        try:
            for shard in range(jobs):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_shard_worker,
                    args=(
                        child_conn, tuple(inputs), wiring, level_target,
                        shard, jobs, check_safety, fingerprint, symmetry,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                connections.append(parent_conn)
                workers.append(process)
        except OSError:  # pragma: no cover - process-less environments
            return spec.explore(
                max_states=max_states,
                check_safety=check_safety,
                fingerprint=fingerprint,
                symmetry=symmetry,
            )

        initial = spec.initial_state()
        canonical_bit = 0
        if canonicalizer is not None:
            initial = canonicalizer.canonical(initial)
            if not canonicalizer.trivial:
                canonical_bit = 1
        inboxes: Dict[int, List[int]] = {
            fingerprint_int(initial) % jobs: [(initial << 1) | canonical_bit]
        }
        states = 0
        transitions = 0
        complete = True
        covered: Optional[int] = 0 if symmetry else None
        group_order = canonicalizer.order if canonicalizer is not None else None
        recanon_skipped: Optional[int] = 0 if symmetry else None
        violation: Optional[str] = None

        while inboxes:
            for shard in range(jobs):
                connections[shard].send(("round", inboxes.get(shard, [])))
            outboxes: Dict[int, List[int]] = {}
            for shard in range(jobs):
                reply = connections[shard].recv()
                if reply[0] == "error":
                    raise RuntimeError(f"shard {shard} failed: {reply[1]}")
                (_, admitted, shard_transitions, shard_violation, out,
                 shard_covered, shard_skipped) = reply
                states += admitted
                transitions += shard_transitions
                if shard_covered is not None and covered is not None:
                    covered += shard_covered
                if recanon_skipped is not None:
                    recanon_skipped += shard_skipped
                if shard_violation is not None and violation is None:
                    violation = shard_violation
                for owner, boundary in out.items():
                    outboxes.setdefault(owner, []).extend(boundary)
            if violation is not None:
                return FastExplorationResult(
                    states=states,
                    transitions=transitions,
                    complete=True,
                    violation=violation,
                    covered_states=covered,
                    symmetry_group_order=group_order,
                    recanonicalizations_skipped=recanon_skipped,
                )
            inboxes = {owner: batch for owner, batch in outboxes.items() if batch}
            if states >= max_states and inboxes:
                complete = False
                truncated = sum(len(batch) for batch in inboxes.values())
                return FastExplorationResult(
                    states=states,
                    transitions=transitions,
                    complete=False,
                    truncated_transitions=truncated,
                    covered_states=covered,
                    symmetry_group_order=group_order,
                    recanonicalizations_skipped=recanon_skipped,
                )

        return FastExplorationResult(
            states=states, transitions=transitions, complete=complete,
            covered_states=covered, symmetry_group_order=group_order,
            recanonicalizations_skipped=recanon_skipped,
        )
    finally:
        for conn in connections:
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
            conn.close()
        for process in workers:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
