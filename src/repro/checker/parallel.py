"""Multi-core exploration: the reproduction's parallel TLC engine.

TLC is a *parallel* fingerprint-set explorer; this module gives the
reproduction the same architecture on top of ``multiprocessing``, at
two grains:

**Across wiring classes** (:func:`check_snapshot_classes`) — experiment
E4's natural unit of work.  Each canonical wiring class (from
:func:`~repro.checker.fast_snapshot.canonical_wiring_classes`) is an
independent exhaustive/budgeted exploration, so a pool of workers
sweeps classes with zero coordination; results come back in class order
regardless of completion order, so the merged report is deterministic.

**Within one class** (:func:`explore_sharded`) — frontier-sharded BFS
for the day one class outgrows a single core.  Every state is owned by
the shard ``fingerprint_int(state) % jobs`` (the deterministic packed
-integer fingerprint, *not* Python's randomized object hash, so all
workers — even spawn-started ones — agree on ownership).  Workers hold
the visited set of their own shard only, expand one BFS layer per
round, and hand successors owned by other shards back to the driver,
which routes them; per-shard statistics are merged in shard order, so
two runs with the same ``jobs`` produce identical results.

Exhaustive runs are partition-invariant: the sharded engine reports
exactly the serial engine's ``(states, transitions, ok)`` because both
count each distinct state once and each generated successor once.
Budgeted runs stop at a BFS-layer boundary (the first round whose
admissions reach the budget), which is deterministic for a fixed
``jobs`` but may admit slightly more than ``max_states``.

Everything degrades gracefully: ``jobs=1`` (or an environment without
usable ``multiprocessing``) runs the serial engines in-process with
identical semantics.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from dataclasses import asdict, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.checker.fast_snapshot import (
    FastExplorationResult,
    FastSnapshotSpec,
    canonical_wiring_classes,
)
from repro.checker.fingerprint import fingerprint_int
from repro.store.base import StoreConfig, require_cross_process_stable
from repro.store.checkpoint import (
    RunCheckpointer,
    SweepCheckpoint,
    load_result,
    write_u64_file,
)

WiringClass = Tuple[Tuple[int, ...], ...]


def class_key(wiring: WiringClass) -> str:
    """Stable identifier of a canonical wiring class (sweep checkpoints)."""
    return ";".join(",".join(str(r) for r in perm) for perm in wiring)


def engine_label(engine: str, kernel: str = "auto") -> str:
    """Heartbeat/progress tag naming the engine and its effective kernel.

    The scalar engine has no kernel choice; for the batch engine the
    ``auto``/``native`` request is resolved to what will actually run on
    this host so progress lines are truthful even after a silent numpy
    fallback.
    """
    if engine != "batch":
        return f"engine={engine}"
    try:
        from repro.checker.native.loader import resolve_kernel

        effective = resolve_kernel(kernel)
    except Exception:  # pragma: no cover - defensive; label only
        effective = kernel
    return f"engine=batch kernel={effective}"


# ----------------------------------------------------------------------
# Pool plumbing
# ----------------------------------------------------------------------

def _mp_context():
    """Prefer fork (cheap, inherits the interpreter) when available."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


def effective_jobs(requested: int) -> int:
    """Cap a worker count at the host's usable core count, warning once.

    Oversubscription is a measured regression, not a no-op: the PR 1
    bench on a 1-CPU host recorded ``jobs=2``/``jobs=4`` sweeps *slower*
    than serial, because extra workers add fork + IPC cost without any
    added parallelism.  Both parallel entry points route through this
    cap; benchmarks record the capped value next to the requested one.
    """
    available = os.cpu_count() or 1
    if requested > available:
        warnings.warn(
            f"jobs={requested} exceeds the {available} usable core(s);"
            f" capping to {available} — oversubscribed workers are pure"
            " fork/IPC overhead (see BENCH_checker.json jobs regression)",
            RuntimeWarning,
            stacklevel=2,
        )
        return available
    return max(1, requested)


def ordered_parallel_map(func, items: Sequence, jobs: int) -> List:
    """``[func(x) for x in items]`` fanned over ``jobs`` processes.

    Results keep the input order (determinism), one item per task
    (exploration tasks are coarse and uneven).  Falls back to the
    serial comprehension when ``jobs <= 1``, for single-item inputs,
    or when worker processes cannot be created in this environment.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    ctx = _mp_context()
    try:
        pool = ctx.Pool(processes=min(jobs, len(items)))
    except OSError:  # pragma: no cover - sandboxed/fork-less hosts
        return [func(item) for item in items]
    with pool:
        return pool.map(func, items, chunksize=1)


# ----------------------------------------------------------------------
# Grain 1: one worker per canonical wiring class
# ----------------------------------------------------------------------

def _class_store(
    store: Optional[StoreConfig], index: int
) -> Optional[StoreConfig]:
    """Per-class namespace of a shared store configuration.

    Classes explore concurrently, so disk-backed classes must not share
    table/run files; an explicit directory gets a per-class
    subdirectory, and a temp-backed config stays as-is (every create()
    mints a fresh temp directory anyway).
    """
    if store is None or store.backend == "ram" or store.directory is None:
        return store
    return replace(
        store, directory=str(Path(store.directory) / f"class-{index:03d}")
    )


def _explore_class_task(
    task: Tuple[
        int, Tuple[int, ...], WiringClass, Optional[int], int, bool, bool,
        bool, Optional[StoreConfig], bool, str, str, Optional[float],
    ],
) -> Tuple[int, FastExplorationResult]:
    (index, inputs, wiring, level_target, max_states, check_safety,
     fingerprint, symmetry, store, por, engine, kernel,
     heartbeat_every) = task
    heartbeat = None
    if heartbeat_every is not None:
        from repro.service.heartbeat import Heartbeat

        # Per-class heartbeats are labelled so interleaved lines from a
        # parallel sweep stay attributable (floats cross the task tuple;
        # Heartbeat itself holds an unpicklable emit callable).  The
        # label names the engine (and the batch engine's effective
        # kernel) so long campaign logs are self-describing.
        heartbeat = Heartbeat(
            heartbeat_every,
            label=f"class-{index:03d} {engine_label(engine, kernel)}",
        )
    spec = FastSnapshotSpec(inputs, wiring, level_target=level_target)
    result = spec.explore(
        max_states=max_states,
        check_safety=check_safety,
        fingerprint=fingerprint,
        symmetry=symmetry,
        store=_class_store(store, index),
        por=por,
        engine=engine,
        kernel=kernel,
        heartbeat=heartbeat,
    )
    return index, result


def check_snapshot_classes(
    n_processors: int,
    n_registers: Optional[int] = None,
    budget: Optional[int] = None,
    jobs: int = 1,
    check_safety: bool = True,
    fingerprint: bool = False,
    level_target: Optional[int] = None,
    inputs: Optional[Sequence[int]] = None,
    symmetry: bool = False,
    store: Optional[StoreConfig] = None,
    sweep_dir: Optional[str] = None,
    sweep_meta: Optional[Dict] = None,
    por: bool = False,
    engine: str = "scalar",
    kernel: str = "auto",
    heartbeat_every: Optional[float] = None,
) -> List[Tuple[WiringClass, FastExplorationResult]]:
    """Sweep every canonical wiring class, ``jobs`` classes at a time.

    The parallel entry point behind experiment E4's N=3 sweep and
    ``python -m repro check --jobs N``.  Returns ``(wiring, result)``
    pairs in canonical class order whatever the completion order, so
    reports and verdicts are byte-identical across ``jobs`` settings.
    ``jobs`` is capped at the host's core count (:func:`effective_jobs`);
    with ``symmetry`` each class explores orbit representatives under
    its wiring-stabilizer group and reports ``covered_states``.

    ``por`` turns on ample-set partial-order reduction inside every
    class exploration (:mod:`repro.checker.por`); verdicts are
    unchanged, per-class ``por_counters`` report the pruning.

    ``engine`` selects each class's exploration engine
    (:meth:`FastSnapshotSpec.explore`'s ``scalar``/``batch``); verdicts
    and counts are engine-independent by the batch engine's conformance
    contract.  ``kernel`` selects the batch engine's level kernel
    (``auto``/``numpy``/``native``) and is ignored by the scalar engine.

    ``store`` selects each class's visited-set backend (disk-backed
    classes are namespaced per class under the store directory).  With
    ``sweep_dir`` the sweep is checkpointed at class granularity: each
    finished class's result is recorded in ``classes.json`` as it
    lands, and a re-run over the same directory replays recorded
    classes and explores only the remainder; ``sweep_meta`` (the run's
    semantic configuration) is validated against the directory's
    ``meta.json`` so incomparable sweeps cannot be mixed.
    """
    registers = n_registers if n_registers is not None else n_processors
    classes = canonical_wiring_classes(n_processors, registers)
    chosen_inputs = (
        tuple(inputs)
        if inputs is not None
        else tuple(range(1, n_processors + 1))
    )
    max_states = budget if budget is not None else 10 ** 9
    sweep = (
        SweepCheckpoint(Path(sweep_dir), meta=sweep_meta)
        if sweep_dir is not None
        else None
    )
    results: List[Optional[FastExplorationResult]] = [None] * len(classes)
    pending: List[int] = []
    for index, wiring in enumerate(classes):
        recorded = sweep.get(class_key(wiring)) if sweep is not None else None
        if recorded is not None:
            results[index] = load_result(FastExplorationResult, recorded)
        else:
            pending.append(index)
    tasks = [
        (index, chosen_inputs, classes[index], level_target, max_states,
         check_safety, fingerprint, symmetry, store, por, engine, kernel,
         heartbeat_every)
        for index in pending
    ]
    for index, result in _run_class_tasks(tasks, effective_jobs(jobs)):
        results[index] = result
        if sweep is not None:
            sweep.record(class_key(classes[index]), asdict(result))
    assert all(result is not None for result in results)
    return list(zip(classes, results))


def _run_class_tasks(tasks: List, jobs: int):
    """Yield ``(index, result)`` per task as soon as each completes.

    Incremental completion (``imap_unordered``) is what lets the sweep
    checkpoint record every finished class even if the process dies
    before the sweep ends; order is restored by the caller's index.
    """
    if jobs <= 1 or len(tasks) <= 1:
        for task in tasks:
            yield _explore_class_task(task)
        return
    ctx = _mp_context()
    try:
        pool = ctx.Pool(processes=min(jobs, len(tasks)))
    except OSError:  # pragma: no cover - sandboxed/fork-less hosts
        for task in tasks:
            yield _explore_class_task(task)
        return
    with pool:
        yield from pool.imap_unordered(_explore_class_task, tasks, chunksize=1)


# ----------------------------------------------------------------------
# Grain 2: frontier-sharded BFS within one wiring class
# ----------------------------------------------------------------------

class ShardEngine:
    """One frontier shard's exploration state, transport-agnostic.

    Owns states with ``fp(state) % n_shards == shard``.  This class is
    the *engine* half of a shard worker: it holds the shard's visited
    set, canonicalizer, batch kernel, and ample selector, and processes
    one BFS round at a time.  The *transport* half — how rounds arrive
    and layer replies leave — is supplied by the caller: the pipe-based
    :func:`_shard_worker` (multiprocessing, same host) and the
    socket-based service worker (:mod:`repro.service.worker`, any host)
    both drive the same engine, so the two transports cannot diverge
    semantically.

    :meth:`process_round` admits a round's new entries into the visited
    set, expands that BFS layer, and returns ``(admitted, transitions,
    violation, outboxes, covered, skipped, por_counters)`` where
    ``outboxes`` maps each shard id to the successor entries it owns
    and ``por_counters`` is the shard's *cumulative* reduction
    statistics (``None`` without ``por``).  For checkpointing,
    :meth:`dump_to` streams the visited keys to a u64 file and
    :meth:`load_from` bulk-loads a previous dump; :meth:`visited_keys`
    / :meth:`load_keys` do the same through memory for transports that
    move dumps over the wire instead of a shared filesystem.

    The visited set lives in the configured :mod:`repro.store` backend,
    namespaced per shard (``shard-NNN/`` by default;
    ``store_namespace`` overrides it so a service worker re-assigned a
    shard at a new epoch never collides with stale on-disk files).

    Wire format: every boundary state travels as ``(state << 1) |
    canonical_bit``.  The bit asserts the sender already put the state
    in canonical form, letting the receiver skip re-canonicalizing it
    — ``skipped`` counts those skips (0 outside symmetry runs).  States
    without the bit are canonicalized on receipt, so the protocol stays
    correct for any mix.

    With ``symmetry`` every successor is canonicalized *before* the
    ownership fingerprint, so each orbit has exactly one owning shard
    and the union of shard visited-sets is the quotient graph; the
    driver canonicalizes the initial state with the same group.
    ``covered`` then sums the orbit sizes of this layer's admissions
    (``None`` otherwise).

    With ``por`` the shard expands each admitted state through a
    :class:`~repro.checker.por.FastAmpleSelector`.  The cycle proviso
    (C3) only trusts *locally decidable* novelty: a successor counts as
    certainly-new exactly when this shard owns it (canonical-form
    fingerprint mod ``n_shards``) and it is absent from this shard's
    visited set; foreign-owned successors are pessimistically treated
    as possibly-visited, which can only force extra full expansions,
    never unsound pruning.

    With ``engine="batch"`` the shard processes each round as numpy
    u64 arrays end to end — admission dedup, safety mask, successor
    expansion, canonicalization, ownership fingerprints, and the
    outboxes themselves all stay vectorized, and boundary batches cross
    the transport as arrays.  Admission order, violation choice, and
    every reported count match the scalar engine exactly (a driver
    never mixes engines within a run).  With ``por`` on top, the shard
    runs the level-synchronous
    :class:`~repro.checker.batch.BatchAmpleSelector` over each round's
    admissions: per-round ample-selection masks drive the masked
    ``expand_level``, so shards never re-expand pruned transitions, and
    C3 composes the sharded ownership pessimism above with the
    level-synchronous ``visited ∪ earlier-in-round`` certification —
    batch+POR shard results are verdict-conformant with (not
    count-identical to) scalar+POR ones, exactly as in the serial
    engines.
    """

    def __init__(
        self,
        inputs: Sequence[int],
        wiring: WiringClass,
        level_target: Optional[int],
        shard: int,
        n_shards: int,
        check_safety: bool,
        fingerprint: bool,
        symmetry: bool = False,
        store_config: Optional[StoreConfig] = None,
        por: bool = False,
        engine: str = "scalar",
        kernel: str = "auto",
        store_namespace: Optional[str] = None,
    ) -> None:
        self.shard = shard
        self.n_shards = n_shards
        self.check_safety = check_safety
        self.fingerprint = fingerprint
        self.symmetry = symmetry
        spec = FastSnapshotSpec(
            tuple(inputs), wiring, level_target=level_target
        )
        self.spec = spec
        canonicalizer = None
        if symmetry:
            from repro.checker.symmetry import FastCanonicalizer

            canonicalizer = FastCanonicalizer(spec)
            if canonicalizer.trivial:
                canonicalizer = None
        self.canonicalizer = canonicalizer
        self.seen = (store_config or StoreConfig()).create(
            shard=store_namespace or f"shard-{shard:03d}"
        )
        self.use_batch = engine == "batch"
        self._np = None
        self._batch_mod = None
        self.kernel = None
        self.batch_canon = None
        if self.use_batch:
            from repro.checker import batch as batch_mod

            batch_mod.require_numpy()
            import numpy as np

            self._np = np
            self._batch_mod = batch_mod
            self.kernel = batch_mod.make_kernel(spec, kernel, canonicalizer)
            self.batch_canon = self.kernel.make_canonicalizer(canonicalizer)
        self.selector = None
        self.batch_selector = None
        if por and self.use_batch:
            assert self.kernel is not None
            self.batch_selector = self._batch_mod.BatchAmpleSelector(
                self.kernel, check_safety=check_safety
            )
        elif por:
            from repro.checker.por import FastAmpleSelector

            self.selector = FastAmpleSelector(spec, check_safety=check_safety)
        self._buf: List[int] = []

    # -- POR helpers ---------------------------------------------------

    def _batch_key_of(self, states):
        if self.batch_canon is not None:
            states = self.batch_canon.canonical_many(states)
        return (
            self.kernel.fingerprint_many(states)
            if self.fingerprint
            else states
        )

    def _batch_in_visited(self, keys):
        # Sharded C3, vectorized: certainly new means locally owned
        # AND absent from this shard's visited set, so "possibly
        # visited" is foreign-owned OR present.  In fingerprint mode
        # the key already is the ownership digest; otherwise it is the
        # canonical state and the digest is recomputed, matching the
        # scalar closure.
        np = self._np
        fps = (
            keys
            if self.fingerprint
            else self.kernel.fingerprint_many(keys)
        )
        foreign = (fps % np.uint64(self.n_shards)) != np.uint64(self.shard)
        present = np.asarray(
            self.seen.contains_many(keys.tolist()), dtype=bool
        )
        return foreign | present

    def _is_new(self, successor: int) -> bool:
        # Sharded C3: only a locally-owned, locally-unvisited successor
        # is certainly new; anything owned elsewhere might already sit
        # in a foreign shard's visited set.
        if self.canonicalizer is not None:
            successor = self.canonicalizer.canonical(successor)
        if fingerprint_int(successor) % self.n_shards != self.shard:
            return False
        key = fingerprint_int(successor) if self.fingerprint else successor
        return key not in self.seen

    # -- checkpoint plumbing -------------------------------------------

    def dump_to(self, path: Path) -> int:
        """Stream the shard's visited keys to ``path`` as a u64 array."""
        return write_u64_file(Path(path), iter(self.seen))

    def load_from(self, path: Path) -> int:
        """Bulk-load a previous :meth:`dump_to` file (resume)."""
        from repro.store.checkpoint import read_u64_file

        return self.seen.load(read_u64_file(Path(path)))

    def visited_keys(self) -> List[int]:
        """The visited keys as a list (wire-transported checkpoints)."""
        return list(self.seen)

    def load_keys(self, keys: Sequence[int]) -> int:
        """Bulk-load visited keys received over a transport."""
        return self.seen.load(keys)

    def close(self) -> None:
        self.seen.close()

    # -- one BFS round -------------------------------------------------

    def process_round(self, batch):
        """Admit + expand one round; see the class docstring for fields."""
        if self.use_batch:
            return self._process_round_batch(batch)
        return self._process_round_scalar(batch)

    def _process_round_batch(self, batch):
        np = self._np
        batch_mod = self._batch_mod
        kernel = self.kernel
        batch_canon = self.batch_canon
        assert kernel is not None
        entries = np.asarray(batch, dtype=np.uint64)
        states = entries >> np.uint64(1)
        skipped = 0
        if self.canonicalizer is not None:
            certified = (entries & np.uint64(1)) == 1
            skipped = int(certified.sum())
            if batch_canon is not None and not bool(certified.all()):
                states = states.copy()
                states[~certified] = batch_canon.canonical_many(
                    states[~certified]
                )
        keys = (
            kernel.fingerprint_many(states)
            if self.fingerprint
            else states
        )
        unique_keys, first_occ = kernel.unique_first(keys)
        present = np.asarray(
            self.seen.contains_many(unique_keys.tolist()), dtype=bool
        )
        admit_pos = np.sort(first_occ[~present])
        admitted_arr = states[admit_pos]
        self.seen.add_many(keys[admit_pos].tolist())
        n_admitted = int(admitted_arr.size)
        covered = None
        if self.symmetry:
            covered = (
                int(batch_canon.orbit_sizes(admitted_arr).sum())
                if batch_canon is not None
                else n_admitted
            )
        violation = None
        if self.check_safety and n_admitted:
            _, violation = batch_mod._first_violation(
                self.spec, kernel, admitted_arr
            )
        transitions = 0
        outboxes = {}
        if violation is None and n_admitted:
            if self.batch_selector is not None:
                ample = self.batch_selector.select(
                    admitted_arr, self._batch_key_of, self._batch_in_visited
                )
                successors, _counts = kernel.expand_level(admitted_arr, ample)
            else:
                successors, _counts = kernel.expand_level(admitted_arr)
            transitions = int(successors.size)
            if batch_canon is not None:
                successors = batch_canon.canonical_many(successors)
            canonical_bit = (
                np.uint64(1) if batch_canon is not None else np.uint64(0)
            )
            owners = kernel.fingerprint_many(successors) % np.uint64(
                self.n_shards
            )
            wire = (successors << np.uint64(1)) | canonical_bit
            for owner in range(self.n_shards):
                part = wire[owners == np.uint64(owner)]
                if part.size:
                    outboxes[owner] = part
        return (
            n_admitted, transitions, violation, outboxes, covered, skipped,
            self.batch_selector.counters.as_dict()
            if self.batch_selector is not None
            else None,
        )

    def _process_round_scalar(self, batch):
        spec = self.spec
        canonicalizer = self.canonicalizer
        seen_add = self.seen.add
        buf = self._buf
        admitted: List[int] = []
        covered = 0 if self.symmetry else None
        violation = None
        skipped = 0
        for entry in batch:
            state = entry >> 1
            if canonicalizer is not None:
                if entry & 1:
                    skipped += 1  # sender certified canonical form
                else:
                    state = canonicalizer.canonical(state)
            key = fingerprint_int(state) if self.fingerprint else state
            if not seen_add(key):
                continue
            admitted.append(state)
            if self.symmetry:
                covered += (
                    canonicalizer.orbit_size(state)
                    if canonicalizer is not None
                    else 1
                )
            if self.check_safety and violation is None:
                violation = spec.check_outputs(state)
        transitions = 0
        outboxes: Dict[int, List[int]] = {}
        if violation is None:
            canonical = (
                canonicalizer.canonical if canonicalizer is not None else None
            )
            canonical_bit = 1 if canonical is not None else 0
            for state in admitted:
                if self.selector is None:
                    spec.successor_states_into(state, buf)
                else:
                    self.selector.expand(state, buf, self._is_new)
                transitions += len(buf)
                for successor in buf:
                    if canonical is not None:
                        successor = canonical(successor)
                    owner = fingerprint_int(successor) % self.n_shards
                    outboxes.setdefault(owner, []).append(
                        (successor << 1) | canonical_bit
                    )
        return (
            len(admitted), transitions, violation, outboxes, covered, skipped,
            self.selector.counters.as_dict()
            if self.selector is not None
            else None,
        )


def _shard_worker(
    conn,
    inputs: Tuple[int, ...],
    wiring: WiringClass,
    level_target: Optional[int],
    shard: int,
    n_shards: int,
    check_safety: bool,
    fingerprint: bool,
    symmetry: bool = False,
    store_config: Optional[StoreConfig] = None,
    por: bool = False,
    engine: str = "scalar",
    kernel: str = "auto",
) -> None:
    """Pipe transport around one :class:`ShardEngine`.

    Protocol: driver sends ``("round", entries)``; the engine processes
    the layer and the worker replies ``("layer", admitted, transitions,
    violation, outboxes, covered, skipped, por_counters)``.
    ``("stop",)`` terminates.  For checkpointing, ``("dump", path)``
    streams the shard's visited keys to ``path`` as a u64 array and
    replies ``("dumped", count)``; ``("load", path)`` bulk-loads a
    previous dump (resume) and replies ``("loaded", count)``.  All
    exploration semantics live in :class:`ShardEngine`.
    """
    shard_engine = None
    try:
        shard_engine = ShardEngine(
            inputs, wiring, level_target, shard, n_shards, check_safety,
            fingerprint, symmetry=symmetry, store_config=store_config,
            por=por, engine=engine, kernel=kernel,
        )
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            if message[0] == "dump":
                conn.send(("dumped", shard_engine.dump_to(Path(message[1]))))
                continue
            if message[0] == "load":
                conn.send(("loaded", shard_engine.load_from(Path(message[1]))))
                continue
            conn.send(("layer",) + shard_engine.process_round(message[1]))
    except EOFError:  # driver went away mid-run
        pass
    except Exception as exc:  # surface worker crashes to the driver
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, BrokenPipeError):
            pass
    finally:
        if shard_engine is not None:
            shard_engine.close()
        conn.close()


def explore_sharded(
    inputs: Sequence[int],
    wiring: WiringClass,
    jobs: int = 2,
    max_states: int = 200_000_000,
    check_safety: bool = True,
    level_target: Optional[int] = None,
    fingerprint: bool = False,
    symmetry: bool = False,
    store: Optional[StoreConfig] = None,
    checkpointer: Optional[RunCheckpointer] = None,
    fingerprint_fn: Callable[[int], int] = fingerprint_int,
    _after_checkpoint: Optional[Callable[[], None]] = None,
    por: bool = False,
    engine: str = "scalar",
    kernel: str = "auto",
    heartbeat=None,
) -> FastExplorationResult:
    """Frontier-sharded BFS over one wiring class across ``jobs`` cores.

    Level-synchronous: each round every worker expands exactly one BFS
    layer of its shard and exchanges boundary states through the
    driver.  The driver merges per-shard statistics in shard order and
    applies the state budget at layer boundaries, so the result is
    deterministic for a fixed ``jobs`` — and equal to the serial
    engine's on any exhaustive (non-truncated) run.  ``jobs`` is capped
    at the host's core count (:func:`effective_jobs`).

    With ``symmetry`` the shards jointly explore the quotient graph:
    workers canonicalize successors before the ownership fingerprint
    (so orbits have unique owners) and the merged result carries
    ``covered_states``.  Boundary states cross the wire as ``(state <<
    1) | canonical_bit``; the bit certifies the sender's
    canonicalization, so receivers skip the (previously duplicated)
    re-canonicalization of every boundary state — the merged result
    reports the skips as ``recanonicalizations_skipped``.

    Wait-freedom (lasso) analysis needs the full cross-shard edge list
    and is deliberately not offered here; run the serial engine with
    ``check_wait_freedom=True`` for that (N=2 certification does).

    ``store`` selects each shard's visited-set backend (namespaced
    ``shard-NNN/`` under the store directory).  ``fingerprint_fn`` must
    be cross-process stable — digests decide shard ownership and land
    in checkpoint files, so per-interpreter functions like
    ``fingerprint_state`` are rejected up front.  ``checkpointer``
    persists the run at BFS-layer boundaries (per-shard visited dumps +
    the pending boundary frontier); a killed run resumes from the last
    committed checkpoint with an identical final result.
    ``_after_checkpoint`` is a test seam invoked after every committed
    checkpoint.

    ``por`` enables ample-set partial-order reduction inside every
    shard (the sharded cycle proviso trusts only locally-owned novelty
    — see :func:`_shard_worker`); the merged result sums per-shard
    ``por_counters`` and checkpoints persist the running totals, so
    resumed runs report statistics over the whole exploration.

    ``engine="batch"`` runs every shard worker on the vectorized batch
    kernel and exchanges boundary batches as numpy u64 arrays (results
    identical to scalar workers).  It requires numpy and rejects,
    because wire entries are ``(state << 1) | canonical_bit`` in a u64
    word, state encodings above 63 bits.  With ``por`` the workers run
    the level-synchronous
    :class:`~repro.checker.batch.BatchAmpleSelector` per round
    (verdict-conformant with, not count-identical to, scalar+POR
    workers — see :mod:`repro.checker.por`); ``por`` totals round-trip
    through checkpoints identically for both engines.  ``kernel``
    selects each batch worker's level kernel
    (``auto``/``numpy``/``native``, :func:`repro.checker.batch.make_kernel`);
    the generated native library is disk-cached, so concurrent shard
    workers share one compile.
    """
    spec = FastSnapshotSpec(inputs, wiring, level_target=level_target)
    jobs = effective_jobs(jobs)
    if engine not in ("scalar", "batch"):
        raise ValueError(
            f"unknown engine {engine!r}; choose 'scalar' or 'batch'"
        )
    if engine == "batch":
        from repro.checker.batch import require_numpy

        require_numpy()
        if spec.state_bits > 63:
            raise ValueError(
                f"sharded batch wire entries are (state << 1) |"
                f" canonical_bit in a u64 word; this configuration packs"
                f" states into {spec.state_bits} bits"
            )
    if jobs <= 1:
        return spec.explore(
            max_states=max_states,
            check_safety=check_safety,
            fingerprint=fingerprint,
            symmetry=symmetry,
            store=store,
            checkpointer=checkpointer,
            por=por,
            engine=engine,
            kernel=kernel,
            heartbeat=heartbeat,
        )
    # Shard ownership and checkpoint files both carry digests across
    # process boundaries: a per-interpreter fingerprint would silently
    # mis-shard, so refuse it here rather than corrupt the run.
    require_cross_process_stable(fingerprint_fn)
    if checkpointer is not None:
        recorded = checkpointer.completed_result()
        if recorded is not None:
            return load_result(FastExplorationResult, recorded)
        if spec.state_bits > 63:
            raise ValueError(
                f"sharded checkpoint frontier entries are (state << 1) |"
                f" canonical_bit in a u64 word; this configuration packs"
                f" states into {spec.state_bits} bits"
            )

    canonicalizer = None
    if symmetry:
        from repro.checker.symmetry import FastCanonicalizer

        canonicalizer = FastCanonicalizer(spec)

    worker_engine = engine
    use_batch_workers = worker_engine == "batch"
    if use_batch_workers:
        import numpy as np

    def _died(shard: int) -> RuntimeError:
        hint = (
            " — resume from the checkpoint directory (repro check --resume)"
            if checkpointer is not None
            else ""
        )
        return RuntimeError(
            f"shard {shard} worker died mid-run (pipe closed){hint}"
        )

    def _recv(shard: int):
        try:
            return connections[shard].recv()
        except (EOFError, OSError):
            # A SIGKILLed worker surfaces as EOF or ECONNRESET depending
            # on where the pipe read was when the process died.
            raise _died(shard) from None

    def _send(shard: int, message) -> None:
        try:
            connections[shard].send(message)
        except (OSError, BrokenPipeError):
            raise _died(shard) from None

    def _finish(result: FastExplorationResult) -> FastExplorationResult:
        if checkpointer is not None:
            checkpointer.mark_complete(asdict(result))
        return result

    ctx = _mp_context()
    connections = []
    workers = []
    try:
        try:
            for shard in range(jobs):
                parent_conn, child_conn = ctx.Pipe()
                process = ctx.Process(
                    target=_shard_worker,
                    args=(
                        child_conn, tuple(inputs), wiring, level_target,
                        shard, jobs, check_safety, fingerprint, symmetry,
                        store, por, worker_engine, kernel,
                    ),
                    daemon=True,
                )
                process.start()
                child_conn.close()
                connections.append(parent_conn)
                workers.append(process)
        except OSError:  # pragma: no cover - process-less environments
            return spec.explore(
                max_states=max_states,
                check_safety=check_safety,
                fingerprint=fingerprint,
                symmetry=symmetry,
                store=store,
                checkpointer=checkpointer,
                por=por,
                engine=engine,
                kernel=kernel,
            )

        states = 0
        transitions = 0
        complete = True
        covered: Optional[int] = 0 if symmetry else None
        group_order = canonicalizer.order if canonicalizer is not None else None
        recanon_skipped: Optional[int] = 0 if symmetry else None
        violation: Optional[str] = None
        # POR totals = checkpointed base + each worker's cumulative
        # snapshot (workers report running totals every layer, so the
        # latest snapshot per shard is the whole post-resume story).
        por_keys = (
            "transitions_pruned", "ample_states", "fully_expanded_states",
            "cycle_proviso_expansions",
        )
        por_base: Dict[str, int] = {}
        shard_por: List[Optional[Dict[str, int]]] = [None] * jobs

        def _por_totals() -> Optional[Dict[str, int]]:
            if not por:
                return None
            totals = {key: por_base.get(key, 0) for key in por_keys}
            for snapshot in shard_por:
                if snapshot:
                    for key, value in snapshot.items():
                        totals[key] = totals.get(key, 0) + value
            return totals

        resumed = checkpointer.latest() if checkpointer is not None else None
        if resumed is not None:
            states = resumed.counter("admitted")
            transitions = resumed.counter("transitions")
            if covered is not None:
                covered = resumed.counter("covered")
            if recanon_skipped is not None:
                recanon_skipped = resumed.counter("skipped")
            if por:
                por_base = {
                    key: int(resumed.counters.get(key, 0)) for key in por_keys
                }
            inboxes: Dict[int, List[int]] = {}
            for entry in resumed.frontier():
                owner = fingerprint_fn(entry >> 1) % jobs
                inboxes.setdefault(owner, []).append(entry)
            for shard in range(jobs):
                path = resumed.directory / f"visited-{shard:03d}.u64"
                _send(shard, ("load", str(path)))
            for shard in range(jobs):
                reply = _recv(shard)
                if reply[0] != "loaded":
                    raise RuntimeError(
                        f"shard {shard} failed to load its visited dump:"
                        f" {reply!r}"
                    )
        else:
            initial = spec.initial_state()
            canonical_bit = 0
            if canonicalizer is not None:
                initial = canonicalizer.canonical(initial)
                if not canonicalizer.trivial:
                    canonical_bit = 1
            inboxes = {
                fingerprint_fn(initial) % jobs: [
                    (initial << 1) | canonical_bit
                ]
            }

        while inboxes:
            if heartbeat is not None:
                heartbeat.tick(
                    states,
                    sum(len(batch) for batch in inboxes.values()),
                    transitions,
                )
            for shard in range(jobs):
                _send(shard, ("round", inboxes.get(shard, [])))
            outboxes: Dict[int, List[int]] = {}
            for shard in range(jobs):
                reply = _recv(shard)
                if reply[0] == "error":
                    raise RuntimeError(f"shard {shard} failed: {reply[1]}")
                (_, admitted, shard_transitions, shard_violation, out,
                 shard_covered, shard_skipped, shard_por_counters) = reply
                if shard_por_counters is not None:
                    shard_por[shard] = shard_por_counters
                states += admitted
                transitions += shard_transitions
                if shard_covered is not None and covered is not None:
                    covered += shard_covered
                if recanon_skipped is not None:
                    recanon_skipped += shard_skipped
                if shard_violation is not None and violation is None:
                    violation = shard_violation
                if use_batch_workers:
                    # Batch workers ship whole numpy arrays per owner; keep
                    # them as array parts and concatenate once per round so
                    # the boundary states never degrade to Python ints.
                    for owner, boundary in out.items():
                        outboxes.setdefault(owner, []).append(boundary)
                else:
                    for owner, boundary in out.items():
                        outboxes.setdefault(owner, []).extend(boundary)
            if violation is not None:
                return _finish(FastExplorationResult(
                    states=states,
                    transitions=transitions,
                    complete=True,
                    violation=violation,
                    covered_states=covered,
                    symmetry_group_order=group_order,
                    recanonicalizations_skipped=recanon_skipped,
                    por_counters=_por_totals(),
                ))
            if use_batch_workers:
                inboxes = {}
                for owner, parts in outboxes.items():
                    merged = parts[0] if len(parts) == 1 else np.concatenate(parts)
                    if merged.size:
                        inboxes[owner] = merged
            else:
                inboxes = {
                    owner: batch for owner, batch in outboxes.items() if batch
                }
            if states >= max_states and inboxes:
                complete = False
                truncated = sum(len(batch) for batch in inboxes.values())
                return _finish(FastExplorationResult(
                    states=states,
                    transitions=transitions,
                    complete=False,
                    truncated_transitions=truncated,
                    covered_states=covered,
                    symmetry_group_order=group_order,
                    recanonicalizations_skipped=recanon_skipped,
                    por_counters=_por_totals(),
                ))
            if (
                checkpointer is not None
                and inboxes
                and checkpointer.due(states)
            ):
                staging = checkpointer.begin()
                for shard in range(jobs):
                    path = staging / f"visited-{shard:03d}.u64"
                    _send(shard, ("dump", str(path)))
                for shard in range(jobs):
                    reply = _recv(shard)
                    if reply[0] != "dumped":
                        raise RuntimeError(
                            f"shard {shard} failed to dump its visited set:"
                            f" {reply!r}"
                        )
                write_u64_file(
                    staging / "frontier.u64",
                    (
                        entry
                        for owner in sorted(inboxes)
                        for entry in inboxes[owner]
                    ),
                )
                counters = {
                    "admitted": states,
                    "transitions": transitions,
                    "covered": covered if covered is not None else 0,
                    "skipped": (
                        recanon_skipped if recanon_skipped is not None else 0
                    ),
                }
                por_totals = _por_totals()
                if por_totals is not None:
                    counters.update(por_totals)
                checkpointer.commit(staging, counters)
                if _after_checkpoint is not None:
                    _after_checkpoint()

        return _finish(FastExplorationResult(
            states=states, transitions=transitions, complete=complete,
            covered_states=covered, symmetry_group_order=group_order,
            recanonicalizations_skipped=recanon_skipped,
            por_counters=_por_totals(),
        ))
    finally:
        for conn in connections:
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
            conn.close()
        for process in workers:
            process.join(timeout=5)
            if process.is_alive():  # pragma: no cover - defensive
                process.terminate()
