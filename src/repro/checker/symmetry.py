"""On-the-fly symmetry reduction: explore one state per orbit.

The model's defining feature — anonymous processors running identical
code against registers addressed through private permutations — makes
the checker's state graph riddled with *orbits*: global states that
differ only by a permutation of the identically-programmed processors
(plus the compatible register relabelling and renaming of the private
inputs) are behaviorally indistinguishable.  This module quotients the
reachable graph by that symmetry **on the fly**: every generated
successor is mapped to a canonical orbit representative before the
visited-set lookup, so BFS explores the quotient graph — up to ``N!``
times smaller — while verdicts of permutation-invariant properties are
unchanged.

The group is the *stabilizer of the wiring assignment* computed by
:func:`repro.memory.wiring.wiring_stabilizer`: pairs ``(pi, rho)`` of a
processor permutation and register relabelling that map the fixed
assignment to itself, each inducing the input renaming
``tau(inputs[pi[p]]) = inputs[p]``.  A group element ``g = (pi, rho,
tau)`` acts on a global state by::

    (g.s).locals[p]       = tau(s.locals[pi[p]])
    (g.s).registers[rho[r]] = tau(s.registers[r])

Local-state fields expressed in *private* register coordinates
(unwritten masks, scan positions) are untouched: position ``p``'s local
index ``i`` resolves to physical ``sigma_p[i] = rho[sigma_{pi[p]}[i]]``,
exactly the relabelled register processor ``pi[p]`` touched — that is
the equivariance the stabilizer condition buys.

Two canonicalizers share the group:

- :class:`FastCanonicalizer` for the packed-integer states of
  :class:`~repro.checker.fast_snapshot.FastSnapshotSpec` — the hot-path
  kernel.  Each group element is compiled to fused lookup tables (the
  whole register file in one table, each local in another), so one
  image costs a handful of indexed loads; ``canonical`` takes the
  minimum image, which is a well-defined orbit invariant because the
  image multiset is the same for every orbit member.
- :class:`StateCanonicalizer` for object-encoded
  :class:`~repro.checker.system.GlobalState`\\ s.  Renaming input
  values inside opaque local states is machine-specific, so machines
  opt in by providing ``rename_inputs(local, mapping)`` and
  ``rename_register_value(value, mapping)`` hooks (see
  :class:`~repro.core.snapshot.SnapshotMachine`); without the hooks the
  group is restricted to its input-preserving subgroup (still useful
  whenever inputs repeat).  Machines whose transition function is *not*
  equivariant under input renaming (e.g. consensus, whose deterministic
  tie-break orders values by ``repr``) must not provide the hooks.

Counterexample de-canonicalization: the quotient BFS stores, per edge,
the witness group element ``g`` with ``rep' = g . apply(rep, action)``.
:func:`lift_canonical_path` replays the canonical path concretely by
maintaining the cumulative element ``h`` with ``concrete = h . rep``:
each canonical action ``(pid, op)`` lifts to ``(pi_h^{-1}[pid],
tau_h(op))`` and ``h`` advances by ``h <- h . g^{-1}``, so the rebuilt
trace is a valid execution of the *unreduced* system.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.checker.system import Action, GlobalState, SystemSpec
from repro.memory.wiring import wiring_stabilizer
from repro.sim.ops import Write

#: Fused lookup tables are built only up to this many index bits
#: (2^16 entries); wider fields fall back to per-field remapping.
_MAX_TABLE_BITS = 16


class GroupElement:
    """One symmetry ``(pi, rho, tau)`` with composition and inverse.

    ``pi``: position ``p`` holds (old) processor ``pi[p]``;
    ``rho``: physical register ``r`` is relabelled to ``rho[r]``;
    ``tau``: value renaming as a dict (identity entries omitted).
    """

    __slots__ = ("pi", "rho", "tau", "pi_inverse")

    def __init__(
        self,
        pi: Tuple[int, ...],
        rho: Tuple[int, ...],
        tau: Dict[Any, Any],
    ) -> None:
        self.pi = pi
        self.rho = rho
        self.tau = {key: value for key, value in tau.items() if key != value}
        inverse = [0] * len(pi)
        for position, processor in enumerate(pi):
            inverse[processor] = position
        self.pi_inverse = tuple(inverse)

    @property
    def is_identity(self) -> bool:
        return (
            self.pi == tuple(range(len(self.pi)))
            and self.rho == tuple(range(len(self.rho)))
            and not self.tau
        )

    def after(self, other: "GroupElement") -> "GroupElement":
        """The composition ``self . other`` (apply ``other`` first)."""
        pi = tuple(other.pi[self.pi[p]] for p in range(len(self.pi)))
        rho = tuple(self.rho[other.rho[r]] for r in range(len(self.rho)))
        keys = set(self.tau) | set(other.tau)
        tau = {key: self.tau.get(other.tau.get(key, key), other.tau.get(key, key)) for key in keys}
        return GroupElement(pi, rho, tau)

    def inverse(self) -> "GroupElement":
        rho_inverse = [0] * len(self.rho)
        for register, relabelled in enumerate(self.rho):
            rho_inverse[relabelled] = register
        tau_inverse = {value: key for key, value in self.tau.items()}
        return GroupElement(self.pi_inverse, tuple(rho_inverse), tau_inverse)

    def __repr__(self) -> str:
        return f"GroupElement(pi={self.pi}, rho={self.rho}, tau={self.tau})"


def _identity_renamer(value: Any, mapping: Dict[Any, Any]) -> Any:
    return value


class StateCanonicalizer:
    """Orbit canonicalization for object-encoded :class:`GlobalState`.

    Built from a :class:`~repro.checker.system.SystemSpec`; the group is
    the wiring stabilizer restricted to elements the machine can
    express (input-renaming elements need the machine's rename hooks)
    and to elements fixing the initial state, so every canonical
    representative is itself a reachable state of the unreduced system.
    """

    def __init__(self, spec: SystemSpec) -> None:
        self.spec = spec
        machine = spec.machine
        rename_local = getattr(machine, "rename_inputs", None)
        rename_register = getattr(machine, "rename_register_value", None)
        can_rename = rename_local is not None and rename_register is not None
        self._rename_local = rename_local or _identity_renamer
        self._rename_register = rename_register or _identity_renamer

        inputs = spec.inputs
        elements: List[GroupElement] = []
        for pi, rho in wiring_stabilizer(
            spec.wiring.permutations(), inputs
        ):
            tau = {
                inputs[pi[p]]: inputs[p]
                for p in range(len(inputs))
                if inputs[pi[p]] != inputs[p]
            }
            if tau and not can_rename:
                continue  # input-preserving subgroup only
            elements.append(GroupElement(pi, rho, tau))
        # Keep only elements fixing the initial state: then g.s is
        # reachable for every reachable s, so representatives are real
        # states of the unreduced system (a subgroup: closure under
        # composition/inverse preserves the fixed point).
        initial = spec.initial_state()
        self.elements = [
            element
            for element in elements
            if element.is_identity or self.apply(element, initial) == initial
        ]
        self.order = len(self.elements)

    @property
    def trivial(self) -> bool:
        return self.order <= 1

    # ------------------------------------------------------------------
    def apply(self, element: GroupElement, state: GlobalState) -> GlobalState:
        """The image ``element . state``."""
        tau = element.tau
        if tau:
            locals_ = tuple(
                self._rename_local(state.locals[p], tau) for p in element.pi
            )
        else:
            locals_ = tuple(state.locals[p] for p in element.pi)
        registers: List[Any] = [None] * len(state.registers)
        for index, value in enumerate(state.registers):
            registers[element.rho[index]] = (
                self._rename_register(value, tau) if tau else value
            )
        return GlobalState(tuple(registers), locals_)

    def apply_action(self, element: GroupElement, action: Action) -> Action:
        """The image of an action: who performs it, and on what value.

        If ``s --(pid, op)--> s'`` then
        ``g.s --(pi^{-1}[pid], tau(op))--> g.s'``; the local register
        index is private and carries over unchanged.
        """
        pid = element.pi_inverse[action.pid]
        op = action.op
        if element.tau and isinstance(op, Write):
            op = Write(op.reg, self._rename_register(op.value, element.tau))
        physical = self.spec._physical[pid][op.reg]
        return Action(pid=pid, op=op, physical=physical)

    # ------------------------------------------------------------------
    def canonical(self, state: GlobalState) -> Tuple[GlobalState, GroupElement]:
        """The orbit representative and a witness ``g`` with ``rep = g.state``.

        The representative is the image minimizing ``(hash, repr)`` —
        a function of the orbit (the image multiset is identical for
        every member), hence a sound canonical form; ties across
        *distinct* equal-keyed states would be resolved arbitrarily,
        with the same vanishing probability budget as a 64-bit
        fingerprint collision.
        """
        elements = self.elements
        best = state
        witness = elements[0]
        if self.order > 1:
            best_key = (best._hash, repr(best))
            for element in elements[1:]:
                image = self.apply(element, state)
                key = (image._hash, repr(image))
                if key < best_key:
                    best, best_key, witness = image, key, element
        return best, witness

    def orbit_size(self, state: GlobalState) -> int:
        """Number of distinct states in ``state``'s orbit (<= group order)."""
        if self.order <= 1:
            return 1
        return len(
            {state} | {self.apply(element, state) for element in self.elements[1:]}
        )


def lift_canonical_path(
    canonicalizer: StateCanonicalizer,
    root_witness: GroupElement,
    steps: Sequence[Tuple[Action, GroupElement]],
) -> Tuple[List[Action], GlobalState]:
    """De-canonicalize a quotient path into a concrete execution.

    ``root_witness`` is ``g0`` with ``canon(s0) = g0 . s0``; each step
    carries the action *in the parent representative's frame* plus the
    witness ``g`` mapping the concrete successor of the representative
    to the child representative.  Returns the concrete action list and
    the concrete final state; every step is validated against the
    unreduced transition relation by construction (``spec.apply``).
    """
    spec = canonicalizer.spec
    concrete = spec.initial_state()
    cumulative = root_witness.inverse()
    actions: List[Action] = []
    for action, witness in steps:
        lifted = canonicalizer.apply_action(cumulative, action)
        _, concrete = spec.apply(concrete, lifted.pid, lifted.op)
        actions.append(lifted)
        cumulative = cumulative.after(witness.inverse())
    return actions, concrete


# ----------------------------------------------------------------------
# Packed-integer canonicalization (the hot-path kernel)
# ----------------------------------------------------------------------

class FastCanonicalizer:
    """Symmetry kernel for :class:`FastSnapshotSpec` packed states.

    Receives the same precomputed-table treatment the transition
    function got in the parallel-engine PR: per group element, the
    whole register file maps through one fused table (every record
    remapped by the input-bit permutation and moved to its relabelled
    slot in a single load) and each local through another (view bits
    remapped in place), so one orbit image costs ``1 + N`` table loads
    plus shifts.  ``canonical`` — called once per *generated
    transition* by the reduced explorer, the hottest call in the whole
    checker — is additionally compiled (``eval`` of a generated
    ``min(...)`` lambda with the tables bound as default arguments) so
    all images and the minimum evaluate in one expression with zero
    per-element function-call overhead.  Falls back to per-field
    remapping when a fused index would exceed ``2^16`` entries.
    """

    def __init__(self, spec) -> None:
        self.spec = spec
        stabilizer = wiring_stabilizer(spec.wiring, spec.inputs)
        self.order = len(stabilizer)
        self._appliers: List[Callable[[int], int]] = []
        #: Per non-identity element: the compiled table data behind its
        #: applier, in stabilizer order.  The level-batched kernel
        #: (:mod:`repro.checker.batch`) re-expresses the same min-over
        #: -images reduction as numpy gathers over these tables, so
        #: they are part of the class's public surface, not a compile
        #: -time private.
        self.element_tables: List[Dict[str, object]] = []
        fused_exprs: List[Optional[str]] = []
        bindings: Dict[str, List[int]] = {}
        for index, (pi, rho) in enumerate(stabilizer[1:]):
            applier, expr = self._compile(pi, rho, index, bindings)
            self._appliers.append(applier)
            fused_exprs.append(expr)
        if self._appliers and all(expr is not None for expr in fused_exprs):
            defaults = ", ".join(f"{name}={name}" for name in bindings)
            source = (
                f"lambda s, {defaults}: min(s, "
                + ", ".join(fused_exprs)  # type: ignore[arg-type]
                + ")"
            )
            self.canonical = eval(source, dict(bindings))  # noqa: S307
        elif not self._appliers:
            self.canonical = lambda state: state

    @property
    def trivial(self) -> bool:
        return self.order <= 1

    # ------------------------------------------------------------------
    # Table compilation
    # ------------------------------------------------------------------
    def _bit_permutation(self, pi: Tuple[int, ...]) -> Tuple[int, ...]:
        """Input-bit renaming induced by ``pi``: ``bit(in[pi[p]]) -> bit(in[p])``."""
        spec = self.spec
        mapping = list(range(spec.k))
        for p in range(spec.n):
            mapping[spec.value_bits[spec.inputs[pi[p]]]] = spec.value_bits[
                spec.inputs[p]
            ]
        return tuple(mapping)

    def _compile(
        self,
        pi: Tuple[int, ...],
        rho: Tuple[int, ...],
        index: int,
        bindings: Dict[str, List[int]],
    ) -> Tuple[Callable[[int], int], Optional[str]]:
        """One group element -> (applier, fused expression or None).

        The applier is the standalone image function (used by
        ``orbit_size`` and the tests); the expression, when the fused
        tables fit, computes the same image inline for the generated
        ``canonical`` lambda, with its tables registered in
        ``bindings`` under the names the expression references.
        """
        spec = self.spec
        bit_perm = self._bit_permutation(pi)
        view_map = [
            sum(
                1 << bit_perm[bit]
                for bit in range(spec.k)
                if (view >> bit) & 1
            )
            for view in range(1 << spec.k)
        ]
        record_map = [
            view_map[record & spec.k_mask] | (record & ~spec.k_mask)
            for record in range(1 << spec.reg_bits)
        ]

        block_bits = spec.m * spec.reg_bits
        if block_bits <= _MAX_TABLE_BITS:
            register_table = self._fuse_registers(record_map, rho, block_bits)
        else:
            register_table = None

        if spec.local_bits <= _MAX_TABLE_BITS:
            k_clear = spec.local_mask & ~spec.k_mask
            local_table = [
                (local & k_clear) | view_map[local & spec.k_mask]
                for local in range(1 << spec.local_bits)
            ]
        else:
            local_table = None

        # Destination local offset p sources from local pi[p].
        moves = tuple(
            (spec.local_offsets[p], spec.local_offsets[pi[p]])
            for p in range(spec.n)
        )
        local_mask = spec.local_mask
        k_mask = spec.k_mask
        k_clear = local_mask & ~k_mask

        if register_table is not None and local_table is not None:
            block_mask = (1 << block_bits) - 1
            self.element_tables.append({
                "kind": "fused",
                "register_table": register_table,
                "block_mask": block_mask,
                "local_table": local_table,
                "local_mask": local_mask,
                "moves": moves,
            })

            def apply(state: int) -> int:
                out = register_table[state & block_mask]
                for dst, src in moves:
                    out |= local_table[(state >> src) & local_mask] << dst
                return out

            registers_name = f"rt{index}"
            locals_name = f"lt{index}"
            bindings[registers_name] = register_table
            bindings[locals_name] = local_table
            expression = f"{registers_name}[s & {block_mask}]" + "".join(
                f" | ({locals_name}[(s >> {src}) & {local_mask}] << {dst})"
                for dst, src in moves
            )
            return apply, expression

        reg_moves = tuple(
            (spec.reg_offsets[rho[r]], spec.reg_offsets[r])
            for r in range(spec.m)
        )
        reg_mask = spec.reg_mask
        self.element_tables.append({
            "kind": "general",
            "record_map": record_map,
            "reg_moves": reg_moves,
            "reg_mask": reg_mask,
            "view_map": view_map,
            "moves": moves,
            "local_mask": local_mask,
            "k_mask": k_mask,
            "k_clear": k_clear,
        })

        def apply_general(state: int) -> int:
            out = 0
            for dst, src in reg_moves:
                out |= record_map[(state >> src) & reg_mask] << dst
            for dst, src in moves:
                local = (state >> src) & local_mask
                out |= ((local & k_clear) | view_map[local & k_mask]) << dst
            return out

        return apply_general, None

    def _fuse_registers(
        self, record_map: List[int], rho: Tuple[int, ...], block_bits: int
    ) -> List[int]:
        """One table mapping the packed register file to its image.

        Built register by register: start from the single-register
        remap-and-move table and extend one register slot per round,
        so construction is ``O(m * 2^block_bits)`` table fills.
        """
        spec = self.spec
        reg_bits = spec.reg_bits
        table = [
            record_map[record] << spec.reg_offsets[rho[0]]
            for record in range(1 << reg_bits)
        ]
        for register in range(1, spec.m):
            low_bits = register * reg_bits
            low_mask = (1 << low_bits) - 1
            shift = spec.reg_offsets[rho[register]]
            moved = [
                record_map[record] << shift for record in range(1 << reg_bits)
            ]
            table = [
                table[value & low_mask] | moved[value >> low_bits]
                for value in range(1 << (low_bits + reg_bits))
            ]
        return table

    # ------------------------------------------------------------------
    # The hot calls
    # ------------------------------------------------------------------
    def canonical(self, state: int) -> int:
        """The orbit representative: minimum packed image (orbit invariant)."""
        best = state
        for apply in self._appliers:
            image = apply(state)
            if image < best:
                best = image
        return best

    def orbit_size(self, state: int) -> int:
        """Distinct orbit members; called per *admitted* state only."""
        if not self._appliers:
            return 1
        return len({state, *(apply(state) for apply in self._appliers)})


def assert_permutation_invariant(invariants: Sequence[Callable]) -> None:
    """Refuse symmetry reduction for properties not declared invariant.

    Every invariant used under symmetry must be marked with
    :func:`repro.checker.properties.permutation_invariant` — the
    declaration that its verdict is unchanged by processor
    permutation, register relabelling, and input renaming.  Properties
    that are not (e.g. anything naming a specific pid or register
    index) must be checked with symmetry off (CLI: ``--no-symmetry``).

    This runtime gate has two static/dynamic companions in
    :mod:`repro.lint`: rule INVAR001 flags exported-but-undeclared
    properties before anything runs, and ``repro lint --dynamic``
    metamorphically tests that a declaration is *true* — verdict
    equality on stabilizer orbits of sampled reachable states.
    """
    unmarked = [
        getattr(invariant, "__name__", repr(invariant))
        for invariant in invariants
        if not getattr(invariant, "permutation_invariant", False)
    ]
    if unmarked:
        raise ValueError(
            "symmetry reduction requires permutation-invariant properties;"
            f" not declared invariant: {', '.join(unmarked)}. Mark them with"
            " @permutation_invariant or explore without symmetry"
            " (--no-symmetry)."
        )
