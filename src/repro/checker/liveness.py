"""Wait-freedom as a graph property of the explored state space.

Wait-freedom (the paper's termination guarantee for the Figure 3
algorithm) says: every processor that takes enough steps terminates.  On
the *finite* reachable state graph, a violation is exactly a reachable
cycle in which some processor ``p`` takes at least one step while
remaining unterminated throughout — the cycle can be repeated forever,
giving an infinite execution in which ``p`` takes infinitely many steps
without ever outputting.

We check absence of such "bad lassos" per processor by restricting the
graph to states where ``p`` is not terminated, computing strongly
connected components (iterative Tarjan — state graphs are deep, no
recursion), and asking whether any SCC contains an internal edge
labelled ``p``.  Self-loops count (a single-edge cycle is a cycle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.checker.explorer import ExplorationResult
from repro.checker.system import GlobalState, SystemSpec


@dataclass
class WaitFreedomViolation:
    """A bad lasso: processor ``pid`` can cycle forever unterminated."""

    pid: int
    #: Index (into the explorer's state table) of a state on the cycle.
    cycle_state_index: int
    cycle_state: GlobalState


def check_wait_freedom(
    spec: SystemSpec, exploration: ExplorationResult
) -> List[WaitFreedomViolation]:
    """Return all per-processor wait-freedom violations (empty = wait-free).

    Requires the exploration to have been run with ``keep_edges=True``
    and to be complete (a partial graph cannot certify liveness).
    """
    if exploration.edges is None or exploration.state_table is None:
        raise ValueError("exploration must retain edges (keep_edges=True)")
    if not exploration.complete:
        raise ValueError("cannot certify wait-freedom from a partial exploration")

    states = exploration.state_table
    violations: List[WaitFreedomViolation] = []
    for pid in range(spec.n_processors):
        alive = [not spec.terminated(state, pid) for state in states]
        # Adjacency restricted to states where pid is unterminated.
        adjacency: Dict[int, List[int]] = {}
        pid_edges: List[Tuple[int, int]] = []
        for src, actor, dst in exploration.edges:
            if alive[src] and alive[dst]:
                adjacency.setdefault(src, []).append(dst)
                if actor == pid:
                    pid_edges.append((src, dst))
        if not pid_edges:
            continue
        component = _scc_ids(adjacency, len(states))
        for src, dst in pid_edges:
            same_component = component[src] == component[dst] and component[src] != -1
            if same_component or src == dst:
                violations.append(
                    WaitFreedomViolation(
                        pid=pid, cycle_state_index=src, cycle_state=states[src]
                    )
                )
                break
    return violations


def _scc_ids(adjacency: Dict[int, List[int]], n_states: int) -> List[int]:
    """Iterative Tarjan SCC; returns component id per state (-1 = isolated).

    Only states appearing in ``adjacency`` (as sources or targets) get
    real component ids; a state in a component by itself without a
    self-loop can never witness a cycle, so callers additionally compare
    src == dst for self-loops.
    """
    index_counter = 0
    component = [-1] * n_states
    indices = [-1] * n_states
    lowlink = [0] * n_states
    on_stack = [False] * n_states
    stack: List[int] = []
    next_component = 0

    nodes = set(adjacency)
    for targets in adjacency.values():
        nodes.update(targets)

    for root in nodes:
        if indices[root] != -1:
            continue
        # Iterative DFS: (node, iterator position) frames.
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, child_pos = work[-1]
            if child_pos == 0:
                indices[node] = index_counter
                lowlink[node] = index_counter
                index_counter += 1
                stack.append(node)
                on_stack[node] = True
            children = adjacency.get(node, [])
            advanced = False
            while child_pos < len(children):
                child = children[child_pos]
                child_pos += 1
                if indices[child] == -1:
                    work[-1] = (node, child_pos)
                    work.append((child, 0))
                    advanced = True
                    break
                if on_stack[child]:
                    lowlink[node] = min(lowlink[node], indices[child])
            if advanced:
                continue
            work[-1] = (node, child_pos)
            if child_pos >= len(children):
                work.pop()
                if lowlink[node] == indices[node]:
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component[member] = next_component
                        if member == node:
                            break
                    next_component += 1
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
    return component


def certify_wait_free(
    spec: SystemSpec, exploration: ExplorationResult
) -> Optional[WaitFreedomViolation]:
    """Convenience wrapper: first violation or None (= certified wait-free)."""
    violations = check_wait_freedom(spec, exploration)
    return violations[0] if violations else None
