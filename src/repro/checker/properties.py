"""Invariants checked during exploration.

These are the safety properties of the paper's Section 5 expressed over
reachable global states:

- **containment**: every two outputs produced so far are related by
  containment — the algorithm's (stronger-than-group) guarantee, proved
  in Section 5.3.2;
- **self-inclusion / validity**: an output contains the processor's own
  input and only inputs of the configuration;
- **view monotonicity proxies**: views contain the own input; levels are
  within bounds; register views only ever hold inputs.

Each invariant returns ``None`` when satisfied and a diagnostic string
when violated; the explorer attaches a shortest counterexample path.

Every property here is declared :func:`permutation_invariant`; the
declaration is enforced three ways — at runtime by
:func:`repro.checker.symmetry.assert_permutation_invariant`, at lint
time by anonlint's INVAR rules (which also scan the bodies for
non-equivariant constructs; diagnostic *messages* may sort by ``repr``,
verdicts may not), and semantically by ``repro lint --dynamic``'s
orbit checks.  See ``docs/linting.md``.
"""

from __future__ import annotations

from typing import Optional

from repro.checker.system import GlobalState, SystemSpec
from repro.core.views import RegisterRecord, all_comparable

def permutation_invariant(fn):
    """Declare that an invariant's *verdict* is unchanged by symmetry.

    The symmetry-reduced explorer (:mod:`repro.checker.symmetry`) checks
    invariants on orbit representatives only, which is sound exactly
    when a property violated in some state is violated in every state of
    its orbit — i.e. the verdict is invariant under processor
    permutation, register relabelling, and bijective input renaming.
    Only the boolean verdict must be invariant: the diagnostic *message*
    may name concrete pids/registers, and the explorer recomputes it on
    the de-canonicalized concrete state before reporting.

    ``Explorer(symmetry=True)`` refuses invariants without this marker;
    check non-invariant properties with symmetry off (``--no-symmetry``).
    """
    fn.permutation_invariant = True
    return fn


def visibility_footprint(*, outputs: bool = False, registers=(), locals: bool = False):
    """Declare which state components an invariant's *verdict* reads.

    Partial-order reduction (:mod:`repro.checker.por`) may only prune
    steps that provably cannot flip any checked verdict (condition C2).
    This decorator is the property's promise about what its verdict
    depends on:

    - ``outputs=True`` — the verdict reads terminated processors'
      outputs only.  Outputs appear exactly when a processor
      terminates and never change afterwards, so only terminating
      steps are visible.
    - ``registers=(...)`` — the verdict reads the listed *physical*
      registers (or every register with ``registers="all"``); writes
      landing in the footprint are visible, reads and other writes are
      not.
    - ``locals=True`` — the verdict reads processors' local states,
      which almost every step changes: all steps are visible and
      reduction is effectively disabled for runs checking this
      property.

    Dimensions combine (a property may read outputs *and* registers).
    A property with **no** declaration defaults to "all steps visible"
    — the conservative, always-sound choice.  anonlint's POR001 flags
    declarations narrower than what the property's AST actually reads.
    """

    def mark(fn):
        fn.visibility_footprint = {
            "outputs": bool(outputs),
            "registers": registers if registers == "all" else tuple(registers),
            "locals": bool(locals),
        }
        return fn

    return mark


@visibility_footprint(outputs=True)
@permutation_invariant
def snapshot_outputs_comparable(spec: SystemSpec, state: GlobalState) -> Optional[str]:
    """Every two snapshot outputs produced so far are containment-related."""
    outputs = spec.outputs(state)
    if len(outputs) < 2:
        return None
    if all_comparable(outputs.values()):
        return None
    views = {pid: sorted(view, key=repr) for pid, view in outputs.items()}
    return f"incomparable snapshot outputs: {views!r}"


@visibility_footprint(outputs=True)
@permutation_invariant
def snapshot_outputs_valid(spec: SystemSpec, state: GlobalState) -> Optional[str]:
    """Outputs contain the own input and only configuration inputs."""
    all_inputs = frozenset(spec.inputs)
    for pid, output in spec.outputs(state).items():
        output_set = frozenset(output)
        if spec.inputs[pid] not in output_set:
            return (
                f"processor {pid} output {sorted(output_set, key=repr)!r} misses"
                f" its own input {spec.inputs[pid]!r}"
            )
        if not output_set <= all_inputs:
            return (
                f"processor {pid} output {sorted(output_set, key=repr)!r} contains"
                f" non-input values"
            )
    return None


@visibility_footprint(locals=True)
@permutation_invariant
def views_contain_own_input(spec: SystemSpec, state: GlobalState) -> Optional[str]:
    """Local views always contain the processor's own input."""
    for pid, local in enumerate(state.locals):
        view = getattr(local, "view", None)
        if view is None:
            inner = getattr(local, "inner", None)
            view = getattr(inner, "view", None)
        if view is None:
            return f"processor {pid} state has no view: {local!r}"
        own = spec.inputs[pid]
        # Consensus wraps inputs into timestamped records; unwrap for the check.
        if own in view:
            continue
        if any(getattr(record, "value", None) == own for record in view):
            continue
        return f"processor {pid} view {view!r} misses own input {own!r}"
    return None


@visibility_footprint(locals=True, registers="all")
@permutation_invariant
def levels_within_bounds(spec: SystemSpec, state: GlobalState) -> Optional[str]:
    """Processor and register levels stay in ``0..level_target``."""
    target = getattr(spec.machine, "level_target", None)
    if target is None:
        return None
    for pid, local in enumerate(state.locals):
        level = getattr(local, "level", None)
        if level is None:
            inner = getattr(local, "inner", None)
            level = getattr(inner, "level", 0)
        if not 0 <= level <= target:
            return f"processor {pid} level {level} outside 0..{target}"
    for index, record in enumerate(state.registers):
        if isinstance(record, RegisterRecord) and not 0 <= record.level <= target:
            return f"register {index} level {record.level} outside 0..{target}"
    return None


@visibility_footprint(registers="all")
@permutation_invariant
def register_views_are_inputs(spec: SystemSpec, state: GlobalState) -> Optional[str]:
    """Register views only ever contain configuration inputs."""
    all_inputs = frozenset(spec.inputs)
    for index, record in enumerate(state.registers):
        view = record.view if isinstance(record, RegisterRecord) else record
        if not isinstance(view, frozenset):
            continue
        if not view <= all_inputs:
            return (
                f"register {index} view {sorted(view, key=repr)!r} contains"
                f" non-input values"
            )
    return None


SNAPSHOT_SAFETY = (
    snapshot_outputs_comparable,
    snapshot_outputs_valid,
    views_contain_own_input,
    levels_within_bounds,
    register_views_are_inputs,
)


@visibility_footprint(outputs=True)
@permutation_invariant
def consensus_agreement_and_validity(
    spec: SystemSpec, state: GlobalState
) -> Optional[str]:
    """Decided values are unique and among the proposed inputs."""
    outputs = spec.outputs(state)
    if not outputs:
        return None
    decided = set(outputs.values())
    if len(decided) > 1:
        return f"consensus disagreement: {sorted(decided, key=repr)!r}"
    (value,) = decided
    if value not in set(spec.inputs):
        return f"decided value {value!r} was never proposed"
    return None


@visibility_footprint(outputs=True)
@permutation_invariant
def renaming_names_valid(spec: SystemSpec, state: GlobalState) -> Optional[str]:
    """Names are positive, within the group bound, unique across groups."""
    outputs = spec.outputs(state)
    if not outputs:
        return None
    n_groups = len(set(spec.inputs))
    bound = n_groups * (n_groups + 1) // 2
    for pid, name in outputs.items():
        if not isinstance(name, int) or not 1 <= name <= bound:
            return f"processor {pid} name {name!r} outside 1..{bound}"
    items = list(outputs.items())
    for index, (first, first_name) in enumerate(items):
        for second, second_name in items[index + 1 :]:
            same_group = spec.inputs[first] == spec.inputs[second]
            if not same_group and first_name == second_name:
                return (
                    f"processors {first} and {second} of different groups share"
                    f" name {first_name}"
                )
    return None
