"""Level-batched exploration kernel: whole BFS levels as numpy u64 arrays.

The scalar engines in :mod:`repro.checker.fast_snapshot` process one
state per loop iteration; at N=3 scale that pure-Python loop is the
binding limit (~60k states/s, EXPERIMENTS.md).  The packed encoding is
already vector-ready — one state is one u64 bit pattern and every
transition is shift/mask arithmetic against precomputed tables — so
this module re-expresses the exploration loop over whole BFS levels:

- **expansion**: for each ``(pid, transition)`` pair, the scalar
  successor formula is applied to the entire frontier array at once
  (:meth:`BatchKernel.expand_level`), and the per-pair slices are
  reassembled into exactly the scalar engine's generation order
  (frontier-position major, then pid, then local register / scan);
- **canonicalization**: :class:`BatchCanonicalizer` replays the fused
  min-over-permutation-tables reduction of
  :class:`~repro.checker.symmetry.FastCanonicalizer` as numpy gathers
  plus an element-wise minimum across the stabilizer orbit;
- **fingerprinting**: :func:`splitmix64_many` is the scalar splitmix64
  on u64 arrays — numpy uint64 multiplication wraps modulo 2**64,
  which *is* the scalar's explicit ``& MASK64``; both sides share one
  constants module (:mod:`repro.checker.constants`) and a property
  test cross-checks them element-wise;
- **dedup**: ``np.unique`` per level, merged against the visited set
  through the bulk ``contains_many``/``add_many`` store APIs (the
  spill backend turns a level's sorted fresh keys into a sorted run
  natively).

**Conformance contract.**  The scalar engine stays the oracle: for any
unreduced configuration both engines support, :func:`explore_batch`
returns a
:class:`~repro.checker.fast_snapshot.FastExplorationResult` that is
field-for-field identical to the scalar one — same verdict and
violation message, same admitted/transition/truncated counts even for
budget-clipped runs, same covered-state totals under symmetry.  That
holds because per level the batch admission order (ascending first
occurrence in generation order) is exactly the scalar FIFO admission
order, and the mid-level bookkeeping (a violation returns after the
violating parent's full buffer was counted; a budget trip counts
truncated occurrences through the end of the tripping parent's buffer)
is replayed index-for-index from the generation-order arrays.

**POR** (``por=True``) composes through a *level-synchronous*
formulation (:class:`BatchAmpleSelector`): ample sets are selected for
the whole frontier at once — C0/C1 as bitmask AND-reductions over
per-pid footprint arrays compiled by
:class:`repro.checker.por.FootprintTables`, C2 on vectorized trial
successors, and a C3 cycle proviso that certifies novelty against
``visited ∪ earlier-in-level`` via one bulk ``contains_many`` gather
per trial round (pessimistic within a level, hence sound; see the
:mod:`repro.checker.por` docstring).  The two engines' C3 oracles
legitimately pick different ample sets, so batch+POR conformance is
*verdict-level* (same ok/violation/complete), not count-identical.

One configuration falls outside the batch kernel by design:
**wait-freedom** — lasso analysis needs the full edge list, which the
lean batch pipeline never materializes.

numpy is a *soft* dependency: this module imports with or without it,
``HAVE_NUMPY`` reports availability, and every entry point raises
:class:`BatchEngineUnavailable` with a clear message when numpy is
missing — the scalar engines and the rest of the package are
unaffected.
"""

# anonlint: role=harness

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, cast

from repro.checker.constants import (
    MASK64,
    SPLITMIX_GAMMA,
    SPLITMIX_MULT1,
    SPLITMIX_MULT2,
    SPLITMIX_SHIFT1,
    SPLITMIX_SHIFT2,
    SPLITMIX_SHIFT3,
)
from repro.checker.fast_snapshot import (
    _PHASE_DONE,
    _PHASE_SCAN,
    _PHASE_WRITE,
    _STOCK_CHECK_OUTPUTS,
    FastExplorationResult,
    FastSnapshotSpec,
)
from repro.checker.fingerprint import fingerprint_int
from repro.checker.por import FootprintTables, PORCounters
from repro.store.base import StoreConfig
from repro.store.checkpoint import RunCheckpointer
from repro.store.ram import RamStore

try:
    import numpy as np
except ImportError:  # pragma: no cover - exercised via HAVE_NUMPY stubs
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:
    from numpy.typing import NDArray

    from repro.checker.symmetry import FastCanonicalizer

    U64Array = NDArray[np.uint64]
    BoolArray = NDArray[np.bool_]
    I64Array = NDArray[np.int64]

#: True iff numpy imported; the CLI and tests key degradation on this.
HAVE_NUMPY = np is not None


class BatchEngineUnavailable(RuntimeError):
    """The batch engine was requested but numpy is not installed."""


def require_numpy() -> None:
    """Raise :class:`BatchEngineUnavailable` unless numpy is importable."""
    if not HAVE_NUMPY:
        raise BatchEngineUnavailable(
            "the batch engine processes BFS levels as numpy u64 arrays,"
            " but numpy is not installed in this environment — install"
            " numpy, or run the scalar engine (--engine scalar), which"
            " needs no third-party packages and produces identical"
            " results"
        )


# ----------------------------------------------------------------------
# Batched splitmix64
# ----------------------------------------------------------------------
def splitmix64_many(values: "U64Array") -> "U64Array":
    """The splitmix64 finalizer over a whole u64 array.

    numpy uint64 arithmetic wraps modulo 2**64 — the same semantics the
    scalar implementation gets from its explicit ``& MASK64`` — so the
    output is element-wise identical to
    :func:`repro.checker.fingerprint.splitmix64`.
    """
    mixed = (values ^ (values >> SPLITMIX_SHIFT1)) * SPLITMIX_MULT1
    mixed = (mixed ^ (mixed >> SPLITMIX_SHIFT2)) * SPLITMIX_MULT2
    return mixed ^ (mixed >> SPLITMIX_SHIFT3)


def fingerprint_many(states: "U64Array") -> "U64Array":
    """Batched :func:`~repro.checker.fingerprint.fingerprint_int`.

    Valid for states at most 64 bits wide (the batch engine's domain);
    the scalar function's limb fold covers wider encodings.
    """
    return splitmix64_many(states ^ SPLITMIX_GAMMA)


# ----------------------------------------------------------------------
# Sorted-array set helpers (the raw-successor memoization cache)
# ----------------------------------------------------------------------
def _in_sorted(sorted_keys: "U64Array", values: "U64Array") -> "BoolArray":
    """Membership of ``values`` in an ascending-sorted key array."""
    if sorted_keys.size == 0:
        return np.zeros(values.shape, dtype=bool)
    at = np.searchsorted(sorted_keys, values)
    at = np.minimum(at, sorted_keys.size - 1)
    return cast("BoolArray", sorted_keys[at] == values)


def _unique_first(keys: "U64Array") -> Tuple["U64Array", "I64Array"]:
    """``(sorted distinct keys, minimal position of each)``.

    Same contract as ``np.unique(keys, return_index=True)``, but that
    call forces a stable mergesort to make the returned indices
    minimal; a plain (unstable, faster) argsort followed by a
    ``minimum.reduceat`` over each equal-key run recovers the minimal
    positions anyway.

    Already-sorted input (the spill store's merge path hands whole
    levels back in key order) skips the sort entirely: equal keys are
    then contiguous, so each run's start *is* its minimal position.
    """
    if keys.size == 0:
        return keys, np.empty(0, dtype=np.intp)
    if bool(np.all(keys[1:] >= keys[:-1])):
        flag = np.empty(keys.size, dtype=bool)
        flag[0] = True
        np.not_equal(keys[1:], keys[:-1], out=flag[1:])
        starts = np.flatnonzero(flag)
        return keys[starts], starts
    perm = np.argsort(keys)
    sorted_keys = keys[perm]
    flag = np.empty(sorted_keys.size, dtype=bool)
    flag[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=flag[1:])
    starts = np.flatnonzero(flag)
    return sorted_keys[starts], np.minimum.reduceat(perm, starts)


def _probe_sorted(
    sorted_keys: "U64Array", values: "U64Array"
) -> Tuple["BoolArray", "I64Array"]:
    """``(membership mask, insertion positions)`` in one binary-search
    pass — the positions feed :func:`_insert_sorted`, so membership and
    the later merge share the search instead of each paying their own.
    """
    at = np.searchsorted(sorted_keys, values)
    if sorted_keys.size == 0:
        return np.zeros(values.shape, dtype=bool), at
    hit = at < sorted_keys.size
    present = np.zeros(values.shape, dtype=bool)
    present[hit] = sorted_keys[at[hit]] == values[hit]
    return present, at


def _insert_sorted(
    sorted_keys: "U64Array", at: "I64Array", fresh: "U64Array"
) -> "U64Array":
    """Merge ascending ``fresh`` (disjoint from the set) into the set at
    precomputed :func:`_probe_sorted` positions.

    One linear pass (``np.insert``) instead of ``np.union1d``'s full
    re-sort — the visited set is merged into once per level, so the
    re-sort would dominate late levels.
    """
    if sorted_keys.size == 0:
        return fresh.copy()
    if fresh.size == 0:
        return sorted_keys
    return np.insert(sorted_keys, at, fresh)


# ----------------------------------------------------------------------
# Batched transition relation
# ----------------------------------------------------------------------
class BatchKernel:
    """Vectorized successor expansion + safety mask for one spec.

    Precomputes, per ``(pid, register)``, the u64-safe clear masks the
    scalar :meth:`~FastSnapshotSpec.successor_states_into` uses (the
    scalar masks are negative Python ints — two's complement brings
    them into u64 range), and per pid the physical-offset gather table
    the scan step indexes by ``scan_pos``.

    Subclasses (the generated C kernel in
    :mod:`repro.checker.native.loader`) override the hot methods; the
    exploration loop and selector only ever call through this
    interface, so kernels are interchangeable bit-for-bit.
    """

    #: Which implementation serves the hot methods ("numpy"/"native").
    kernel_name = "numpy"

    def __init__(self, spec: FastSnapshotSpec) -> None:
        require_numpy()
        if spec.state_bits > 64:
            raise ValueError(
                f"the batch kernel holds whole levels as raw u64 arrays;"
                f" this configuration packs states into {spec.state_bits}"
                f" bits — use the scalar engine for wider encodings"
            )
        self.spec = spec
        self._local_clear = tuple(
            np.uint64(clear & MASK64) for clear in spec._local_clear
        )
        self._write_clear = tuple(
            tuple(np.uint64(clear & MASK64) for clear in per_pid)
            for per_pid in spec._write_clear
        )
        self._phys_shifts = tuple(
            np.array(spec._phys_offset[pid], dtype=np.uint64)
            for pid in range(spec.n)
        )
        #: Operations per parent slot in generation-order keys: m write
        #: slots plus the scan slot, per pid.
        self.ops_per_state = spec.n * (spec.m + 1)

    # ------------------------------------------------------------------
    def expand_level(
        self,
        frontier: "U64Array",
        selected: Optional["I64Array"] = None,
    ) -> Tuple["U64Array", "I64Array"]:
        """Successors of ``frontier``, in scalar generation order.

        Returns ``(successors, counts)``: ``counts[i]`` successors were
        generated by ``frontier[i]``, laid out parent-major (so
        ``successors[i]``'s parent index is recoverable as
        ``np.repeat(np.arange(counts.size), counts)[i]``), with each
        parent's successors ordered exactly as the scalar engine
        generates them: pid ascending, then register writes in
        register order followed by the scan step.  The reassembly is a
        counting placement — per (pid, op) part, every successor's
        final position is its parent's running cursor — which costs
        one linear pass per part instead of a level-wide argsort.

        ``selected`` is the per-state ample-selection mask from
        :class:`BatchAmpleSelector`: ``-1`` expands the state fully,
        ``0 <= p < n`` expands only pid ``p``'s successors (the chosen
        ample set), and any other negative value generates nothing for
        that state.  ``None`` expands everything (the unreduced path).
        """
        spec = self.spec
        #: (parent indices, successor values), in generation op order.
        parts: List[Tuple["I64Array", "U64Array"]] = []
        n_states = frontier.shape[0]
        counts = np.zeros(n_states, dtype=np.int64)
        for pid in range(spec.n):
            offset = spec.local_offsets[pid]
            local = (frontier >> offset) & spec.local_mask
            phase = (local >> spec.o_phase) & 3
            if selected is None:
                w_idx = np.flatnonzero(phase == _PHASE_WRITE)
                s_idx = np.flatnonzero(phase == _PHASE_SCAN)
            else:
                gen = (selected == pid) | (selected == -1)
                w_idx = np.flatnonzero((phase == _PHASE_WRITE) & gen)
                s_idx = np.flatnonzero((phase == _PHASE_SCAN) & gen)
            if w_idx.size:
                w_local = local[w_idx]
                w_states = frontier[w_idx]
                unwritten = (w_local >> spec.o_unwritten) & spec.m_mask
                record = w_local & spec._record_field
                # A writing state branches once per unwritten register.
                counts[w_idx] += np.bitwise_count(unwritten)
                for reg in range(spec.m):
                    sub = ((unwritten >> reg) & 1) == 1
                    if not bool(sub.any()):
                        continue
                    rec = record[sub]
                    remaining = unwritten[sub] & (
                        ~(1 << reg) & spec.m_mask
                    )
                    remaining = np.where(
                        remaining == 0, np.uint64(spec.m_mask), remaining
                    )
                    new_local = (
                        rec
                        | (remaining << spec.o_unwritten)
                        | spec._scan_reset
                    )
                    parts.append((
                        w_idx[sub],
                        (w_states[sub] & self._write_clear[pid][reg])
                        | (rec << spec._phys_offset[pid][reg])
                        | (new_local << offset),
                    ))
            if s_idx.size:
                parts.append((
                    s_idx,
                    self._scan_step(frontier[s_idx], local[s_idx], pid),
                ))
                counts[s_idx] += 1
        total = int(counts.sum())
        successors = np.empty(total, dtype=np.uint64)
        cursor = np.concatenate(([0], np.cumsum(counts)[:-1]))
        for idx, values in parts:
            successors[cursor[idx]] = values
            cursor[idx] += 1
        return successors, counts

    def _scan_step(
        self,
        states: "U64Array",
        loc: "U64Array",
        pid: int,
    ) -> "U64Array":
        """Vectorized ``_apply_read`` for the scanning states of ``pid``.

        ``states``/``loc`` are already restricted to the scanning
        subset.
        """
        spec = self.spec
        view = loc & spec.k_mask
        scan_pos = (loc >> spec.o_scanpos) & spec.sp_mask
        all_match = (loc >> spec.o_allmatch) & 1
        min_level = (loc >> spec.o_minlevel) & spec.ml_mask

        record = (states >> self._phys_shifts[pid][scan_pos]) & spec.reg_mask
        read_view = record & spec.k_mask
        match = (all_match == 1) & (read_view == view)
        new_min = np.where(
            match,
            np.minimum(min_level, record >> spec.k),
            np.uint64(spec.ml_sentinel),
        )
        new_view = np.where(match, view, view | read_view)
        new_all = np.where(match, np.uint64(1), np.uint64(0))

        continue_local = (
            new_view
            | (loc & spec._level_field)
            | (loc & spec._unwritten_field)
            | (_PHASE_SCAN << spec.o_phase)
            | ((scan_pos + 1) << spec.o_scanpos)
            | (new_all << spec.o_allmatch)
            | (new_min << spec.o_minlevel)
        )
        new_level = np.where(new_all == 1, new_min + 1, np.uint64(0))
        done_local = (
            new_view
            | (np.minimum(new_level, np.uint64(spec.lv_mask)) << spec.o_level)
            | spec._done_reset
        )
        write_local = (
            new_view
            | (new_level << spec.o_level)
            | (loc & spec._unwritten_field)
            | spec._write_reset
        )
        finish_local = np.where(
            new_level >= spec.level_target, done_local, write_local
        )
        new_local = np.where(
            scan_pos + 1 < spec.m, continue_local, finish_local
        )
        return cast(
            "U64Array",
            (states & self._local_clear[pid]) | (new_local << spec.local_offsets[pid]),
        )

    # ------------------------------------------------------------------
    def violations(self, states: "U64Array") -> "BoolArray":
        """The stock ``check_outputs`` verdict as a vectorized mask.

        True wherever the scalar check would return a message: a DONE
        processor's view missing its own input, or two DONE views that
        are not containment-related.  Messages are recomputed by the
        scalar function on the (single) state the caller selects.
        """
        spec = self.spec
        bad = np.zeros(states.shape, dtype=bool)
        done_masks: List["BoolArray"] = []
        views: List["U64Array"] = []
        for pid in range(spec.n):
            loc = (states >> spec.local_offsets[pid]) & spec.local_mask
            done = ((loc >> spec.o_phase) & 3) == _PHASE_DONE
            view = loc & spec.k_mask
            done_masks.append(done)
            views.append(view)
            bad |= done & ((view & spec.input_masks[pid]) == 0)
        for pid in range(spec.n):
            for other in range(pid + 1, spec.n):
                both = done_masks[pid] & done_masks[other]
                meet = views[pid] & views[other]
                bad |= both & (meet != views[pid]) & (meet != views[other])
        return bad

    # ------------------------------------------------------------------
    # Kernel seam: keys, dedup, symmetry, POR phase 1.  The numpy
    # implementations delegate to the module-level helpers; the native
    # kernel overrides each with its compiled twin.
    # ------------------------------------------------------------------
    def fingerprint_many(self, states: "U64Array") -> "U64Array":
        """Batched splitmix64 dedup keys (see module function)."""
        return fingerprint_many(states)

    def unique_first(
        self, keys: "U64Array"
    ) -> Tuple["U64Array", "I64Array"]:
        """``(sorted distinct keys, minimal position of each)``."""
        return _unique_first(keys)

    def probe_sorted(
        self, sorted_keys: "U64Array", values: "U64Array"
    ) -> Tuple["BoolArray", "I64Array"]:
        """``(membership mask, insertion positions)`` of ``values``.

        Both arrays must be ascending — ``values`` always comes out of
        :meth:`unique_first` here, which is what lets the native twin
        replace per-value binary search with one merge walk.
        """
        return _probe_sorted(sorted_keys, values)

    def make_canonicalizer(
        self, canonicalizer: Optional["FastCanonicalizer"]
    ) -> Optional[Any]:
        """The batched orbit reducer for ``canonicalizer`` (or None).

        Returns an object with ``canonical_many`` / ``orbit_sizes`` /
        ``order``, or None for a trivial (or absent) stabilizer.
        """
        if canonicalizer is None or canonicalizer.trivial:
            return None
        return BatchCanonicalizer(canonicalizer)

    def por_c0c1(
        self, frontier: "U64Array", tables: FootprintTables
    ) -> Tuple["BoolArray", "I64Array", "BoolArray", "I64Array"]:
        """C0/C1 of the ample selector for a whole frontier at once.

        Returns ``(qualified, nsucc, is_scan, total)``: per-pid rows
        over the frontier — ``qualified[pid]`` marks states where pid's
        singleton is a C0/C1-sound ample candidate (at least two active
        pids, no write/read footprint conflict with any other pid,
        non-empty successor set), ``nsucc[pid]`` its successor count,
        ``is_scan[pid]`` its scanning mask — plus the per-state total
        successor count.
        """
        spec = self.spec
        n = spec.n
        n_states = int(frontier.shape[0])
        zero = np.uint64(0)
        is_scan = np.zeros((n, n_states), dtype=bool)
        wmasks: List["U64Array"] = []
        rmasks: List["U64Array"] = []
        nsucc = np.zeros((n, n_states), dtype=np.int64)
        active_count = np.zeros(n_states, dtype=np.int64)
        total = np.zeros(n_states, dtype=np.int64)
        for pid in range(n):
            local = (frontier >> spec.local_offsets[pid]) & spec.local_mask
            phase = (local >> spec.o_phase) & 3
            writing = phase == _PHASE_WRITE
            scanning = phase == _PHASE_SCAN
            unwritten = (local >> spec.o_unwritten) & spec.m_mask
            wmasks.append(
                np.where(writing, tables.wmask[pid][unwritten], zero)
            )
            rmasks.append(np.where(scanning, tables.m_mask, zero))
            nsucc[pid] = np.where(
                writing, tables.popcount[unwritten], np.int64(0)
            ) + scanning
            is_scan[pid] = scanning
            active_count += writing | scanning
            total += nsucc[pid]

        # C1: pid i conflicts with pid j when i's writes touch j's
        # footprint or i's scan reads a cell j writes.  Inactive pids
        # have empty footprints and contribute nothing.
        eligible = active_count >= 2  # C0
        qualified = np.zeros((n, n_states), dtype=bool)
        for i in range(n):
            conflict = np.zeros(n_states, dtype=bool)
            for j in range(n):
                if j == i:
                    continue
                conflict |= (
                    (wmasks[i] & (wmasks[j] | rmasks[j])) != zero
                ) | ((rmasks[i] & wmasks[j]) != zero)
            qualified[i] = (nsucc[i] > 0) & eligible & ~conflict
        return qualified, nsucc, is_scan, total


def make_kernel(
    spec: FastSnapshotSpec,
    kernel: str = "numpy",
    canonicalizer: Optional["FastCanonicalizer"] = None,
) -> BatchKernel:
    """Construct the level kernel named by ``kernel``.

    ``"numpy"`` is the pure-numpy :class:`BatchKernel`; ``"native"``
    and ``"auto"`` build the generated C kernel
    (:mod:`repro.checker.native`) when a compiler and numpy are
    present, *silently* falling back to numpy otherwise — the two are
    bit-identical, so degradation never changes results, only speed
    (the CLI owns the one-time warning for an explicit ``native``
    request).  ``canonicalizer`` lets the native kernel bake the
    stabilizer tables into the translation unit.
    """
    if kernel not in ("auto", "numpy", "native"):
        raise ValueError(
            f"unknown kernel {kernel!r}; choose one of auto, numpy, native"
        )
    if kernel in ("auto", "native") and spec.state_bits <= 64:
        from repro.checker.native.loader import (
            NativeBuildError,
            NativeKernel,
            NativeKernelUnavailable,
            native_available,
        )

        if native_available():
            try:
                return NativeKernel(spec, canonicalizer=canonicalizer)
            except (NativeBuildError, NativeKernelUnavailable):
                pass
    return BatchKernel(spec)


# ----------------------------------------------------------------------
# Batched canonicalization
# ----------------------------------------------------------------------
class BatchCanonicalizer:
    """Gather-based orbit reduction over a canonicalizer's tables.

    Re-expresses :class:`~repro.checker.symmetry.FastCanonicalizer`'s
    per-element appliers as numpy gathers: the fused register table
    maps the whole packed register file in one fancy-indexed load, the
    local table each relocated local, and the orbit representative is
    the element-wise minimum across all images.  Elements whose fused
    tables did not fit (the scalar per-field fallback) are replayed
    from their field maps, still fully vectorized.
    """

    def __init__(self, canonicalizer: "FastCanonicalizer") -> None:
        require_numpy()
        self.order = canonicalizer.order
        self._fused: List[
            Tuple["U64Array", int, "U64Array", int, Tuple[Tuple[int, int], ...]]
        ] = []
        self._general: List[Dict[str, object]] = []
        for tables in canonicalizer.element_tables:
            if tables["kind"] == "fused":
                self._fused.append((
                    np.array(
                        cast(List[int], tables["register_table"]),
                        dtype=np.uint64,
                    ),
                    cast(int, tables["block_mask"]),
                    np.array(
                        cast(List[int], tables["local_table"]),
                        dtype=np.uint64,
                    ),
                    cast(int, tables["local_mask"]),
                    cast(Tuple[Tuple[int, int], ...], tables["moves"]),
                ))
            else:
                self._general.append({
                    "record_map": np.array(
                        cast(List[int], tables["record_map"]),
                        dtype=np.uint64,
                    ),
                    "reg_moves": tables["reg_moves"],
                    "reg_mask": tables["reg_mask"],
                    "view_map": np.array(
                        cast(List[int], tables["view_map"]),
                        dtype=np.uint64,
                    ),
                    "moves": tables["moves"],
                    "local_mask": tables["local_mask"],
                    "k_mask": tables["k_mask"],
                    "k_clear": tables["k_clear"],
                })

    # ------------------------------------------------------------------
    def _images(self, states: "U64Array") -> List["U64Array"]:
        """One image array per non-identity stabilizer element."""
        images: List["U64Array"] = []
        for register_table, block_mask, local_table, local_mask, moves in (
            self._fused
        ):
            image = register_table[states & block_mask]
            for dst, src in moves:
                image = image | (
                    local_table[(states >> src) & local_mask] << dst
                )
            images.append(image)
        for tables in self._general:
            record_map = cast("U64Array", tables["record_map"])
            reg_mask = cast(int, tables["reg_mask"])
            view_map = cast("U64Array", tables["view_map"])
            local_mask = cast(int, tables["local_mask"])
            k_mask = cast(int, tables["k_mask"])
            k_clear = cast(int, tables["k_clear"])
            image = np.zeros(states.shape, dtype=np.uint64)
            for dst, src in cast(
                Tuple[Tuple[int, int], ...], tables["reg_moves"]
            ):
                image |= record_map[(states >> src) & reg_mask] << dst
            for dst, src in cast(
                Tuple[Tuple[int, int], ...], tables["moves"]
            ):
                loc = (states >> src) & local_mask
                image |= ((loc & k_clear) | view_map[loc & k_mask]) << dst
            images.append(image)
        return images

    def canonical_many(self, states: "U64Array") -> "U64Array":
        """Orbit representatives (minimum image), element-wise."""
        best = states
        for image in self._images(states):
            best = np.minimum(best, image)
        return best

    def orbit_sizes(self, states: "U64Array") -> "I64Array":
        """Distinct-orbit-member counts, element-wise."""
        images = self._images(states)
        if not images:
            return np.ones(states.shape, dtype=np.int64)
        stacked = np.stack([states] + images)
        stacked.sort(axis=0)
        distinct = (stacked[1:] != stacked[:-1]).sum(axis=0) + 1
        return cast("I64Array", distinct.astype(np.int64))


# ----------------------------------------------------------------------
# Level-synchronous ample-set selection (POR)
# ----------------------------------------------------------------------
class BatchAmpleSelector:
    """Ample sets for a whole BFS level at once.

    The vectorized twin of
    :class:`~repro.checker.por.FastAmpleSelector`, selecting per
    frontier state either one pid's successors (an ample set satisfying
    C0–C3) or full expansion, as an ``int64`` mask consumed by
    :meth:`BatchKernel.expand_level`:

    - **C0/C1** — per-pid write/read footprints come from the
      :class:`~repro.checker.por.FootprintTables` gather tables; the
      pairwise conflict test ``(w_i & (w_j | r_j)) | (r_i & w_j)`` is a
      bitmask AND-reduction over whole frontier arrays.
    - **C2** — invisibility against the tables' compiled visibility
      footprint (outputs-only for the fast engine's stock safety
      property): a write never terminates its pid, a scan candidate is
      visible iff its successor phase is ``DONE``, and with
      ``check_safety=False`` nothing is visible.
    - **C3** — the level-synchronous cycle proviso: a candidate pid is
      kept only if at least one of its successors is *certainly new*,
      i.e. its key is absent from the visited set as of the level
      boundary (one bulk membership gather per trial round via the
      ``in_visited`` callback) **and** it is the first occurrence of
      that key in the round's candidate pool.  Pessimistic within a
      level, hence sound: every certified key really is admitted this
      level and re-expanded on the next (see
      :mod:`repro.checker.por`).

    Candidate pids are tried in ascending order, mirroring the scalar
    selector's retry loop; states with no qualifying pid are fully
    expanded.  ``counters`` maintains the same
    :class:`~repro.checker.por.PORCounters` invariants as the scalar
    selector (``ample_states + fully_expanded_states`` equals the
    number of expanded states).
    """

    def __init__(
        self,
        kernel: BatchKernel,
        check_safety: bool = True,
        cycle_proviso: bool = True,
    ) -> None:
        require_numpy()
        self.kernel = kernel
        self.spec = kernel.spec
        self.check_safety = check_safety
        self.cycle_proviso = cycle_proviso
        self.tables = FootprintTables(kernel.spec)
        self.counters = PORCounters()

    def select(
        self,
        frontier: "U64Array",
        key_of: Callable[["U64Array"], "U64Array"],
        in_visited: Callable[["U64Array"], "BoolArray"],
    ) -> "I64Array":
        """The per-state expansion mask for ``frontier``.

        ``key_of`` maps raw successor states to their dedup keys
        (canonicalization then fingerprinting, as configured);
        ``in_visited`` is bulk membership of keys in the visited set as
        of the level boundary.  Returns ``selected`` with ``-1`` (full
        expansion) or a pid index per state.
        """
        spec = self.spec
        n = spec.n
        n_states = int(frontier.shape[0])

        # Phase 1 (C0/C1) runs inside the kernel — footprint gathers
        # and the pairwise conflict bitmasks are its hottest masks.
        qualified, nsucc, is_scan, total = self.kernel.por_c0c1(
            frontier, self.tables
        )

        selected = np.full(n_states, -1, dtype=np.int64)
        undecided = np.ones(n_states, dtype=bool)
        blocked = np.zeros(n_states, dtype=bool)
        for pid in range(n):
            trial = undecided & qualified[pid]
            if not bool(trial.any()):
                continue
            # C2: writes never terminate their pid; a scan candidate is
            # visible exactly when its (single) successor is DONE.
            if self.check_safety and self.tables.visibility.outputs:
                scan_trial = trial & is_scan[pid]
                if bool(scan_trial.any()):
                    idx = np.flatnonzero(scan_trial)
                    sub = frontier[idx]
                    loc = (
                        sub >> spec.local_offsets[pid]
                    ) & spec.local_mask
                    succ = self.kernel._scan_step(sub, loc, pid)
                    succ_phase = (
                        succ >> (spec.local_offsets[pid] + spec.o_phase)
                    ) & 3
                    visible = succ_phase == _PHASE_DONE
                    trial[idx[visible]] = False
                    if not bool(trial.any()):
                        continue
            # C3: expand only this pid for the trial states and gather
            # bulk novelty verdicts for the whole round at once.
            if self.cycle_proviso:
                sel = np.full(n_states, -2, dtype=np.int64)
                sel[trial] = pid
                cand, cand_counts = self.kernel.expand_level(frontier, sel)
                passes = np.zeros(n_states, dtype=bool)
                if cand.size:
                    keys = key_of(cand)
                    uniq, first = self.kernel.unique_first(keys)
                    fresh = ~in_visited(uniq)
                    certainly_new = np.zeros(keys.size, dtype=bool)
                    certainly_new[first[fresh]] = True
                    cand_parents = np.repeat(
                        np.arange(n_states), cand_counts
                    )
                    passes[cand_parents[certainly_new]] = True
                ok = trial & passes
                blocked |= trial & ~passes
            else:
                ok = trial
            selected[ok] = pid
            undecided &= ~ok
            if not bool(undecided.any()):
                break

        counters = self.counters
        chosen = selected >= 0
        n_chosen = int(chosen.sum())
        counters.ample_states += n_chosen
        if n_chosen:
            kept = nsucc[selected[chosen], np.flatnonzero(chosen)]
            counters.transitions_pruned += int((total[chosen] - kept).sum())
        counters.fully_expanded_states += n_states - n_chosen
        counters.cycle_proviso_expansions += int((undecided & blocked).sum())
        return cast("I64Array", selected)


# ----------------------------------------------------------------------
# The level-batched exploration loop
# ----------------------------------------------------------------------
def _first_violation(
    spec: FastSnapshotSpec, kernel: BatchKernel, states: "U64Array"
) -> Tuple[int, Optional[str]]:
    """First violating state in admission order: ``(rank, message)``.

    Uses the vectorized mask when ``check_outputs`` is the stock
    implementation; any override (tests seed violations through it)
    gets faithful per-state scalar calls instead.
    """
    if type(spec).check_outputs is _STOCK_CHECK_OUTPUTS:
        hits = np.flatnonzero(kernel.violations(states))
        if hits.size == 0:
            return -1, None
        rank = int(hits[0])
        return rank, spec.check_outputs(int(states[rank]))
    for rank in range(states.size):
        message = spec.check_outputs(int(states[rank]))
        if message is not None:
            return rank, message
    return -1, None


def explore_batch(
    spec: FastSnapshotSpec,
    max_states: int = 200_000_000,
    check_safety: bool = True,
    progress_every: int = 0,
    fingerprint: bool = False,
    symmetry: bool = False,
    store: Optional[StoreConfig] = None,
    checkpointer: Optional[RunCheckpointer] = None,
    por: bool = False,
    por_cycle_proviso: bool = True,
    heartbeat: Optional[Any] = None,
    kernel: str = "numpy",
) -> FastExplorationResult:
    """Level-batched BFS, result-identical to the scalar engine.

    Call through :meth:`FastSnapshotSpec.explore` with
    ``engine="batch"`` rather than directly — ``explore`` owns the
    compatibility guards (wait-freedom, checkpoint completion) shared
    by both engines.  With ``por=True`` each level runs
    :class:`BatchAmpleSelector` before expansion; results are then
    verdict-conformant with (not count-identical to) the scalar
    selector — see the module docstring.  ``kernel`` names the level
    kernel (see :func:`make_kernel`); every kernel is bit-identical,
    so the choice never affects results.
    """
    require_numpy()
    canonicalizer: Optional["FastCanonicalizer"] = None
    if symmetry:
        from repro.checker.symmetry import FastCanonicalizer

        canonicalizer = FastCanonicalizer(spec)
    level_kernel = make_kernel(spec, kernel, canonicalizer)
    batch_canon = level_kernel.make_canonicalizer(canonicalizer)
    symmetric = batch_canon is not None
    selector: Optional[BatchAmpleSelector] = None
    if por:
        selector = BatchAmpleSelector(
            level_kernel,
            check_safety=check_safety,
            cycle_proviso=por_cycle_proviso,
        )
    # The visited set: when nothing observes the store (no explicit
    # backend to report counters for, no checkpointer to dump/resume
    # through) the engine keeps it as its own ascending-sorted u64
    # array — membership and merge are then pure vectorized passes,
    # with no per-key Python round-trip.  Semantically the sorted
    # array IS the default RamStore's set; results are identical.
    use_store = store is not None or checkpointer is not None
    store_obj = (store or StoreConfig()).create() if use_store else None
    fast_visited: Optional["U64Array"] = (
        None if use_store else np.empty(0, dtype=np.uint64)
    )

    def _store_counters() -> Optional[Dict[str, int]]:
        if store is None or store_obj is None:
            return None
        counters = dict(store_obj.counters())
        counters["file_bytes"] = store_obj.file_bytes()
        return counters

    def _por_counters() -> Optional[Dict[str, int]]:
        return selector.counters.as_dict() if selector is not None else None

    # The ample selector's C3 callbacks: successor states to dedup keys
    # (canonicalization then fingerprinting, as configured), and bulk
    # membership in the visited set as of the level boundary.  The
    # closures read ``batch_canon``/``fast_visited``/``store_obj`` from
    # this scope, so they always see the current level's snapshot —
    # never the raw-successor memoization cache, which is not
    # checkpointed and must not influence selection.
    def _key_of(states: "U64Array") -> "U64Array":
        reps = (
            batch_canon.canonical_many(states)
            if batch_canon is not None
            else states
        )
        return level_kernel.fingerprint_many(reps) if fingerprint else reps

    def _in_visited(keys: "U64Array") -> "BoolArray":
        if store_obj is not None:
            return np.asarray(
                store_obj.contains_many(keys.tolist()), dtype=bool
            )
        assert fast_visited is not None
        return _in_sorted(fast_visited, keys)

    try:
        initial = spec.initial_state()
        if symmetric:
            assert canonicalizer is not None
            initial = canonicalizer.canonical(initial)
        transitions = 0
        truncated = 0
        covered = 0
        resumed = checkpointer.latest() if checkpointer is not None else None
        if resumed is not None:
            assert store_obj is not None
            store_obj.load(resumed.visited())
            n_seen = resumed.counter("admitted")
            transitions = resumed.counter("transitions")
            truncated = resumed.counter("truncated")
            if symmetric:
                covered = resumed.counter("covered")
            if selector is not None:
                selector.counters.load(resumed.counters)
            frontier = np.fromiter(resumed.frontier(), dtype=np.uint64)
        else:
            if check_safety:
                violation = spec.check_outputs(initial)
                if violation:
                    if symmetric:
                        assert canonicalizer is not None
                        return FastExplorationResult(
                            1, 0, True, violation,
                            covered_states=canonicalizer.orbit_size(initial),
                            symmetry_group_order=canonicalizer.order,
                            store_counters=_store_counters(),
                            por_counters=_por_counters(),
                        )
                    return FastExplorationResult(
                        1, 0, True, violation,
                        store_counters=_store_counters(),
                        por_counters=_por_counters(),
                    )
            initial_key = fingerprint_int(initial) if fingerprint else initial
            if store_obj is not None:
                store_obj.add(initial_key)
            else:
                assert fast_visited is not None
                fast_visited = np.array([initial_key], dtype=np.uint64)
            n_seen = 1
            if symmetric:
                assert canonicalizer is not None
                covered = canonicalizer.orbit_size(initial)
            frontier = np.array([initial], dtype=np.uint64)

        # Raw-successor memoization, mirroring the scalar symmetric
        # loop's cache semantics exactly (RAM-backed, non-fingerprint
        # runs only): a raw successor seen before — in any earlier
        # level or earlier in this one — is skipped before
        # canonicalization, which both saves the gather work and keeps
        # budget-clipped ``truncated_transitions`` counts identical.
        raw_seen: Optional["U64Array"] = None
        if symmetric and not fingerprint:
            if store_obj is None:
                assert fast_visited is not None
                raw_seen = fast_visited.copy()
            elif isinstance(store_obj, RamStore):
                raw_seen = np.fromiter(
                    store_obj, dtype=np.uint64, count=len(store_obj)
                )

        complete = True
        while frontier.size:
            if heartbeat is not None:
                heartbeat.tick(n_seen, int(frontier.size), transitions)
            if checkpointer is not None and checkpointer.due(n_seen):
                assert store_obj is not None
                counters: Dict[str, int] = {
                    "admitted": n_seen,
                    "transitions": transitions,
                    "truncated": truncated,
                }
                if symmetric:
                    counters["covered"] = covered
                if selector is not None:
                    counters.update(selector.counters.as_dict())
                checkpointer.write(
                    iter(frontier.tolist()), counters, iter(store_obj)
                )

            if selector is not None:
                selected = selector.select(frontier, _key_of, _in_visited)
                successors, succ_counts = level_kernel.expand_level(
                    frontier, selected
                )
            else:
                successors, succ_counts = level_kernel.expand_level(frontier)
            level_size = int(successors.size)
            if level_size == 0:
                break

            # Candidate filter: generation positions that survive the
            # raw-successor cache (everything, when the cache is off).
            if raw_seen is not None:
                unique_raw, first_raw = level_kernel.unique_first(successors)
                seen_raw, at_raw = level_kernel.probe_sorted(
                    raw_seen, unique_raw
                )
                fresh_raw = ~seen_raw
                keep = np.zeros(level_size, dtype=bool)
                keep[first_raw[fresh_raw]] = True
                candidate_positions = np.flatnonzero(keep)
                candidates = successors[candidate_positions]
                raw_seen = _insert_sorted(
                    raw_seen, at_raw[fresh_raw], unique_raw[fresh_raw]
                )
            else:
                candidate_positions = None
                candidates = successors

            if batch_canon is not None:
                representatives = batch_canon.canonical_many(candidates)
            else:
                representatives = candidates
            keys = (
                level_kernel.fingerprint_many(representatives)
                if fingerprint
                else representatives
            )
            # One argsort buys both views at once (measured faster here
            # than hash-based ``np.unique`` plus a searchsorted
            # inverse, and than prefiltering occurrences against the
            # visited array — frontier-heavy workloads are mostly
            # fresh, so the prefilter pass just adds work): sorted
            # distinct keys and the first generation position of each.
            # The per-position rank (``return_inverse``) is only needed
            # by the once-per-run budget-trip branch, which recovers it
            # there with a searchsorted.
            unique_keys, first_occurrence = level_kernel.unique_first(keys)
            visited_at: Optional["I64Array"] = None
            if store_obj is not None:
                present = np.asarray(
                    store_obj.contains_many(unique_keys.tolist()), dtype=bool
                )
            else:
                assert fast_visited is not None
                present, visited_at = level_kernel.probe_sorted(
                    fast_visited, unique_keys
                )
            fresh_mask = ~present
            # Admission order is generation order, i.e. ascending first
            # occurrence; first occurrences are distinct positions, so a
            # plain sort replaces the argsort permutation.
            ordered_first = np.sort(first_occurrence[fresh_mask])
            n_new = int(ordered_first.size)
            remaining = max_states - n_seen
            admit_count = n_new if n_new <= remaining else remaining

            admitted_idx = ordered_first[:admit_count]
            admitted_states = representatives[admitted_idx]
            admitted_keys = keys[admitted_idx]
            if candidate_positions is not None:
                admitted_gen = candidate_positions[admitted_idx]
            else:
                admitted_gen = admitted_idx

            violating_rank = -1
            message: Optional[str] = None
            if check_safety and admit_count:
                violating_rank, message = _first_violation(
                    spec, level_kernel, admitted_states
                )
            parents: Optional["I64Array"] = None
            parent_ends: Optional["I64Array"] = None
            if violating_rank >= 0 or n_new > remaining:
                parents = np.repeat(
                    np.arange(int(frontier.size)), succ_counts
                )
                parent_ends = np.cumsum(succ_counts)

            if violating_rank >= 0:
                assert parents is not None and parent_ends is not None
                admitted_now = violating_rank + 1
                bad_parent = int(parents[int(admitted_gen[violating_rank])])
                transitions += int(parent_ends[bad_parent])
                if store_obj is not None:
                    store_obj.add_many(
                        admitted_keys[:admitted_now].tolist()
                    )
                n_seen += admitted_now
                if symmetric:
                    assert batch_canon is not None
                    covered += int(
                        batch_canon.orbit_sizes(
                            admitted_states[:admitted_now]
                        ).sum()
                    )
                if symmetric:
                    assert canonicalizer is not None
                    return FastExplorationResult(
                        n_seen, transitions, complete, message,
                        truncated_transitions=truncated,
                        covered_states=covered,
                        symmetry_group_order=canonicalizer.order,
                        store_counters=_store_counters(),
                        por_counters=_por_counters(),
                    )
                return FastExplorationResult(
                    n_seen, transitions, complete, message,
                    truncated_transitions=truncated,
                    store_counters=_store_counters(),
                    por_counters=_por_counters(),
                )

            if n_new > remaining:
                # Budget trip: the scalar loop flips ``complete`` at
                # the first occurrence of the (budget+1)-th new key,
                # keeps counting truncated occurrences through the end
                # of that parent's buffer, then stops.
                assert parents is not None and parent_ends is not None
                complete = False
                trip_candidate = int(ordered_first[admit_count])
                if candidate_positions is not None:
                    trip_gen = int(candidate_positions[trip_candidate])
                    candidate_gen = candidate_positions
                else:
                    trip_gen = trip_candidate
                    candidate_gen = np.arange(
                        level_size, dtype=np.int64
                    )
                trip_parent = int(parents[trip_gen])
                buffer_end = int(parent_ends[trip_parent])
                transitions += buffer_end
                # Unadmitted fresh keys are exactly the fresh keys whose
                # first occurrence sorts at or after the trip position.
                unadmitted = fresh_mask & (
                    first_occurrence >= trip_candidate
                )
                # The window is the tail of one parent's buffer (at
                # most n*(m+1) entries), so rank only those keys
                # instead of the whole level.
                window = np.flatnonzero(
                    (candidate_gen >= trip_gen)
                    & (candidate_gen < buffer_end)
                )
                inverse = np.searchsorted(unique_keys, keys[window])
                truncated += int(unadmitted[inverse].sum())
                if store_obj is not None:
                    store_obj.add_many(admitted_keys.tolist())
                n_seen += admit_count
                if symmetric:
                    assert batch_canon is not None
                    covered += int(
                        batch_canon.orbit_sizes(admitted_states).sum()
                    )
                break

            transitions += level_size
            if store_obj is not None:
                store_obj.add_many(admitted_keys.tolist())
            else:
                assert fast_visited is not None and visited_at is not None
                fast_visited = _insert_sorted(
                    fast_visited,
                    visited_at[fresh_mask],
                    unique_keys[fresh_mask],
                )
            previous_seen = n_seen
            n_seen += admit_count
            if symmetric:
                assert batch_canon is not None
                covered += int(
                    batch_canon.orbit_sizes(admitted_states).sum()
                )
            frontier = admitted_states
            if progress_every and (
                n_seen // progress_every > previous_seen // progress_every
            ):
                if symmetric:
                    print(
                        f"  ... {n_seen} representatives,"
                        f" {covered} covered,"
                        f" {transitions} transitions", flush=True
                    )
                else:
                    print(
                        f"  ... {n_seen} states,"
                        f" {transitions} transitions", flush=True
                    )

        if canonicalizer is not None:
            return FastExplorationResult(
                states=n_seen,
                transitions=transitions,
                complete=complete,
                truncated_transitions=truncated,
                covered_states=covered if symmetric else n_seen,
                symmetry_group_order=canonicalizer.order,
                store_counters=_store_counters(),
                por_counters=_por_counters(),
            )
        return FastExplorationResult(
            states=n_seen,
            transitions=transitions,
            complete=complete,
            truncated_transitions=truncated,
            store_counters=_store_counters(),
            por_counters=_por_counters(),
        )
    finally:
        if store_obj is not None:
            store_obj.close()
