"""64-bit state fingerprints for memory-lean exploration (TLC-style).

TLC's central scaling trick is to store a *fingerprint set* rather than
the states themselves: each reached state is hashed to a 64-bit value
and only the hash is remembered.  Per-state memory collapses (a packed
integer in a hash set versus a full state object plus parent/index
bookkeeping), at the price of a vanishingly small probability that two
distinct states collide and a reachable state is silently skipped.

This module provides the fingerprint functions shared by the explorers
(:mod:`repro.checker.explorer`, :mod:`repro.checker.fast_snapshot`) and
the sharded engine (:mod:`repro.checker.parallel`, which also uses the
fingerprint to assign states to frontier shards deterministically):

- :func:`fingerprint_int` — arbitrary-precision packed states (the fast
  bitmask explorer) folded 64 bits at a time through splitmix64;
- :func:`fingerprint_state` — object-encoded :class:`GlobalState`\\ s,
  mixed from the state's cached structural hash.  NOTE: Python string
  hashing is randomized per interpreter, so these fingerprints are only
  stable *within* one process tree (fork workers inherit the seed);
  ``fingerprint_int`` is fully deterministic across processes.
- :func:`collision_probability` — the birthday bound reported in docs
  and the benchmark harness.

The splitmix64 finalizer is the standard one (Steele et al., used by
Java's SplittableRandom and most 64-bit hash mixers): it is bijective
on 64-bit words and passes avalanche tests, so structured, nearly-equal
packed states (the common case in BFS) spread uniformly.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.checker.constants import (
    MASK64,
    SPLITMIX_GAMMA,
    SPLITMIX_MULT1,
    SPLITMIX_MULT2,
    SPLITMIX_SHIFT1,
    SPLITMIX_SHIFT2,
    SPLITMIX_SHIFT3,
)

# The constants live in repro.checker.constants, shared bit for bit
# with the batched numpy mix (repro.checker.batch); the historical
# private names stay bound for callers that imported them.
_MASK64 = MASK64
#: Seed for the iterated fold; any odd constant works, this is the
#: golden-ratio constant splitmix64 itself increments by.
_SEED = SPLITMIX_GAMMA


def splitmix64(value: int) -> int:
    """The splitmix64 finalizer: a bijective 64-bit avalanche mix."""
    value &= MASK64
    value = ((value ^ (value >> SPLITMIX_SHIFT1)) * SPLITMIX_MULT1) & MASK64
    value = ((value ^ (value >> SPLITMIX_SHIFT2)) * SPLITMIX_MULT2) & MASK64
    return value ^ (value >> SPLITMIX_SHIFT3)


def fingerprint_int(state: int) -> int:
    """Fingerprint a non-negative packed-integer state to 64 bits.

    States at most 64 bits wide (every N<=3 snapshot configuration)
    take a single mix; wider states fold limb by limb, so the function
    works unchanged for the N>=4 sweeps later PRs open up.
    """
    mixed = splitmix64(_SEED ^ (state & _MASK64))
    state >>= 64
    while state:
        mixed = splitmix64(mixed ^ (state & _MASK64))
        state >>= 64
    return mixed


def fingerprint_state(state: Hashable) -> int:
    """Fingerprint a hashable object state (e.g. ``GlobalState``).

    Builds on the object's (cached) structural hash, then remixes so
    that Python's weaker tuple-hash patterns do not leak into the
    fingerprint distribution.
    """
    return splitmix64(hash(state) & _MASK64)


def is_cross_process_stable(fingerprint_fn: Callable[..., int]) -> bool:
    """True iff ``fingerprint_fn`` yields identical digests in every
    interpreter process.

    :func:`fingerprint_int` is pure splitmix64 arithmetic — stable
    everywhere.  :func:`fingerprint_state` builds on ``hash()``, which
    Python randomizes per interpreter (``PYTHONHASHSEED``): its digests
    are only meaningful within one process tree, so sharding by them
    across independently-started workers, or persisting them to disk
    for a later resume, silently corrupts deduplication.  The storage
    layer (:mod:`repro.store`) consults this before doing either.
    """
    return fingerprint_fn is fingerprint_int


def collision_probability(n_states: int) -> float:
    """Birthday bound: P(any two of ``n_states`` fingerprints collide).

    For n states uniformly hashed to 64 bits this is approximately
    n(n-1)/2^65 — about 2.7e-9 for the 10^4.5 states of an N=2 sweep
    and still only ~5e-5 at the 10^9 states of a full N=3 run, the same
    regime TLC reports after its runs.
    """
    return min(1.0, n_states * (n_states - 1) / 2.0 / float(1 << 64))
