"""Global transition systems over algorithm machines.

A :class:`SystemSpec` closes an :class:`~repro.sim.machine.AlgorithmMachine`
over a concrete configuration — number of processors, inputs, wiring —
and exposes the induced global transition system:

- a global state is ``(registers, locals)``, both tuples of immutable
  values;
- an action is ``(pid, op)``; successors branch over every processor
  and every operation its machine allows (the algorithm's internal
  nondeterminism), which is exactly the adversary's power in the paper's
  model plus the algorithm's free choices.

Because machines are pure, exploring this system is exhaustive over all
interleavings *for the given wiring*; the experiments iterate over all
wiring assignments modulo register relabelling
(:func:`repro.memory.wiring.enumerate_wiring_assignments`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterator, List, Sequence, Tuple

from repro.memory.wiring import WiringAssignment
from repro.sim.machine import AlgorithmMachine
from repro.sim.ops import Op, Read, Write


class GlobalState:
    """One global configuration: register contents + all local states.

    States are hashed twice per transition by the explorer's BFS dict
    lookups, so the hash is computed once at construction and cached;
    ``__slots__`` keeps the per-state footprint flat.  Treat instances
    as immutable (the constructor freezes the hash).
    """

    __slots__ = ("registers", "locals", "_hash")

    def __init__(
        self, registers: Tuple[Any, ...], locals: Tuple[Any, ...]
    ) -> None:
        self.registers = registers
        self.locals = locals
        self._hash = hash((registers, locals))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, GlobalState):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.registers == other.registers
            and self.locals == other.locals
        )

    def __repr__(self) -> str:
        return (
            f"GlobalState(registers={self.registers!r},"
            f" locals={self.locals!r})"
        )

    def __reduce__(self):
        return (GlobalState, (self.registers, self.locals))


@dataclass(frozen=True, slots=True)
class Action:
    """One atomic step: processor ``pid`` performing ``op``.

    ``op.reg`` is the *local* register index the processor used; the
    physical index it touched is recorded too, for trace readability.
    """

    pid: int
    op: Op
    physical: int


class SystemSpec:
    """The global transition system of ``n`` copies of one machine.

    Parameters
    ----------
    machine:
        The algorithm every (anonymous) processor runs.
    inputs:
        Private input per processor; position = pid.
    wiring:
        The wiring assignment fixing each processor's register
        permutation.
    """

    def __init__(
        self,
        machine: AlgorithmMachine,
        inputs: Sequence[Hashable],
        wiring: WiringAssignment,
    ) -> None:
        if len(inputs) != wiring.n_processors:
            raise ValueError(
                f"{len(inputs)} inputs for {wiring.n_processors} wired processors"
            )
        self.machine = machine
        self.inputs = tuple(inputs)
        self.wiring = wiring
        self.n_processors = len(self.inputs)
        self.n_registers = wiring.n_registers
        # Hot-path table: local register index -> physical index, per
        # processor (avoids a method call per transition in `apply`).
        self._physical = tuple(w.permutation for w in wiring)

    # ------------------------------------------------------------------
    # Transition relation
    # ------------------------------------------------------------------
    def initial_state(self) -> GlobalState:
        default = self.machine.register_initial_value()
        return GlobalState(
            registers=tuple([default] * self.n_registers),
            locals=tuple(
                self.machine.initial_state(value) for value in self.inputs
            ),
        )

    def successors(self, state: GlobalState) -> Iterator[Tuple[Action, GlobalState]]:
        """All one-step successors, branching over processors and ops."""
        for pid in range(self.n_processors):
            local = state.locals[pid]
            for op in self.machine.enabled_ops(local):
                yield self.apply(state, pid, op)

    def apply(self, state: GlobalState, pid: int, op: Op) -> Tuple[Action, GlobalState]:
        """Apply one (pid, op) step; returns the action and new state."""
        physical = self._physical[pid][op.reg]
        registers = state.registers
        if isinstance(op, Read):
            result = registers[physical]
        elif isinstance(op, Write):
            result = None
            mutable = list(registers)
            mutable[physical] = op.value
            registers = tuple(mutable)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown op {op!r}")
        new_local = self.machine.apply(state.locals[pid], op, result)
        mutable_locals = list(state.locals)
        mutable_locals[pid] = new_local
        return (
            Action(pid=pid, op=op, physical=physical),
            GlobalState(registers=registers, locals=tuple(mutable_locals)),
        )

    # ------------------------------------------------------------------
    # Observations
    # ------------------------------------------------------------------
    def outputs(self, state: GlobalState) -> dict:
        """pid -> output, for the processors terminated in ``state``."""
        result = {}
        for pid, local in enumerate(state.locals):
            value = self.machine.output(local)
            if value is not None:
                result[pid] = value
        return result

    def terminated(self, state: GlobalState, pid: int) -> bool:
        """Whether ``pid`` has no enabled operations in ``state``."""
        return not self.machine.enabled_ops(state.locals[pid])

    def all_terminated(self, state: GlobalState) -> bool:
        return all(
            self.terminated(state, pid) for pid in range(self.n_processors)
        )

    def schedule_of(self, actions: Sequence[Action]) -> List[int]:
        """Extract the pid schedule from an action path (for replay)."""
        return [action.pid for action in actions]
