"""Explicit-state model checker: the reproduction's stand-in for TLC.

The paper validates its algorithms with the TLC model checker (Figure 3
caption and Section 8).  This package reproduces that methodology:

- :mod:`repro.checker.system` builds a global transition system from any
  :class:`~repro.sim.machine.AlgorithmMachine` plus a wiring assignment
  — the checker explores *the same algorithm code* the simulator runs;
- :mod:`repro.checker.explorer` is a breadth-first explorer with
  invariant checking, counterexample-path reconstruction, and state/
  transition statistics (TLC-style);
- :mod:`repro.checker.liveness` checks wait-freedom as the absence of
  "bad lassos": reachable cycles in which some processor takes steps but
  never terminates;
- :mod:`repro.checker.properties` holds the invariants the experiments
  check (snapshot containment, validity, level soundness, ...);
- :mod:`repro.checker.atomicity` finds claim-B counterexamples —
  executions whose snapshot output never equalled the memory contents —
  by exploring a history-augmented system, and re-validates them by
  replaying the produced schedule in the simulator;
- :mod:`repro.checker.parallel` fans exploration across CPU cores
  (whole wiring classes per worker, or a frontier-sharded BFS within
  one class) the way TLC does;
- :mod:`repro.checker.fingerprint` provides the 64-bit state
  fingerprints behind the explorers' memory-lean fingerprint mode and
  the sharded engine's deterministic state-ownership function;
- :mod:`repro.checker.symmetry` quotients the state space by the wiring
  stabilizer (process/register permutations plus input renaming): the
  explorers store one canonical representative per orbit and
  de-canonicalize counterexamples back to concrete executions.
"""

from repro.checker.atomicity import (
    AtomicityCounterexample,
    best_first_non_atomic_search,
    dfs_non_atomic_search,
    extend_avoiding_union,
    find_non_atomic_execution,
    memory_union,
    pattern_walk_non_atomic_search,
    random_walk_non_atomic_search,
)
from repro.checker.explorer import ExplorationResult, Explorer, InvariantViolation
from repro.checker.fingerprint import (
    collision_probability,
    fingerprint_int,
    fingerprint_state,
)
from repro.checker.liveness import WaitFreedomViolation, check_wait_freedom
from repro.checker.parallel import (
    check_snapshot_classes,
    effective_jobs,
    explore_sharded,
    ordered_parallel_map,
)
from repro.checker.symmetry import (
    FastCanonicalizer,
    GroupElement,
    StateCanonicalizer,
    assert_permutation_invariant,
    lift_canonical_path,
)
from repro.checker.system import Action, GlobalState, SystemSpec

__all__ = [
    "check_snapshot_classes",
    "explore_sharded",
    "ordered_parallel_map",
    "effective_jobs",
    "GroupElement",
    "StateCanonicalizer",
    "FastCanonicalizer",
    "lift_canonical_path",
    "assert_permutation_invariant",
    "fingerprint_int",
    "fingerprint_state",
    "collision_probability",
    "SystemSpec",
    "GlobalState",
    "Action",
    "Explorer",
    "ExplorationResult",
    "InvariantViolation",
    "check_wait_freedom",
    "WaitFreedomViolation",
    "find_non_atomic_execution",
    "dfs_non_atomic_search",
    "random_walk_non_atomic_search",
    "pattern_walk_non_atomic_search",
    "best_first_non_atomic_search",
    "extend_avoiding_union",
    "memory_union",
    "AtomicityCounterexample",
]
