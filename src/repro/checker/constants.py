"""The splitmix64 constants, shared by every implementation of the mix.

The scalar fingerprint (:mod:`repro.checker.fingerprint`) and the
level-batched numpy kernel (:mod:`repro.checker.batch`) implement the
same finalizer — Steele, Lea & Flood's splitmix64 — and must produce
bit-identical digests: fingerprints shard states across worker
processes and persist in checkpoints, so a one-constant drift between
the two implementations would silently mis-deduplicate.  Keeping the
magic numbers in one module makes the agreement structural; the
property tests in ``tests/test_batch_engine.py`` check it element-wise
anyway.
"""

from __future__ import annotations

#: All arithmetic is modulo 2**64.
MASK64 = (1 << 64) - 1

#: The golden-gamma increment; doubles as the fingerprint seed.
SPLITMIX_GAMMA = 0x9E3779B97F4A7C15

#: Finalizer multipliers and xor-shift distances, in application order:
#: ``v = (v ^ v>>S1) * M1;  v = (v ^ v>>S2) * M2;  v ^ v>>S3``.
SPLITMIX_MULT1 = 0xBF58476D1CE4E5B9
SPLITMIX_MULT2 = 0x94D049BB133111EB
SPLITMIX_SHIFT1 = 30
SPLITMIX_SHIFT2 = 27
SPLITMIX_SHIFT3 = 31
