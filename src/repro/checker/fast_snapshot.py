"""Bitmask-encoded exploration of the snapshot algorithm.

Exhaustively exploring the 3-processor snapshot algorithm (the paper's
TLC claim A) needs tens of millions of states; the generic
object-encoded explorer of :mod:`repro.checker.explorer` is too slow for
that in pure Python.  This module provides a specialized, semantically
identical transition system in which one global state is a single
Python ``int``:

- register ``r`` holds ``view_mask | (level << K)``;
- processor ``p`` holds packed fields ``(view, level, unwritten, phase,
  scan_pos, all_match, min_level, acc)``;

with ``K`` the number of distinct inputs.  The transition rules mirror
:class:`repro.core.snapshot.SnapshotMachine` line for line; conformance
tests (``tests/test_fast_snapshot.py``) check that the fast system and
the generic system produce identical reachable-state graphs for ``N=2``
and identical random-walk behaviours for ``N=3``, so whatever the fast
explorer certifies transfers to the real implementation.

Beyond speed, the module implements the *configuration symmetry
reduction* used by experiment E4: wiring assignments are enumerated up
to (a) relabelling of physical registers and (b) simultaneous
permutation of processors and their (distinct) inputs — both are
isomorphisms of the induced state graph, because processors are
anonymous (identical code) and the checked properties are invariant
under renaming inputs.  For ``N = M = 3`` this cuts the 216 raw wiring
assignments to a handful of canonical classes.
"""

from __future__ import annotations

import itertools
from array import array
from collections import deque
from dataclasses import asdict, dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.checker.fingerprint import fingerprint_int
from repro.store.base import StoreConfig
from repro.store.checkpoint import RunCheckpointer, load_result
from repro.store.ram import RamStore

# Phase encoding.
_PHASE_WRITE = 0
_PHASE_SCAN = 1
_PHASE_DONE = 2


@dataclass
class FastExplorationResult:
    """Outcome of one fast exhaustive exploration."""

    states: int
    transitions: int
    complete: bool
    violation: Optional[str] = None
    #: (pid, schedule) witnessing a wait-freedom violation, if checked.
    bad_lasso_pid: Optional[int] = None
    #: Transitions whose (new) target was dropped at the state budget.
    truncated_transitions: int = 0
    #: Symmetry runs only: concrete states covered by the explored
    #: orbit representatives (sum of orbit sizes); ``covered / states``
    #: is the reduction ratio achieved by the quotient.
    covered_states: Optional[int] = None
    #: Symmetry runs only: order of the wiring-stabilizer group.
    symmetry_group_order: Optional[int] = None
    #: Sharded symmetry runs only: boundary states received already in
    #: canonical form (certified by the wire format's canonical bit),
    #: whose re-canonicalization was therefore skipped.
    recanonicalizations_skipped: Optional[int] = None
    #: Runs with an explicit store configuration: the backend's
    #: operation counters plus ``file_bytes`` (disk footprint).
    store_counters: Optional[Dict[str, int]] = None
    #: POR runs only: ample-set selector counters (transitions pruned,
    #: ample vs fully-expanded states, cycle-proviso expansions).
    por_counters: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return self.violation is None and self.bad_lasso_pid is None


class _ChunkedIntQueue:
    """FIFO of unsigned 64-bit ints stored in raw ``array('Q')`` chunks.

    The fingerprint explorer's frontier would otherwise hold one boxed
    Python int (~32 bytes) plus a deque slot per pending state; packing
    them into arrays brings that to 8 bytes flat, which is what lets
    the visited *set* dominate the memory profile as intended.
    """

    __slots__ = (
        "_chunks", "_head", "_head_pos", "_tail", "_chunk_size", "_count",
    )

    def __init__(self, chunk_size: int = 8192) -> None:
        self._chunks: deque = deque()
        self._head: Optional[array] = None
        self._head_pos = 0
        self._tail: array = array("Q")
        self._chunk_size = chunk_size
        self._count = 0

    def __len__(self) -> int:
        return self._count

    def push(self, value: int) -> None:
        tail = self._tail
        tail.append(value)
        self._count += 1
        if len(tail) >= self._chunk_size:
            self._chunks.append(tail)
            self._tail = array("Q")

    def pop(self) -> int:
        """Next state in FIFO order, or -1 when the queue is empty."""
        head = self._head
        if head is None or self._head_pos >= len(head):
            if self._chunks:
                self._head = self._chunks.popleft()
            elif self._tail:
                self._head = self._tail
                self._tail = array("Q")
            else:
                return -1
            self._head_pos = 0
            head = self._head
        value = head[self._head_pos]
        self._head_pos += 1
        self._count -= 1
        return value

    def snapshot(self) -> Iterator[int]:
        """Yield the pending values in FIFO order without consuming them
        (checkpointing dumps the frontier mid-run)."""
        head = self._head
        if head is not None and self._head_pos < len(head):
            yield from head[self._head_pos:]
        for chunk in self._chunks:
            yield from chunk
        yield from self._tail


class FastSnapshotSpec:
    """The Figure 3 algorithm over packed-integer global states.

    Parameters mirror :class:`~repro.core.snapshot.SnapshotMachine`;
    ``wiring`` is a tuple of permutations (local -> physical), one per
    processor.
    """

    def __init__(
        self,
        inputs: Sequence[int],
        wiring: Sequence[Sequence[int]],
        n_registers: Optional[int] = None,
        level_target: Optional[int] = None,
    ) -> None:
        self.n = len(inputs)
        self.m = n_registers if n_registers is not None else len(wiring[0])
        if any(len(perm) != self.m for perm in wiring):
            raise ValueError("wiring width does not match register count")
        self.level_target = self.n if level_target is None else level_target
        self.wiring = tuple(tuple(perm) for perm in wiring)
        self.inputs = tuple(inputs)

        # Input values -> bit positions (duplicates share a bit: groups).
        distinct = sorted(set(inputs), key=repr)
        self.value_bits = {value: index for index, value in enumerate(distinct)}
        self.bit_values = distinct
        self.k = len(distinct)
        self.input_masks = tuple(1 << self.value_bits[value] for value in inputs)

        # Field widths.
        self.lv_bits = max(1, self.level_target.bit_length())
        if self.level_target >= (1 << self.lv_bits):
            self.lv_bits += 1
        self.ml_sentinel = self.level_target + 1  # "no level read yet"
        self.ml_bits = max(1, self.ml_sentinel.bit_length())
        self.sp_bits = max(1, (self.m - 1).bit_length()) if self.m > 1 else 1
        self.reg_bits = self.k + self.lv_bits
        # Local layout: view | level | unwritten | phase | scan_pos |
        #               all_match | min_level.  (The scan accumulator is
        # folded into the view, mirroring SnapshotState's quotient.)
        self.o_level = self.k
        self.o_unwritten = self.o_level + self.lv_bits
        self.o_phase = self.o_unwritten + self.m
        self.o_scanpos = self.o_phase + 2
        self.o_allmatch = self.o_scanpos + self.sp_bits
        self.o_minlevel = self.o_allmatch + 1
        self.local_bits = self.o_minlevel + self.ml_bits

        # Global layout: registers first, then locals.
        self.reg_offsets = tuple(r * self.reg_bits for r in range(self.m))
        base = self.m * self.reg_bits
        self.local_offsets = tuple(
            base + p * self.local_bits for p in range(self.n)
        )

        self.k_mask = (1 << self.k) - 1
        self.lv_mask = (1 << self.lv_bits) - 1
        self.ml_mask = (1 << self.ml_bits) - 1
        self.sp_mask = (1 << self.sp_bits) - 1
        self.m_mask = (1 << self.m) - 1
        self.reg_mask = (1 << self.reg_bits) - 1
        self.local_mask = (1 << self.local_bits) - 1
        self.state_bits = self.local_offsets[-1] + self.local_bits

        # ------------------------------------------------------------------
        # Hot-path tables (see `successors` / `successor_states_into`):
        # everything a transition needs that depends only on (pid, reg)
        # is precomputed, and pack_local is replaced by OR-ing field
        # templates onto bits that are already in position (o_level ==
        # k, so a local's view+level bits *are* the register record).
        # ------------------------------------------------------------------
        #: In-place field masks.
        self._level_field = self.lv_mask << self.o_level
        self._unwritten_field = self.m_mask << self.o_unwritten
        self._record_field = self.k_mask | self._level_field
        #: Shift of the physical register written/read via local index.
        self._phys_offset = tuple(
            tuple(self.reg_offsets[self.wiring[pid][reg]] for reg in range(self.m))
            for pid in range(self.n)
        )
        #: Clears pid's local; ANDed into the state on every step.
        self._local_clear = tuple(
            ~(self.local_mask << offset) for offset in self.local_offsets
        )
        #: Clears pid's local *and* the register behind (pid, reg).
        self._write_clear = tuple(
            tuple(
                self._local_clear[pid]
                & ~(self.reg_mask << self._phys_offset[pid][reg])
                for reg in range(self.m)
            )
            for pid in range(self.n)
        )
        #: Constant template bits of a freshly packed local, per phase:
        #: scan_pos=0, all_match=1, min_level=sentinel (+ the phase).
        self._scan_reset = (
            (_PHASE_SCAN << self.o_phase)
            | (1 << self.o_allmatch)
            | (self.ml_sentinel << self.o_minlevel)
        )
        self._write_reset = (
            (1 << self.o_allmatch) | (self.ml_sentinel << self.o_minlevel)
        )
        self._done_reset = (
            (_PHASE_DONE << self.o_phase)
            | (1 << self.o_allmatch)
            | (self.ml_sentinel << self.o_minlevel)
        )

    # ------------------------------------------------------------------
    # Encoding helpers
    # ------------------------------------------------------------------
    def pack_local(
        self,
        view: int,
        level: int,
        unwritten: int,
        phase: int,
        scan_pos: int,
        all_match: int,
        min_level: int,
    ) -> int:
        return (
            view
            | (level << self.o_level)
            | (unwritten << self.o_unwritten)
            | (phase << self.o_phase)
            | (scan_pos << self.o_scanpos)
            | (all_match << self.o_allmatch)
            | (min_level << self.o_minlevel)
        )

    def initial_state(self) -> int:
        state = 0
        for pid in range(self.n):
            local = self.pack_local(
                view=self.input_masks[pid],
                level=0,
                unwritten=self.m_mask,
                phase=_PHASE_WRITE,
                scan_pos=0,
                all_match=1,
                min_level=self.ml_sentinel,
            )
            state |= local << self.local_offsets[pid]
        return state

    def local_of(self, state: int, pid: int) -> int:
        return (state >> self.local_offsets[pid]) & self.local_mask

    def register_of(self, state: int, physical: int) -> int:
        return (state >> self.reg_offsets[physical]) & self.reg_mask

    def view_of(self, state: int, pid: int) -> int:
        return self.local_of(state, pid) & self.k_mask

    def phase_of(self, state: int, pid: int) -> int:
        return (self.local_of(state, pid) >> self.o_phase) & 3

    def done(self, state: int, pid: int) -> bool:
        return self.phase_of(state, pid) == _PHASE_DONE

    def output_views(self, state: int) -> Dict[int, frozenset]:
        """pid -> output view (as a frozenset of input values)."""
        outputs = {}
        for pid in range(self.n):
            if self.done(state, pid):
                mask = self.view_of(state, pid)
                outputs[pid] = frozenset(
                    self.bit_values[b] for b in range(self.k) if mask >> b & 1
                )
        return outputs

    # ------------------------------------------------------------------
    # Transition relation
    # ------------------------------------------------------------------
    def successors(self, state: int) -> List[Tuple[int, int]]:
        """All ``(pid, next_state)`` one-step successors.

        Enumeration order (pid ascending, then local register
        ascending) is part of the conformance contract with the generic
        :class:`~repro.checker.system.SystemSpec` and must not change.
        """
        result: List[Tuple[int, int]] = []
        local_mask = self.local_mask
        record_field = self._record_field
        scan_reset = self._scan_reset
        unwritten_shift = self.o_unwritten
        m = self.m
        m_mask = self.m_mask
        for pid in range(self.n):
            offset = self.local_offsets[pid]
            local = (state >> offset) & local_mask
            phase = (local >> self.o_phase) & 3
            if phase == _PHASE_DONE:
                continue
            if phase == _PHASE_WRITE:
                record = local & record_field
                unwritten = (local >> unwritten_shift) & m_mask
                phys_offset = self._phys_offset[pid]
                write_clear = self._write_clear[pid]
                for reg in range(m):
                    if not (unwritten >> reg) & 1:
                        continue
                    remaining = unwritten & ~(1 << reg)
                    if remaining == 0:
                        remaining = m_mask
                    new_local = (
                        record | (remaining << unwritten_shift) | scan_reset
                    )
                    result.append((
                        pid,
                        (state & write_clear[reg])
                        | (record << phys_offset[reg])
                        | (new_local << offset),
                    ))
            else:  # scanning
                result.append((pid, self._apply_read(state, pid, local, offset)))
        return result

    def successor_states_into(self, state: int, buf: List[int]) -> List[int]:
        """Append all successor *states* of ``state`` to ``buf``.

        The reusable-buffer twin of :meth:`successors` for the
        exploration hot loop: no per-state list allocation, no
        ``(pid, state)`` tuple per successor (BFS dedup only needs the
        state).  ``buf`` is cleared first and returned.  Enumeration
        order matches :meth:`successors` exactly.
        """
        buf.clear()
        append = buf.append
        local_mask = self.local_mask
        record_field = self._record_field
        scan_reset = self._scan_reset
        unwritten_shift = self.o_unwritten
        phase_shift = self.o_phase
        m = self.m
        m_mask = self.m_mask
        for pid in range(self.n):
            offset = self.local_offsets[pid]
            local = (state >> offset) & local_mask
            phase = (local >> phase_shift) & 3
            if phase == _PHASE_DONE:
                continue
            if phase == _PHASE_WRITE:
                record = local & record_field
                unwritten = (local >> unwritten_shift) & m_mask
                phys_offset = self._phys_offset[pid]
                write_clear = self._write_clear[pid]
                for reg in range(m):
                    if not (unwritten >> reg) & 1:
                        continue
                    remaining = unwritten & ~(1 << reg)
                    if remaining == 0:
                        remaining = m_mask
                    new_local = (
                        record | (remaining << unwritten_shift) | scan_reset
                    )
                    append(
                        (state & write_clear[reg])
                        | (record << phys_offset[reg])
                        | (new_local << offset)
                    )
            else:  # scanning
                append(self._apply_read(state, pid, local, offset))
        return buf

    def _apply_read(self, state: int, pid: int, local: int, offset: int) -> int:
        k_mask = self.k_mask
        view = local & k_mask
        scan_pos = (local >> self.o_scanpos) & self.sp_mask
        all_match = (local >> self.o_allmatch) & 1
        min_level = (local >> self.o_minlevel) & self.ml_mask

        record = (state >> self._phys_offset[pid][scan_pos]) & self.reg_mask
        read_view = record & k_mask
        if all_match and read_view == view:
            read_level = record >> self.k
            if read_level < min_level:
                min_level = read_level
        else:
            # Mirror SnapshotState's quotient: once the scan stopped
            # matching, fold reads into the view immediately and drop
            # the level bookkeeping.
            all_match = 0
            view |= read_view
            min_level = self.ml_sentinel

        if scan_pos + 1 < self.m:
            new_local = (
                view
                | (local & self._level_field)
                | (local & self._unwritten_field)
                | (_PHASE_SCAN << self.o_phase)
                | ((scan_pos + 1) << self.o_scanpos)
                | (all_match << self.o_allmatch)
                | (min_level << self.o_minlevel)
            )
        else:
            new_level = (min_level + 1) if all_match else 0
            if new_level >= self.level_target:
                new_local = (
                    view
                    | (min(new_level, self.lv_mask) << self.o_level)
                    | self._done_reset
                )
            else:
                new_local = (
                    view
                    | (new_level << self.o_level)
                    | (local & self._unwritten_field)
                    | self._write_reset
                )
        return (state & self._local_clear[pid]) | (new_local << offset)

    # ------------------------------------------------------------------
    # Safety: outputs must be pairwise containment-related and valid
    # ------------------------------------------------------------------
    def check_outputs(self, state: int) -> Optional[str]:
        views: List[Tuple[int, int]] = []  # (pid, view mask)
        for pid in range(self.n):
            if self.done(state, pid):
                views.append((pid, self.view_of(state, pid)))
        for index, (pid, mask) in enumerate(views):
            if not mask & self.input_masks[pid]:
                return f"processor {pid} output misses its own input"
            for other_pid, other_mask in views[index + 1 :]:
                meet = mask & other_mask
                if meet != mask and meet != other_mask:
                    return (
                        f"incomparable outputs: p{pid}={self._fmt(mask)}"
                        f" vs p{other_pid}={self._fmt(other_mask)}"
                    )
        return None

    def _fmt(self, mask: int) -> str:
        values = [str(self.bit_values[b]) for b in range(self.k) if mask >> b & 1]
        return "{" + ",".join(values) + "}"

    # ------------------------------------------------------------------
    # Exploration
    # ------------------------------------------------------------------
    def explore(
        self,
        max_states: int = 200_000_000,
        check_safety: bool = True,
        check_wait_freedom: bool = False,
        progress_every: int = 0,
        fingerprint: bool = False,
        symmetry: bool = False,
        store: Optional[StoreConfig] = None,
        checkpointer: Optional[RunCheckpointer] = None,
        por: bool = False,
        por_cycle_proviso: bool = True,
        engine: str = "scalar",
        kernel: str = "auto",
        heartbeat=None,
    ) -> FastExplorationResult:
        """BFS over all reachable states (for this wiring).

        With ``check_wait_freedom`` the full edge list is retained and
        analysed for bad lassos (cycles where some processor steps but
        never terminates); see :mod:`repro.checker.liveness` for the
        argument.

        With ``fingerprint`` the visited set stores 64-bit state
        fingerprints instead of the packed states themselves, and the
        pending frontier is packed into raw 8-byte arrays when states
        fit 64 bits — TLC's memory model, trading a ~n²/2⁶⁵ collision
        probability for a much higher state budget in the same memory
        envelope.  Incompatible with ``check_wait_freedom`` (lasso
        analysis needs the full indexed state table).

        With ``symmetry`` the visited set keys on orbit
        representatives under the wiring-stabilizer group
        (:mod:`repro.checker.symmetry`), exploring up to ``N!`` times
        fewer states; the result reports ``covered_states`` (sum of
        orbit sizes — the concrete states the run certifies) next to
        the representative count.  The safety verdict is unchanged
        (output comparability/validity is permutation-invariant); a
        violation *message*, checked on the representative, may name a
        permuted pid.  Stacks with ``fingerprint``; incompatible with
        ``check_wait_freedom``, whose per-pid lasso analysis needs the
        unreduced graph.

        ``store`` selects the visited-set backend (:mod:`repro.store`):
        None / the default RamStore keeps the historical in-memory set;
        the mmap and spill backends bound memory for runs whose visited
        set outgrows RAM.  All backends produce identical results.

        ``checkpointer`` persists the run (frontier + visited dump +
        counters) every ``checkpointer.every`` admitted states; calling
        ``explore`` again with a checkpointer over the same directory
        resumes from the last committed checkpoint, or returns the
        recorded result directly if the run already finished.

        With ``por`` an ample-set partial-order reduction
        (:mod:`repro.checker.por`) prunes commuting interleavings: a
        state whose processors' current operations touch disjoint
        physical registers expands only one processor, provided its
        steps are invisible to ``check_outputs`` (no termination) and
        reach at least one unvisited state (cycle proviso).  Composes
        with ``symmetry`` (selection on the representative's concrete
        successors, canonicalized as usual), ``fingerprint``,
        ``store`` and ``checkpointer``; incompatible with
        ``check_wait_freedom``, whose lasso analysis needs the
        unreduced graph.  ``por_cycle_proviso`` is a test seam
        (disables C3); leave it on.

        ``engine`` selects the exploration loop: ``"scalar"`` (default)
        is the historical one-state-at-a-time loop and the conformance
        oracle; ``"batch"`` (:mod:`repro.checker.batch`) processes
        whole BFS levels as numpy u64 arrays for a large serial
        throughput gain, with field-identical results.  The batch
        engine needs numpy (a soft dependency — it raises
        :class:`~repro.checker.batch.BatchEngineUnavailable` with a
        clear message when missing), requires states to pack into 64
        bits, and is incompatible with ``check_wait_freedom`` (the
        lean batch pipeline keeps no edge list).  With ``por`` the
        batch engine runs its own level-synchronous ample selector
        (:class:`~repro.checker.batch.BatchAmpleSelector`): the cycle
        proviso certifies novelty against ``visited ∪
        earlier-in-level`` instead of the scalar loop's mid-level
        visited set, so batch+POR results are verdict-conformant with
        the scalar selector (same ok/violation/complete) but may pick
        different — equally sound — ample sets and hence different
        state/transition counts (see :mod:`repro.checker.por`).

        ``kernel`` picks the batch engine's level kernel: ``"auto"``
        (default) uses the generated native C kernel
        (:mod:`repro.checker.native`) when a C compiler is present and
        the numpy kernel otherwise; ``"numpy"`` and ``"native"`` force
        a choice (an unavailable ``"native"`` silently degrades to
        numpy — results are bit-identical either way).  Ignored by the
        scalar engine.
        """
        if engine not in ("scalar", "batch"):
            raise ValueError(
                f"unknown engine {engine!r}; choose 'scalar' or 'batch'"
            )
        if kernel not in ("auto", "numpy", "native"):
            raise ValueError(
                f"unknown kernel {kernel!r}; choose 'auto', 'numpy' or"
                f" 'native'"
            )
        if engine == "batch":
            from repro.checker import batch as batch_engine

            batch_engine.require_numpy()
            if check_wait_freedom:
                raise ValueError(
                    "wait-freedom (lasso) analysis needs the full edge"
                    " list, which the lean batch pipeline never"
                    " materializes — use the scalar engine"
                )
            if self.state_bits > 64:
                raise ValueError(
                    f"the batch kernel holds whole levels as raw u64"
                    f" arrays; this configuration packs states into"
                    f" {self.state_bits} bits — use the scalar engine"
                )
        if por and check_wait_freedom:
            raise ValueError(
                "partial-order reduction prunes interleavings, but"
                " wait-freedom (lasso) analysis needs the full"
                " unreduced transition graph — drop por"
            )
        if fingerprint and check_wait_freedom:
            raise ValueError(
                "fingerprint mode keeps no state table; wait-freedom"
                " (lasso) analysis requires a full indexed exploration"
            )
        if symmetry and check_wait_freedom:
            raise ValueError(
                "symmetry reduction relabels processors per state, so"
                " pid edge labels are not orbit-stable; wait-freedom"
                " (lasso) analysis needs the unreduced graph"
            )
        if check_wait_freedom and store is not None and store.backend != "ram":
            raise ValueError(
                "wait-freedom (lasso) analysis keeps a full in-RAM indexed"
                " state table; disk-backed stores apply to the lean safety"
                " engines only"
            )
        if checkpointer is not None:
            if check_wait_freedom:
                raise ValueError(
                    "checkpoint/resume covers the lean safety engines;"
                    " wait-freedom analysis keeps its whole edge list"
                    " in RAM and cannot be resumed"
                )
            if self.state_bits > 64:
                raise ValueError(
                    f"checkpoint frontier wire format is raw u64 words;"
                    f" this configuration packs states into"
                    f" {self.state_bits} bits"
                )
            recorded = checkpointer.completed_result()
            if recorded is not None:
                return load_result(FastExplorationResult, recorded)
        if check_wait_freedom:
            return self._explore_with_edges(
                max_states, check_safety, progress_every
            )
        if engine == "batch":
            from repro.checker.batch import explore_batch

            result = explore_batch(
                self, max_states, check_safety, progress_every,
                fingerprint, symmetry, store, checkpointer,
                por, por_cycle_proviso, heartbeat=heartbeat,
                kernel=kernel,
            )
        else:
            result = self._explore_lean(
                max_states, check_safety, progress_every, fingerprint,
                symmetry, store, checkpointer, por, por_cycle_proviso,
                heartbeat=heartbeat,
            )
        if checkpointer is not None:
            checkpointer.mark_complete(asdict(result))
        return result

    def _explore_lean(
        self,
        max_states: int,
        check_safety: bool,
        progress_every: int,
        fingerprint: bool,
        symmetry: bool = False,
        store: Optional[StoreConfig] = None,
        checkpointer: Optional[RunCheckpointer] = None,
        por: bool = False,
        por_cycle_proviso: bool = True,
        heartbeat=None,
    ) -> FastExplorationResult:
        """Safety-only BFS: dedup set + frontier, no index/order tables.

        This is the hot path of the E4 sweep; it admits states in
        exactly the same order as the indexed variant, so budgets and
        early-violation results are identical between the two.  The
        visited set lives in the configured :mod:`repro.store` backend;
        the default RamStore keeps the historical inline-set fast path.
        """
        canonicalizer = None
        if symmetry:
            from repro.checker.symmetry import FastCanonicalizer

            canonicalizer = FastCanonicalizer(self)
            if not canonicalizer.trivial:
                return self._explore_lean_symmetric(
                    canonicalizer, max_states, check_safety,
                    progress_every, fingerprint, store, checkpointer,
                    por, por_cycle_proviso, heartbeat=heartbeat,
                )
            # Trivial stabilizer: the quotient IS the concrete graph;
            # fall through to the plain loop and report covered==states.
        store_obj = (store or StoreConfig()).create()
        ram_set = (
            store_obj.raw_set if isinstance(store_obj, RamStore) else None
        )
        ram_add = ram_set.add if ram_set is not None else None
        store_add = store_obj.add

        def _store_counters() -> Optional[Dict[str, int]]:
            if store is None:
                return None
            counters = dict(store_obj.counters())
            counters["file_bytes"] = store_obj.file_bytes()
            return counters

        selector = None
        is_new = None
        if por:
            from repro.checker.por import FastAmpleSelector

            selector = FastAmpleSelector(
                self, check_safety=check_safety,
                cycle_proviso=por_cycle_proviso,
            )
            membership = ram_set if ram_set is not None else store_obj
            if fingerprint:
                is_new = lambda s: fingerprint_int(s) not in membership
            else:
                is_new = lambda s: s not in membership

        def _por_counters() -> Optional[Dict[str, int]]:
            return selector.counters.as_dict() if selector is not None else None

        try:
            initial = self.initial_state()
            packable = fingerprint and self.state_bits <= 64
            queue: Optional[_ChunkedIntQueue] = (
                _ChunkedIntQueue() if packable else None
            )
            frontier: Optional[deque] = None if packable else deque()
            transitions = 0
            truncated = 0
            resumed = (
                checkpointer.latest() if checkpointer is not None else None
            )
            if resumed is not None:
                store_obj.load(resumed.visited())
                n_seen = resumed.counter("admitted")
                transitions = resumed.counter("transitions")
                truncated = resumed.counter("truncated")
                if selector is not None:
                    selector.counters.load(resumed.counters)
                for pending in resumed.frontier():
                    if packable:
                        queue.push(pending)
                    else:
                        frontier.append(pending)
            else:
                if check_safety:
                    violation = self.check_outputs(initial)
                    if violation:
                        return FastExplorationResult(
                            1, 0, True, violation,
                            store_counters=_store_counters(),
                            por_counters=_por_counters(),
                        )
                store_add(fingerprint_int(initial) if fingerprint else initial)
                n_seen = 1
                if packable:
                    queue.push(initial)
                else:
                    frontier.append(initial)
            complete = True
            buf: List[int] = []
            check_outputs = self.check_outputs
            successor_states_into = self.successor_states_into

            while True:
                if heartbeat is not None:
                    heartbeat.tick(
                        n_seen, len(queue if packable else frontier),
                        transitions,
                    )
                if checkpointer is not None and checkpointer.due(n_seen):
                    counters = {
                        "admitted": n_seen,
                        "transitions": transitions,
                        "truncated": truncated,
                    }
                    if selector is not None:
                        counters.update(selector.counters.as_dict())
                    checkpointer.write(
                        queue.snapshot() if packable else iter(frontier),
                        counters,
                        iter(store_obj),
                    )
                if packable:
                    state = queue.pop()
                    if state < 0:
                        break
                else:
                    if not frontier:
                        break
                    state = frontier.popleft()
                if selector is None:
                    successor_states_into(state, buf)
                else:
                    selector.expand(state, buf, is_new)
                transitions += len(buf)
                for successor in buf:
                    key = (
                        fingerprint_int(successor) if fingerprint else successor
                    )
                    if ram_add is not None:
                        # Historical hot path: inline set ops, no store
                        # dispatch per generated transition.
                        if key in ram_set:
                            continue
                        if n_seen >= max_states:
                            complete = False
                            truncated += 1
                            continue
                        ram_add(key)
                        n_seen += 1
                    elif n_seen < max_states:
                        if not store_add(key):
                            continue
                        n_seen += 1
                    else:
                        if key in store_obj:
                            continue
                        complete = False
                        truncated += 1
                        continue
                    if packable:
                        queue.push(successor)
                    else:
                        frontier.append(successor)
                    if check_safety:
                        violation = check_outputs(successor)
                        if violation:
                            return FastExplorationResult(
                                n_seen, transitions, complete, violation,
                                truncated_transitions=truncated,
                                store_counters=_store_counters(),
                                por_counters=_por_counters(),
                            )
                    if progress_every and n_seen % progress_every == 0:
                        print(
                            f"  ... {n_seen} states,"
                            f" {transitions} transitions", flush=True
                        )
                if not complete:
                    # Budget exhausted: no pending state can admit a new
                    # one, so draining the frontier is invariant-free
                    # wasted work (the seed explorer kept going here).
                    break

            return FastExplorationResult(
                states=n_seen,
                transitions=transitions,
                complete=complete,
                truncated_transitions=truncated,
                covered_states=n_seen if canonicalizer is not None else None,
                symmetry_group_order=(
                    canonicalizer.order if canonicalizer is not None else None
                ),
                store_counters=_store_counters(),
                por_counters=_por_counters(),
            )
        finally:
            store_obj.close()

    def _explore_lean_symmetric(
        self,
        canonicalizer,
        max_states: int,
        check_safety: bool,
        progress_every: int,
        fingerprint: bool,
        store: Optional[StoreConfig] = None,
        checkpointer: Optional[RunCheckpointer] = None,
        por: bool = False,
        por_cycle_proviso: bool = True,
        heartbeat=None,
    ) -> FastExplorationResult:
        """The lean BFS over the quotient graph: one state per orbit.

        Every generated successor is canonicalized before the
        visited-set lookup, so both the visited set and the frontier
        hold orbit representatives only.  Without ``fingerprint`` a
        raw-successor cache additionally skips re-canonicalizing
        concrete successors generated more than once (the common case:
        most generated transitions hit already-seen states), trading
        memory bounded by the *unreduced* successor count for a large
        cut in canonicalizer calls; fingerprint mode — and any
        disk-backed store, whose whole point is bounded RAM — keeps the
        memory-lean contract instead and pays the canonicalization per
        generated transition.  The cache is pure memoization, so every
        backend still reports identical states/transitions/verdicts.
        """
        canonical = canonicalizer.canonical
        orbit_size = canonicalizer.orbit_size
        store_obj = (store or StoreConfig()).create()
        ram_set = (
            store_obj.raw_set if isinstance(store_obj, RamStore) else None
        )
        ram_add = ram_set.add if ram_set is not None else None
        store_add = store_obj.add

        def _store_counters() -> Optional[Dict[str, int]]:
            if store is None:
                return None
            counters = dict(store_obj.counters())
            counters["file_bytes"] = store_obj.file_bytes()
            return counters

        selector = None
        if por:
            from repro.checker.por import FastAmpleSelector

            selector = FastAmpleSelector(
                self, check_safety=check_safety,
                cycle_proviso=por_cycle_proviso,
            )

        def _por_counters() -> Optional[Dict[str, int]]:
            return selector.counters.as_dict() if selector is not None else None

        try:
            initial = canonical(self.initial_state())
            packable = fingerprint and self.state_bits <= 64
            queue: Optional[_ChunkedIntQueue] = (
                _ChunkedIntQueue() if packable else None
            )
            frontier: Optional[deque] = None if packable else deque()
            transitions = 0
            truncated = 0
            covered = 0
            resumed = (
                checkpointer.latest() if checkpointer is not None else None
            )
            if resumed is not None:
                store_obj.load(resumed.visited())
                n_seen = resumed.counter("admitted")
                transitions = resumed.counter("transitions")
                truncated = resumed.counter("truncated")
                covered = resumed.counter("covered")
                if selector is not None:
                    selector.counters.load(resumed.counters)
                for pending in resumed.frontier():
                    if packable:
                        queue.push(pending)
                    else:
                        frontier.append(pending)
            else:
                if check_safety:
                    violation = self.check_outputs(initial)
                    if violation:
                        return FastExplorationResult(
                            1, 0, True, violation,
                            covered_states=orbit_size(initial),
                            symmetry_group_order=canonicalizer.order,
                            store_counters=_store_counters(),
                            por_counters=_por_counters(),
                        )
                store_add(fingerprint_int(initial) if fingerprint else initial)
                n_seen = 1
                covered = orbit_size(initial)
                if packable:
                    queue.push(initial)
                else:
                    frontier.append(initial)
            # The raw-successor cache is RAM-only by design (it grows
            # with the unreduced graph); a cold cache after resume only
            # costs extra canonicalizer calls, never correctness.
            raw_seen: Optional[Set[int]] = (
                None if (fingerprint or ram_set is None) else set(ram_set)
            )
            complete = True
            buf: List[int] = []
            check_outputs = self.check_outputs
            successor_states_into = self.successor_states_into
            is_new = None
            if selector is not None:
                membership = ram_set if ram_set is not None else store_obj

                def is_new(successor: int) -> bool:
                    # A raw successor seen before had its representative
                    # admitted then — certainly not new.
                    if raw_seen is not None and successor in raw_seen:
                        return False
                    representative = canonical(successor)
                    key = (
                        fingerprint_int(representative)
                        if fingerprint
                        else representative
                    )
                    return key not in membership

            while True:
                if heartbeat is not None:
                    heartbeat.tick(
                        n_seen, len(queue if packable else frontier),
                        transitions,
                    )
                if checkpointer is not None and checkpointer.due(n_seen):
                    counters = {
                        "admitted": n_seen,
                        "transitions": transitions,
                        "truncated": truncated,
                        "covered": covered,
                    }
                    if selector is not None:
                        counters.update(selector.counters.as_dict())
                    checkpointer.write(
                        queue.snapshot() if packable else iter(frontier),
                        counters,
                        iter(store_obj),
                    )
                if packable:
                    state = queue.pop()
                    if state < 0:
                        break
                else:
                    if not frontier:
                        break
                    state = frontier.popleft()
                if selector is None:
                    successor_states_into(state, buf)
                else:
                    selector.expand(state, buf, is_new)
                transitions += len(buf)
                for successor in buf:
                    if raw_seen is not None:
                        if successor in raw_seen:
                            continue
                        raw_seen.add(successor)
                    representative = canonical(successor)
                    key = (
                        fingerprint_int(representative)
                        if fingerprint
                        else representative
                    )
                    if ram_add is not None:
                        if key in ram_set:
                            continue
                        if n_seen >= max_states:
                            complete = False
                            truncated += 1
                            continue
                        ram_add(key)
                        n_seen += 1
                    elif n_seen < max_states:
                        if not store_add(key):
                            continue
                        n_seen += 1
                    else:
                        if key in store_obj:
                            continue
                        complete = False
                        truncated += 1
                        continue
                    covered += orbit_size(representative)
                    if packable:
                        queue.push(representative)
                    else:
                        frontier.append(representative)
                    if check_safety:
                        violation = check_outputs(representative)
                        if violation:
                            return FastExplorationResult(
                                n_seen, transitions, complete, violation,
                                truncated_transitions=truncated,
                                covered_states=covered,
                                symmetry_group_order=canonicalizer.order,
                                store_counters=_store_counters(),
                                por_counters=_por_counters(),
                            )
                    if progress_every and n_seen % progress_every == 0:
                        print(
                            f"  ... {n_seen} representatives,"
                            f" {covered} covered,"
                            f" {transitions} transitions", flush=True
                        )
                if not complete:
                    break

            return FastExplorationResult(
                states=n_seen,
                transitions=transitions,
                complete=complete,
                truncated_transitions=truncated,
                covered_states=covered,
                symmetry_group_order=canonicalizer.order,
                store_counters=_store_counters(),
                por_counters=_por_counters(),
            )
        finally:
            store_obj.close()

    def _explore_with_edges(
        self, max_states: int, check_safety: bool, progress_every: int
    ) -> FastExplorationResult:
        initial = self.initial_state()
        index_of: Dict[int, int] = {initial: 0}
        frontier: deque = deque([initial])
        transitions = 0
        truncated = 0
        complete = True
        edges: List[Tuple[int, int, int]] = []
        order: List[int] = [initial]

        if check_safety:
            violation = self.check_outputs(initial)
            if violation:
                return FastExplorationResult(1, 0, True, violation)

        while frontier:
            state = frontier.popleft()
            state_index = index_of[state]
            for pid, successor in self.successors(state):
                transitions += 1
                successor_index = index_of.get(successor)
                if successor_index is None:
                    if len(index_of) >= max_states:
                        complete = False
                        truncated += 1
                        continue
                    successor_index = len(index_of)
                    index_of[successor] = successor_index
                    order.append(successor)
                    frontier.append(successor)
                    if check_safety:
                        violation = self.check_outputs(successor)
                        if violation:
                            return FastExplorationResult(
                                len(index_of), transitions, complete, violation,
                                truncated_transitions=truncated,
                            )
                    if progress_every and len(index_of) % progress_every == 0:
                        print(
                            f"  ... {len(index_of)} states,"
                            f" {transitions} transitions", flush=True
                        )
                edges.append((state_index, pid, successor_index))
            if not complete:
                break

        bad_pid = None
        if complete:
            bad_pid = self._find_bad_lasso(order, edges)
        return FastExplorationResult(
            states=len(index_of),
            transitions=transitions,
            complete=complete,
            bad_lasso_pid=bad_pid,
            truncated_transitions=truncated,
        )

    def _find_bad_lasso(
        self, order: List[int], edges: List[Tuple[int, int, int]]
    ) -> Optional[int]:
        from repro.checker.liveness import _scc_ids

        n_states = len(order)
        alive_cache: List[int] = [0] * n_states
        for index, state in enumerate(order):
            mask = 0
            for pid in range(self.n):
                if not self.done(state, pid):
                    mask |= 1 << pid
            alive_cache[index] = mask
        for pid in range(self.n):
            bit = 1 << pid
            adjacency: Dict[int, List[int]] = {}
            pid_edges: List[Tuple[int, int]] = []
            for src, actor, dst in edges:
                if alive_cache[src] & bit and alive_cache[dst] & bit:
                    adjacency.setdefault(src, []).append(dst)
                    if actor == pid:
                        pid_edges.append((src, dst))
            if not pid_edges:
                continue
            component = _scc_ids(adjacency, n_states)
            for src, dst in pid_edges:
                if src == dst or (
                    component[src] == component[dst] and component[src] != -1
                ):
                    return pid
        return None


#: ``check_outputs`` as defined by the class body above, captured before
#: any monkeypatch can run (patching requires importing this module
#: first).  The batch engine compares the live class attribute against
#: this to decide whether its vectorized safety mask is faithful or an
#: override (tests seed violations through ``check_outputs``) requires
#: per-state scalar calls.
_STOCK_CHECK_OUTPUTS = FastSnapshotSpec.check_outputs


# ----------------------------------------------------------------------
# Claim-B search on the packed representation
# ----------------------------------------------------------------------

@dataclass
class FastAtomicityHit:
    """A claim-B counterexample found by the fast search.

    ``schedule`` is a list of ``(pid, local_register_or_None)`` steps:
    a local register index for a write step, ``None`` for the (unique)
    scan read.  :meth:`to_ops` lifts it to replayable simulator ops.
    """

    pid: int
    output: frozenset
    schedule: List[Tuple[int, Optional[int]]]

    def to_ops(self, machine) -> List[Tuple[int, object]]:
        """Translate into (pid, Op) pairs against ``machine`` states.

        Replays the schedule symbolically: for a write step the recorded
        local register selects among the machine's enabled writes; for a
        read step the machine's single enabled read is taken.
        """
        from repro.sim.ops import Read, Write

        ops: List[Tuple[int, object]] = []
        for pid, reg in self.schedule:
            if reg is None:
                ops.append((pid, None))  # resolved during replay
            else:
                ops.append((pid, reg))
        return ops


class FastAtomicitySearch:
    """DFS/BFS hunt for outputs the memory never contained.

    Augments each packed state with a bitmask over the (at most
    ``2^K``) possible memory unions seen along the path; a processor
    terminating with a view whose union-bit is unset witnesses the
    paper's Section 8 claim.  The DFS keeps the current path on its
    frame stack, so hits come with a full replayable schedule.
    """

    def __init__(self, spec: FastSnapshotSpec) -> None:
        if spec.k > 16:
            raise ValueError("union bitmask supports at most 16 distinct inputs")
        self.spec = spec
        self._state_bits = (
            spec.local_offsets[-1] + spec.local_bits
        )

    # -- helpers ---------------------------------------------------------
    def memory_union_mask(self, state: int) -> int:
        spec = self.spec
        union = 0
        for offset in spec.reg_offsets:
            union |= (state >> offset) & spec.k_mask
        return union

    def successors_with_actions(
        self, state: int
    ) -> List[Tuple[int, Optional[int], int]]:
        """Like ``successors`` but tagging each step with the local
        register written (or None for a read)."""
        spec = self.spec
        result: List[Tuple[int, Optional[int], int]] = []
        for pid in range(spec.n):
            offset = spec.local_offsets[pid]
            local = (state >> offset) & spec.local_mask
            phase = (local >> spec.o_phase) & 3
            if phase == _PHASE_DONE:
                continue
            if phase == _PHASE_WRITE:
                view = local & spec.k_mask
                level = (local >> spec.o_level) & spec.lv_mask
                unwritten = (local >> spec.o_unwritten) & spec.m_mask
                record = view | (level << spec.k)
                for reg in range(spec.m):
                    if not (unwritten >> reg) & 1:
                        continue
                    remaining = unwritten & ~(1 << reg)
                    if remaining == 0:
                        remaining = spec.m_mask
                    new_local = spec.pack_local(
                        view, level, remaining, _PHASE_SCAN, 0, 1,
                        spec.ml_sentinel,
                    )
                    physical = spec.wiring[pid][reg]
                    reg_offset = spec.reg_offsets[physical]
                    new_state = (
                        state
                        & ~(spec.reg_mask << reg_offset)
                        & ~(spec.local_mask << offset)
                    ) | (record << reg_offset) | (new_local << offset)
                    result.append((pid, reg, new_state))
            else:
                result.append(
                    (pid, None, spec._apply_read(state, pid, local, offset))
                )
        return result

    # -- the search -------------------------------------------------------
    def dfs(
        self, max_visited: int = 5_000_000, shuffle_seed: Optional[int] = None
    ) -> Tuple[Optional[FastAtomicityHit], int]:
        """Depth-first hunt; returns ``(hit_or_None, states_visited)``."""
        import random as random_module

        spec = self.spec
        rng = (
            random_module.Random(shuffle_seed)
            if shuffle_seed is not None
            else None
        )
        shift = self._state_bits
        initial = spec.initial_state()
        start = initial | (
            (1 << self.memory_union_mask(initial)) << shift
        )
        state_mask = (1 << shift) - 1
        visited = {start}
        # Frame: (augmented state, successor list, next index); the
        # schedule stack mirrors the path.
        frames: List[List] = [[start, None, 0]]
        path: List[Tuple[int, Optional[int]]] = []

        while frames:
            frame = frames[-1]
            aug, successors, cursor = frame
            state = aug & state_mask
            seen_mask = aug >> shift
            if successors is None:
                successors = self.successors_with_actions(state)
                if rng is not None:
                    rng.shuffle(successors)
                frame[1] = successors
            if cursor >= len(successors):
                frames.pop()
                if path:
                    path.pop()
                continue
            frame[2] = cursor + 1
            pid, action, new_state = successors[cursor]
            union_bit = 1 << self.memory_union_mask(new_state)
            new_seen = seen_mask | union_bit
            # Termination check: did pid just finish?
            if spec.done(new_state, pid) and not spec.done(state, pid):
                view = spec.view_of(new_state, pid)
                if not (new_seen >> view) & 1:
                    output = frozenset(
                        spec.bit_values[b]
                        for b in range(spec.k)
                        if (view >> b) & 1
                    )
                    return (
                        FastAtomicityHit(
                            pid=pid,
                            output=output,
                            schedule=path + [(pid, action)],
                        ),
                        len(visited),
                    )
            new_aug = new_state | (new_seen << shift)
            if new_aug in visited:
                continue
            if len(visited) >= max_visited:
                return None, len(visited)
            visited.add(new_aug)
            frames.append([new_aug, None, 0])
            path.append((pid, action))
        return None, len(visited)


def replay_fast_hit(machine, inputs, wiring_perms, hit) -> Tuple[dict, bool]:
    """Independently replay a :class:`FastAtomicityHit` on the generic
    machine; returns ``(outputs, union_never_matched)``."""
    from repro.checker.atomicity import memory_union
    from repro.checker.system import SystemSpec
    from repro.memory.wiring import WiringAssignment
    from repro.sim.ops import Read, Write

    wiring = WiringAssignment.from_permutations(wiring_perms)
    spec = SystemSpec(machine, inputs, wiring)
    state = spec.initial_state()
    unions = {memory_union(state)}
    for pid, reg in hit.schedule:
        local = state.locals[pid]
        ops = machine.enabled_ops(local)
        if reg is None:
            (op,) = [o for o in ops if isinstance(o, Read)]
        else:
            (op,) = [o for o in ops if isinstance(o, Write) and o.reg == reg]
        _, state = spec.apply(state, pid, op)
        unions.add(memory_union(state))
    outputs = spec.outputs(state)
    return outputs, hit.output not in unions


# ----------------------------------------------------------------------
# Wiring enumeration with configuration symmetry reduction
# ----------------------------------------------------------------------

def canonical_wiring_classes(
    n_processors: int, n_registers: int
) -> List[Tuple[Tuple[int, ...], ...]]:
    """Wiring assignments up to register relabelling and processor
    permutation.

    Two assignments are equivalent when one is obtained from the other
    by (a) composing every wiring with a common physical relabelling
    and/or (b) permuting the processors.  Both operations induce
    isomorphisms of the reachable state graph (processors are anonymous
    and the checked properties are invariant under renaming their
    inputs), so exploring one representative per class is exhaustive.
    """
    perms = [tuple(perm) for perm in itertools.permutations(range(n_registers))]
    inverse = {
        perm: tuple(sorted(range(n_registers), key=lambda i: perm[i]))
        for perm in perms
    }

    def compose(outer: Tuple[int, ...], inner: Tuple[int, ...]) -> Tuple[int, ...]:
        return tuple(outer[inner[i]] for i in range(n_registers))

    seen: Set[Tuple[Tuple[int, ...], ...]] = set()
    classes: List[Tuple[Tuple[int, ...], ...]] = []
    for assignment in itertools.product(perms, repeat=n_processors):
        candidates = []
        for processor_order in itertools.permutations(range(n_processors)):
            reordered = tuple(assignment[p] for p in processor_order)
            relabel = inverse[reordered[0]]
            candidates.append(
                tuple(compose(relabel, wiring) for wiring in reordered)
            )
        canonical = min(candidates)
        if canonical not in seen:
            seen.add(canonical)
            classes.append(canonical)
    return classes
