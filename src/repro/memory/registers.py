"""Multi-writer multi-reader atomic registers.

The paper's model (Section 2) provides ``M > 0`` shared MWMR atomic
registers.  Reads and writes are atomic: each read or write of a single
register is one indivisible step.  :class:`RegisterArray` models the bank
of *physical* registers; anonymity (the per-processor permutations) is
layered on top by :class:`repro.memory.memory.AnonymousMemory`.

Besides the contents, the array tracks, per register:

- the identifier of the *last writer* (``None`` until first written),
  which is metadata used only by analysis and proofs — it is never
  exposed to algorithms (processors are anonymous and could not use it);
- a monotonically increasing *version* counter, used by tests and the
  trace tooling to distinguish two writes of equal values.

Register values must be hashable so that global system states can be
hashed for lasso detection and model checking.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, Optional, Sequence, Tuple


class RegisterArray:
    """A bank of ``size`` MWMR atomic registers.

    Parameters
    ----------
    size:
        Number of registers, the paper's ``M``.  Must be positive.
    initial_value:
        The "known default value" every register holds initially
        (Section 2: "All registers initially contain a known default
        value").  Must be hashable.
    """

    __slots__ = ("_values", "_last_writers", "_versions", "_initial_value")

    def __init__(self, size: int, initial_value: Hashable = None) -> None:
        if size <= 0:
            raise ValueError(f"register array size must be positive, got {size}")
        self._initial_value = initial_value
        self._values: list[Any] = [initial_value] * size
        self._last_writers: list[Optional[int]] = [None] * size
        self._versions: list[int] = [0] * size

    # ------------------------------------------------------------------
    # Core atomic operations (physical indices)
    # ------------------------------------------------------------------
    def read(self, physical_index: int) -> Any:
        """Atomically read the register at ``physical_index``."""
        return self._values[physical_index]

    def write(self, physical_index: int, value: Hashable, writer: Optional[int] = None) -> None:
        """Atomically write ``value`` to the register at ``physical_index``.

        ``writer`` is analysis-only metadata identifying the writing
        processor; it does not affect the register contents.
        """
        hash(value)  # enforce hashability early, with a clear failure site
        self._values[physical_index] = value
        self._last_writers[physical_index] = writer
        self._versions[physical_index] += 1

    # ------------------------------------------------------------------
    # Metadata and inspection (never exposed to algorithms)
    # ------------------------------------------------------------------
    def last_writer(self, physical_index: int) -> Optional[int]:
        """Return the id of the processor that last wrote the register.

        ``None`` means the register still holds its initial value.  This
        supports the paper's "processor p reads *from* processor q"
        relation (Section 2), which is central to the stable-view
        analysis of Section 4.
        """
        return self._last_writers[physical_index]

    def version(self, physical_index: int) -> int:
        """Return the number of writes applied to the register so far."""
        return self._versions[physical_index]

    @property
    def size(self) -> int:
        """Number of registers in the bank."""
        return len(self._values)

    @property
    def initial_value(self) -> Any:
        """The default value all registers started with."""
        return self._initial_value

    def snapshot(self) -> Tuple[Any, ...]:
        """Return the current contents of all registers as a tuple.

        This is a *meta-level* atomic snapshot used by analysis code and
        the atomicity experiments (E5); the whole point of the paper is
        that processors inside the model cannot obtain it.
        """
        return tuple(self._values)

    def last_writers(self) -> Tuple[Optional[int], ...]:
        """Return the last-writer metadata of all registers as a tuple."""
        return tuple(self._last_writers)

    def registers_last_written_by(self, processors: Sequence[int]) -> Tuple[int, ...]:
        """Physical indices of registers last written by one of ``processors``.

        Used to evaluate the covering lemmas of Section 4 (e.g. the set
        ``R_t^{A-bar}`` of Lemma 4.6) on concrete executions.
        """
        wanted = set(processors)
        return tuple(
            index
            for index, writer in enumerate(self._last_writers)
            if writer in wanted
        )

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cells = ", ".join(repr(value) for value in self._values)
        return f"RegisterArray([{cells}])"
