"""The anonymous shared memory: registers + wiring + trace, combined.

:class:`AnonymousMemory` is the only interface through which simulated
processors touch shared state.  All its methods take *local* register
indices; the wiring permutation of the calling processor is applied
internally.  This makes memory anonymity structural: algorithm code has
no way to name a physical register.
"""

from __future__ import annotations

from typing import Any, Hashable, Optional, Tuple

from repro.memory.registers import RegisterArray
from repro.memory.trace import OutputEvent, ReadEvent, Trace, WriteEvent
from repro.memory.wiring import WiringAssignment


class AnonymousMemory:
    """A wired, traced register bank.

    Parameters
    ----------
    wiring:
        The per-processor wiring assignment (fixed at initialization,
        per Section 2 of the paper).
    initial_value:
        The known default value held by all registers initially.
    """

    def __init__(
        self, wiring: WiringAssignment, initial_value: Hashable = None
    ) -> None:
        self._wiring = wiring
        self._registers = RegisterArray(wiring.n_registers, initial_value)
        self._trace = Trace()
        self._clock = 0

    # ------------------------------------------------------------------
    # Operations available to processors (local indices only)
    # ------------------------------------------------------------------
    def read(self, pid: int, local_index: int) -> Any:
        """Processor ``pid`` atomically reads its local register ``local_index``."""
        physical = self._wiring[pid].to_physical(local_index)
        value = self._registers.read(physical)
        self._trace.append(
            ReadEvent(
                time=self._clock,
                pid=pid,
                local_index=local_index,
                physical_index=physical,
                value=value,
                read_from=self._registers.last_writer(physical),
            )
        )
        self._clock += 1
        return value

    def write(self, pid: int, local_index: int, value: Hashable) -> None:
        """Processor ``pid`` atomically writes its local register ``local_index``."""
        physical = self._wiring[pid].to_physical(local_index)
        self._trace.append(
            WriteEvent(
                time=self._clock,
                pid=pid,
                local_index=local_index,
                physical_index=physical,
                value=value,
                overwritten=self._registers.read(physical),
                overwrote=self._registers.last_writer(physical),
            )
        )
        self._registers.write(physical, value, writer=pid)
        self._clock += 1

    def record_output(self, pid: int, value: Any) -> None:
        """Record processor ``pid``'s write-once output step."""
        self._trace.append(OutputEvent(time=self._clock, pid=pid, value=value))
        self._clock += 1

    # ------------------------------------------------------------------
    # Meta-level inspection (analysis only; not visible to algorithms)
    # ------------------------------------------------------------------
    @property
    def n_registers(self) -> int:
        return self._registers.size

    @property
    def n_processors(self) -> int:
        return self._wiring.n_processors

    @property
    def wiring(self) -> WiringAssignment:
        return self._wiring

    @property
    def trace(self) -> Trace:
        return self._trace

    @property
    def clock(self) -> int:
        """Global time: number of recorded events so far."""
        return self._clock

    def snapshot(self) -> Tuple[Any, ...]:
        """Meta-level atomic snapshot of the physical register contents."""
        return self._registers.snapshot()

    def last_writer(self, physical_index: int) -> Optional[int]:
        return self._registers.last_writer(physical_index)

    def last_writers(self) -> Tuple[Optional[int], ...]:
        return self._registers.last_writers()

    def registers_last_written_by(self, processors) -> Tuple[int, ...]:
        return self._registers.registers_last_written_by(processors)
