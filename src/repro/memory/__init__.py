"""Fully-anonymous shared-memory substrate.

This package implements the memory model of Section 2 of the paper:

- a bank of ``M`` multi-writer multi-reader (MWMR) atomic registers
  (:class:`~repro.memory.registers.RegisterArray`),
- per-processor *wiring* permutations ``sigma_p`` that translate the
  private, local register numbering of each processor into physical
  register indices (:class:`~repro.memory.wiring.Wiring`,
  :class:`~repro.memory.wiring.WiringAssignment`),
- the combination of the two, :class:`~repro.memory.memory.AnonymousMemory`,
  which is the only interface algorithms are given — algorithms can never
  observe physical indices, which is what *memory anonymity* means,
- an event log (:mod:`repro.memory.trace`) recording every atomic step
  with both local and physical coordinates, enabling the "reads from"
  analysis of Section 2 and the replay/verification tooling.
"""

from repro.memory.memory import AnonymousMemory
from repro.memory.registers import RegisterArray
from repro.memory.trace import OutputEvent, ReadEvent, Trace, WriteEvent
from repro.memory.wiring import Wiring, WiringAssignment

__all__ = [
    "AnonymousMemory",
    "RegisterArray",
    "Wiring",
    "WiringAssignment",
    "Trace",
    "ReadEvent",
    "WriteEvent",
    "OutputEvent",
]
