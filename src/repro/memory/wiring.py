"""Wiring permutations: the formalization of memory anonymity.

Section 2 of the paper: "for each processor ``p``, there is a permutation
``sigma_p`` of ``1..M``, unknown to the processors (including ``p``) and
fixed arbitrarily at initialization, such that a read or write
instruction by processor ``p`` of register number ``i`` reads or writes,
respectively, register ``register[sigma_p[i]]``".

We use 0-based indices throughout.  A :class:`Wiring` is one processor's
permutation; a :class:`WiringAssignment` fixes the wiring of every
processor in the system and is part of the (meta-level) initial state of
an execution.

The module also provides the enumeration and canonicalization helpers
used by the model checker: because physical registers can be relabelled
arbitrarily without changing the behaviour of any algorithm (only the
*relative* wiring of processors matters), it suffices to explore wiring
assignments in which processor 0's wiring is the identity.  This is the
symmetry reduction announced in DESIGN.md.
"""

from __future__ import annotations

import itertools
import random
from typing import Hashable, Iterable, Iterator, List, Optional, Sequence, Tuple


class Wiring:
    """A single processor's register permutation ``sigma_p`` (0-based).

    ``wiring.to_physical(i)`` maps the processor's private register
    number ``i`` to the physical register it actually touches.
    """

    __slots__ = ("_perm", "_inverse")

    def __init__(self, permutation: Sequence[int]) -> None:
        perm = tuple(permutation)
        if sorted(perm) != list(range(len(perm))):
            raise ValueError(
                f"not a permutation of 0..{len(perm) - 1}: {permutation!r}"
            )
        self._perm = perm
        inverse = [0] * len(perm)
        for local, physical in enumerate(perm):
            inverse[physical] = local
        self._inverse = tuple(inverse)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, size: int) -> "Wiring":
        """The identity wiring on ``size`` registers."""
        return cls(tuple(range(size)))

    @classmethod
    def rotation(cls, size: int, shift: int) -> "Wiring":
        """The cyclic wiring mapping local ``i`` to physical ``(i + shift) % size``.

        Figure 2 of the paper is realized with rotation wirings (see
        :mod:`repro.sim.scripted`).
        """
        return cls(tuple((i + shift) % size for i in range(size)))

    @classmethod
    def shuffled(cls, size: int, rng: random.Random) -> "Wiring":
        """A uniformly random wiring drawn from ``rng``."""
        perm = list(range(size))
        rng.shuffle(perm)
        return cls(perm)

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def to_physical(self, local_index: int) -> int:
        """Translate a processor-local register number to a physical index."""
        return self._perm[local_index]

    def to_local(self, physical_index: int) -> int:
        """Translate a physical register index to the processor-local number."""
        return self._inverse[physical_index]

    @property
    def permutation(self) -> Tuple[int, ...]:
        """The underlying permutation as a tuple (local -> physical)."""
        return self._perm

    @property
    def size(self) -> int:
        return len(self._perm)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Wiring):
            return NotImplemented
        return self._perm == other._perm

    def __hash__(self) -> int:
        return hash(self._perm)

    def __repr__(self) -> str:
        return f"Wiring({list(self._perm)!r})"


class WiringAssignment:
    """The wiring of every processor in the system.

    This is the adversarially-chosen, hidden part of the initial state
    (Section 2, execution condition (1): "processors' permutations and
    inputs are arbitrary").
    """

    __slots__ = ("_wirings",)

    def __init__(self, wirings: Sequence[Wiring]) -> None:
        if not wirings:
            raise ValueError("a wiring assignment needs at least one processor")
        sizes = {wiring.size for wiring in wirings}
        if len(sizes) != 1:
            raise ValueError(f"inconsistent register counts across wirings: {sizes}")
        self._wirings = tuple(wirings)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def identity(cls, n_processors: int, n_registers: int) -> "WiringAssignment":
        """All processors wired identically (the non-anonymous-memory case)."""
        return cls([Wiring.identity(n_registers)] * n_processors)

    @classmethod
    def random(
        cls, n_processors: int, n_registers: int, rng: random.Random
    ) -> "WiringAssignment":
        """Independent uniformly random wiring per processor."""
        return cls([Wiring.shuffled(n_registers, rng) for _ in range(n_processors)])

    @classmethod
    def from_permutations(
        cls, permutations: Iterable[Sequence[int]]
    ) -> "WiringAssignment":
        """Build an assignment from raw permutation sequences."""
        return cls([Wiring(perm) for perm in permutations])

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def wiring_of(self, pid: int) -> Wiring:
        """The wiring of processor ``pid``."""
        return self._wirings[pid]

    def __getitem__(self, pid: int) -> Wiring:
        return self._wirings[pid]

    def __len__(self) -> int:
        return len(self._wirings)

    def __iter__(self) -> Iterator[Wiring]:
        return iter(self._wirings)

    @property
    def n_processors(self) -> int:
        return len(self._wirings)

    @property
    def n_registers(self) -> int:
        return self._wirings[0].size

    def permutations(self) -> Tuple[Tuple[int, ...], ...]:
        """All permutations as a tuple of tuples (hashable form)."""
        return tuple(wiring.permutation for wiring in self._wirings)

    def canonicalize(self) -> "WiringAssignment":
        """Relabel physical registers so processor 0's wiring is the identity.

        Composing every wiring with the inverse of processor 0's wiring
        is a pure relabelling of the physical registers, which no
        algorithm in the model can observe.  The canonical form is what
        the model checker enumerates (DESIGN.md, symmetry reduction).
        """
        base = self._wirings[0]
        relabelled = [
            Wiring(tuple(base.to_local(wiring.to_physical(i)) for i in range(wiring.size)))
            for wiring in self._wirings
        ]
        return WiringAssignment(relabelled)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WiringAssignment):
            return NotImplemented
        return self._wirings == other._wirings

    def __hash__(self) -> int:
        return hash(self._wirings)

    def __repr__(self) -> str:
        return f"WiringAssignment({[list(w.permutation) for w in self._wirings]!r})"


def wiring_stabilizer(
    permutations: Sequence[Sequence[int]],
    inputs: Optional[Sequence[Hashable]] = None,
) -> List[Tuple[Tuple[int, ...], Tuple[int, ...]]]:
    """The automorphism group of one wiring assignment's state graph.

    A pair ``(pi, rho)`` — a processor permutation and a physical
    register relabelling — is a symmetry of the transition system
    induced by a *fixed* wiring assignment exactly when relabelling the
    registers by ``rho`` and letting position ``p`` run (anonymous)
    processor ``pi[p]`` reproduces the same assignment::

        sigma_p = rho . sigma_{pi[p]}      for every p

    (processor ``pi[p]``'s accesses, relabelled by ``rho``, are then
    indistinguishable from processor ``p``'s — the code is identical,
    which is the model's defining anonymity).  ``rho`` is forced by
    ``pi`` (``rho = sigma_0 . sigma_{pi[0]}^{-1}``), so the group has
    order at most ``N!``; it is the stabilizer, inside the
    processor-permutation x register-relabelling product quotiented by
    :func:`repro.checker.fast_snapshot.canonical_wiring_classes`, of
    this particular assignment.

    With ``inputs`` given, ``pi`` must additionally induce a
    well-defined *bijective* renaming of the input values
    (``inputs[pi[p]] == inputs[pi[q]]`` iff ``inputs[p] == inputs[q]``)
    — the renaming under which the checked properties must be invariant
    for the quotient exploration to be sound.

    Returns the group as a list of ``(pi, rho)`` tuples (local->local
    and physical->physical maps); the identity pair is always first.
    """
    sigmas = [tuple(perm) for perm in permutations]
    n = len(sigmas)
    if n == 0:
        raise ValueError("a wiring assignment needs at least one processor")
    m = len(sigmas[0])
    inverses = {
        sigma: tuple(sorted(range(m), key=lambda i: sigma[i]))
        for sigma in set(sigmas)
    }
    elements: List[Tuple[Tuple[int, ...], Tuple[int, ...]]] = []
    for pi in itertools.permutations(range(n)):
        if inputs is not None and not all(
            (inputs[pi[p]] == inputs[pi[q]]) == (inputs[p] == inputs[q])
            for p in range(n)
            for q in range(p + 1, n)
        ):
            continue
        base_inverse = inverses[sigmas[pi[0]]]
        rho = tuple(sigmas[0][base_inverse[r]] for r in range(m))
        if all(
            tuple(rho[sigmas[pi[p]][i]] for i in range(m)) == sigmas[p]
            for p in range(1, n)
        ):
            elements.append((pi, rho))
    # The identity is always a member; surface it first for callers
    # that special-case it (canonicalizers skip re-applying it).
    identity = (tuple(range(n)), tuple(range(m)))
    elements.remove(identity)
    elements.insert(0, identity)
    return elements


def enumerate_wiring_assignments(
    n_processors: int, n_registers: int, fix_first_identity: bool = True
) -> Iterator[WiringAssignment]:
    """Enumerate wiring assignments, optionally modulo register relabelling.

    With ``fix_first_identity`` (the default), processor 0 is pinned to
    the identity wiring and the remaining processors range over all
    ``(M!)^(N-1)`` permutations; every assignment is equivalent (up to a
    physical relabelling that no algorithm can observe) to exactly one
    enumerated here.  With ``fix_first_identity=False`` the full
    ``(M!)^N`` space is produced, which tests use to validate the
    symmetry reduction itself.
    """
    all_perms = [tuple(perm) for perm in itertools.permutations(range(n_registers))]
    if fix_first_identity:
        first_choices = [tuple(range(n_registers))]
    else:
        first_choices = all_perms
    rest = [all_perms] * (n_processors - 1)
    for first in first_choices:
        for combo in itertools.product(*rest):
            yield WiringAssignment.from_permutations((first, *combo))
