"""Execution traces: the event-level record of an execution.

An execution in the paper (Section 2) is a sequence of atomic steps.  The
simulator records one event per shared-memory step plus one per output
step, in global time order.  Events carry *both* the local register
number the processor used and the physical register actually touched, so
analysis code can reason at either level while algorithms themselves only
ever saw the local one.

The :class:`Trace` container offers the queries the paper's analysis
needs:

- the "reads from" relation (``p`` reads from ``q`` at time ``t`` when
  the register ``p`` reads was last written by ``q`` — Section 2),
- the memory contents at any time (for the atomicity experiments E5),
- per-processor step accounting (for the complexity benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class ReadEvent:
    """One atomic read step."""

    time: int
    pid: int
    local_index: int
    physical_index: int
    value: Any
    #: Processor whose write the read returned (None = initial value),
    #: i.e. the paper's "reads from" relation.
    read_from: Optional[int]


@dataclass(frozen=True)
class WriteEvent:
    """One atomic write step."""

    time: int
    pid: int
    local_index: int
    physical_index: int
    value: Any
    #: Value the register held just before this write.
    overwritten: Any
    #: Processor whose write was overwritten (None = initial value).
    overwrote: Optional[int]


@dataclass(frozen=True)
class OutputEvent:
    """A processor writing its write-once output and terminating."""

    time: int
    pid: int
    value: Any


Event = Union[ReadEvent, WriteEvent, OutputEvent]


class Trace:
    """An append-only, queryable log of execution events."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def append(self, event: Event) -> None:
        self._events.append(event)

    # ------------------------------------------------------------------
    # Basic access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    @property
    def events(self) -> Sequence[Event]:
        return tuple(self._events)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def events_of(self, pid: int) -> List[Event]:
        """All events of processor ``pid`` in time order."""
        return [event for event in self._events if event.pid == pid]

    def reads(self) -> List[ReadEvent]:
        return [event for event in self._events if isinstance(event, ReadEvent)]

    def writes(self) -> List[WriteEvent]:
        return [event for event in self._events if isinstance(event, WriteEvent)]

    def outputs(self) -> List[OutputEvent]:
        return [event for event in self._events if isinstance(event, OutputEvent)]

    def step_counts(self) -> Dict[int, int]:
        """Number of shared-memory steps (reads + writes) per processor."""
        counts: Dict[int, int] = {}
        for event in self._events:
            if isinstance(event, (ReadEvent, WriteEvent)):
                counts[event.pid] = counts.get(event.pid, 0) + 1
        return counts

    def participants(self) -> Tuple[int, ...]:
        """Processors that took at least one step (the paper's participation)."""
        seen = sorted({event.pid for event in self._events})
        return tuple(seen)

    def reads_from_pairs(self) -> List[Tuple[int, Optional[int], int]]:
        """The "reads from" relation as ``(reader, writer, time)`` triples.

        ``writer`` is ``None`` for reads of a register still holding its
        initial value.
        """
        return [
            (event.pid, event.read_from, event.time)
            for event in self._events
            if isinstance(event, ReadEvent)
        ]

    def reads_from(self, reader: int, writers: Sequence[int]) -> bool:
        """Whether ``reader`` ever reads from a member of ``writers``.

        This is the predicate used throughout Section 4 ("a processor
        ``p`` reads from a set of processors ``Q``").
        """
        wanted = set(writers)
        return any(
            event.read_from in wanted
            for event in self._events
            if isinstance(event, ReadEvent) and event.pid == reader
        )

    def memory_history(
        self, n_registers: int, initial_value: Any = None
    ) -> List[Tuple[Any, ...]]:
        """Reconstruct the register contents after every event.

        Returns a list with one register-bank tuple per time point,
        starting with the initial contents (index 0 = before any step).
        Used by the atomicity experiments (E5) to ask whether the memory
        ever contained exactly a given set of inputs.
        """
        contents = [initial_value] * n_registers
        history: List[Tuple[Any, ...]] = [tuple(contents)]
        for event in self._events:
            if isinstance(event, WriteEvent):
                contents[event.physical_index] = event.value
            history.append(tuple(contents))
        return history

    def format_table(self) -> str:
        """Human-readable rendering of the trace, one event per line."""
        lines = []
        for event in self._events:
            if isinstance(event, ReadEvent):
                source = "init" if event.read_from is None else f"p{event.read_from}"
                lines.append(
                    f"t={event.time:4d}  p{event.pid} reads  r{event.physical_index}"
                    f" (local {event.local_index}) -> {event.value!r} [from {source}]"
                )
            elif isinstance(event, WriteEvent):
                lines.append(
                    f"t={event.time:4d}  p{event.pid} writes r{event.physical_index}"
                    f" (local {event.local_index}) := {event.value!r}"
                    f" (was {event.overwritten!r})"
                )
            else:
                lines.append(f"t={event.time:4d}  p{event.pid} outputs {event.value!r}")
        return "\n".join(lines)
