"""Periodic progress for long runs: the observability the service streams.

A :class:`Heartbeat` is a tiny duck-typed sink the exploration engines
tick as they run — once per admitted state in the scalar loops, once
per level/round in the batch and sharded drivers.  Every ``every_s``
seconds it emits one line::

    [heartbeat] t=63s states=1203456 (+90123, 30041/s) frontier=4521 transitions=5602341 rss=87.4MiB

``repro check --heartbeat SECS`` wires one up for local runs; the
service coordinator builds the same numbers from per-worker ``ping``
replies instead (see :mod:`repro.service.coordinator`), so a local run
and a watched job read identically.

The tick path is deliberately branch-cheap (one clock probe and a
subtraction when the interval has not elapsed) so engines can call it
unconditionally inside hot loops.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional


def current_rss_bytes() -> int:
    """Resident set size of this process in bytes (0 when unknowable).

    Prefers the *current* RSS from ``/proc/self/status`` (Linux); falls
    back to ``ru_maxrss`` (the peak, close enough for trend lines) on
    platforms without procfs.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - exotic platforms
        return 0


def format_bytes(n: int) -> str:
    """``87.4MiB``-style rendering (heartbeat lines and worker tables)."""
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024.0 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024.0
    return f"{value:.1f}GiB"  # pragma: no cover - unreachable


class Heartbeat:
    """Emit one progress line every ``every_s`` seconds of run time.

    ``emit`` receives the formatted line (default: stderr, so progress
    never pollutes parseable stdout output); ``clock`` is a test seam
    (monotonic seconds).  ``tick`` takes the run's *cumulative* states
    and transitions plus the instantaneous frontier size; the rate is
    computed over the interval since the previous line.
    """

    def __init__(
        self,
        every_s: float,
        emit: Optional[Callable[[str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
        label: str = "",
    ) -> None:
        if every_s <= 0:
            raise ValueError(f"heartbeat interval must be positive: {every_s}")
        self.every_s = float(every_s)
        self.label = label
        self._emit = emit if emit is not None else self._emit_stderr
        self._clock = clock
        self._start = clock()
        self._last = self._start
        self._last_states = 0
        self.lines = 0

    @staticmethod
    def _emit_stderr(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    def tick(self, states: int, frontier: int = 0, transitions: int = 0) -> None:
        now = self._clock()
        elapsed = now - self._last
        if elapsed < self.every_s:
            return
        delta = states - self._last_states
        rate = delta / elapsed if elapsed > 0 else 0.0
        prefix = f"[heartbeat{(' ' + self.label) if self.label else ''}]"
        self._emit(
            f"{prefix} t={now - self._start:.0f}s states={states}"
            f" (+{delta}, {rate:.0f}/s) frontier={frontier}"
            f" transitions={transitions}"
            f" rss={format_bytes(current_rss_bytes())}"
        )
        self._last = now
        self._last_states = states
        self.lines += 1
