"""Client-side transport: talk to a coordinator from code or the CLI.

:class:`ServiceClient` is a small synchronous client over
:class:`~repro.service.protocol.SyncFrameIO` — one ``hello``/``welcome``
handshake, then request/response.  ``repro submit/status/result/cancel``
are thin wrappers around it, and tests/benchmarks drive it directly.

:func:`discover_endpoint` reads the ``endpoint.json`` a coordinator
writes into its state directory on startup, so local tooling can find a
coordinator started with ``--port 0`` without scraping its output.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.service.jobs import JobRecord, JobSpec
from repro.service.protocol import ProtocolError, SyncFrameIO


class ServiceError(RuntimeError):
    """The coordinator refused a request (its error message verbatim)."""


def discover_endpoint(state_dir: Path) -> Tuple[str, int]:
    """The (host, port) a coordinator on ``state_dir`` listens on."""
    path = Path(state_dir) / "endpoint.json"
    if not path.exists():
        raise ServiceError(
            f"no coordinator endpoint under {state_dir} — is"
            " `repro serve` running with this --state-dir?"
        )
    loaded = json.loads(path.read_text())
    return str(loaded["host"]), int(loaded["port"])


class ServiceClient:
    """One connected client session against a coordinator."""

    def __init__(self, host: str, port: int, timeout: float = 30.0) -> None:
        sock = socket.create_connection((host, port), timeout=timeout)
        sock.settimeout(None)
        self._io = SyncFrameIO(sock)
        self._io.send({"type": "hello", "role": "client", "name": "cli"})
        welcome, _ = self._io.recv()
        if welcome.get("type") != "welcome":
            raise ProtocolError(f"expected welcome, got {welcome!r}")

    @classmethod
    def for_state_dir(
        cls, state_dir: Path, timeout: float = 30.0
    ) -> "ServiceClient":
        host, port = discover_endpoint(state_dir)
        return cls(host, port, timeout=timeout)

    def close(self) -> None:
        self._io.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _request(
        self, header: Dict[str, Any], expect: str
    ) -> Dict[str, Any]:
        self._io.send(header)
        reply, _ = self._io.recv()
        if reply.get("type") == "error":
            raise ServiceError(str(reply.get("message")))
        if reply.get("type") != expect:
            raise ProtocolError(
                f"expected a {expect!r} reply, got {reply.get('type')!r}"
            )
        return reply

    # -- the job API ---------------------------------------------------

    def submit(self, spec: JobSpec) -> str:
        reply = self._request(
            {"type": "submit", "spec": spec.to_dict()}, "submitted"
        )
        return str(reply["job_id"])

    def status(self, job_id: Optional[str] = None) -> Dict[str, Any]:
        header: Dict[str, Any] = {"type": "status"}
        if job_id is not None:
            header["job_id"] = job_id
        return self._request(header, "status")

    def job(self, job_id: str) -> JobRecord:
        reply = self._request(
            {"type": "result", "job_id": job_id}, "result"
        )
        return JobRecord.from_dict(dict(reply["job"]))

    def cancel(self, job_id: str) -> JobRecord:
        reply = self._request(
            {"type": "cancel", "job_id": job_id}, "cancelled"
        )
        return JobRecord.from_dict(dict(reply["job"]))

    def workers(self) -> List[Dict[str, Any]]:
        reply = self._request({"type": "workers"}, "workers")
        return list(reply["workers"])

    def watch(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """Stream progress events until the job finishes.

        Yields the coordinator's ``progress`` frames and finally the
        ``end`` frame (whose ``job`` field is the finished record).
        This consumes the connection; use a fresh client afterwards.
        """
        self._io.send({"type": "watch", "job_id": job_id})
        while True:
            reply, _ = self._io.recv()
            if reply.get("type") == "error":
                raise ServiceError(str(reply.get("message")))
            yield reply
            if reply.get("type") == "end":
                return

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_s: float = 0.2,
    ) -> JobRecord:
        """Poll until the job reaches a terminal state; the record."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.job(job_id)
            if record.done:
                return record
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"{job_id} still {record.state} after {timeout}s"
                )
            time.sleep(poll_s)
