"""Length-framed wire protocol of the distributed checking service.

One frame carries a small JSON header plus zero or more binary u64
payloads::

    u32 big-endian  total header length H
    H bytes         UTF-8 JSON object; the reserved key ``"#payloads"``
                    lists the word counts of the payloads that follow
    payloads        count × 8 bytes each, u64 little-endian

The payloads reuse the sharded engine's wire format verbatim: each word
is ``(state << 1) | canonical_bit`` (see
:class:`repro.checker.parallel.ShardEngine`), so a frontier batch that
crossed a multiprocessing pipe in PR 4 crosses a TCP socket here as the
same bits.  Checkpoint visited-set dumps travel the same way (plain
keys, no canonical bit).  Headers are JSON rather than pickle on
purpose: the coordinator must never unpickle data from the network.

Why little-endian on the wire: every word is byteswapped explicitly on
big-endian hosts (``sys.byteorder``), so heterogeneous worker fleets
agree; on the overwhelmingly common little-endian hosts the swap is a
no-op and payloads are zero-copy ``array('Q')`` casts.

Both transports live here: :class:`SyncFrameIO` wraps a blocking socket
(workers, CLI clients) and :func:`read_frame`/:func:`write_frame` the
asyncio streams (coordinator).  Size limits guard both directions — a
malformed or hostile peer cannot make either side allocate unbounded
memory.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import sys
from array import array
from typing import Any, Dict, List, Sequence, Tuple

#: Upper bound on one frame's JSON header (job specs and per-shard
#: statistics are far below this; 16 MiB catches stream corruption).
MAX_HEADER_BYTES = 16 * 1024 * 1024

#: Upper bound on one payload, in u64 words (1 GiB).  Frontier rounds
#: and visited dumps beyond this must be split by the sender.
MAX_PAYLOAD_WORDS = (1024 * 1024 * 1024) // 8

_PAYLOADS_KEY = "#payloads"
_LEN = struct.Struct(">I")


class ProtocolError(Exception):
    """A malformed, oversized, or truncated frame."""


def payload_to_bytes(values: object) -> bytes:
    """Normalize one payload argument to little-endian u64 bytes.

    Accepts ``bytes`` (already wire-order), ``array('Q')``, numpy u64
    arrays (duck-typed so numpy stays a soft dependency), or any
    iterable of ints — the shapes the scalar and batch shard engines
    naturally produce.
    """
    if isinstance(values, (bytes, bytearray, memoryview)):
        data = bytes(values)
        if len(data) % 8:
            raise ProtocolError(
                f"binary payload length {len(data)} is not a"
                " multiple of 8"
            )
        return data
    if isinstance(values, array) and values.typecode == "Q":
        if sys.byteorder == "big":  # pragma: no cover - BE hosts only
            swapped = array("Q", values)
            swapped.byteswap()
            return swapped.tobytes()
        return values.tobytes()
    astype = getattr(values, "astype", None)
    if astype is not None:  # numpy array: force wire byte order
        converted = astype("<u8", copy=False)
        return bytes(converted.tobytes())
    if isinstance(values, Sequence) or hasattr(values, "__iter__"):
        words = array("Q", values)  # type: ignore[arg-type]
        if sys.byteorder == "big":  # pragma: no cover - BE hosts only
            words.byteswap()
        return words.tobytes()
    raise ProtocolError(f"unsupported payload type {type(values).__name__}")


def bytes_to_payload(data: bytes) -> "array[int]":
    """Wire bytes back to a native-order ``array('Q')``."""
    words = array("Q")
    words.frombytes(data)
    if sys.byteorder == "big":  # pragma: no cover - BE hosts only
        words.byteswap()
    return words


def encode_frame(
    header: Dict[str, Any], payloads: Sequence[object] = ()
) -> bytes:
    """One wire-ready frame: length + JSON header + u64 payloads."""
    if _PAYLOADS_KEY in header:
        raise ProtocolError(f"header key {_PAYLOADS_KEY!r} is reserved")
    blobs = [payload_to_bytes(payload) for payload in payloads]
    full = dict(header)
    full[_PAYLOADS_KEY] = [len(blob) // 8 for blob in blobs]
    encoded = json.dumps(full, separators=(",", ":")).encode("utf-8")
    if len(encoded) > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"header of {len(encoded)} bytes exceeds the"
            f" {MAX_HEADER_BYTES}-byte limit"
        )
    for blob in blobs:
        if len(blob) // 8 > MAX_PAYLOAD_WORDS:
            raise ProtocolError(
                f"payload of {len(blob) // 8} words exceeds the"
                f" {MAX_PAYLOAD_WORDS}-word limit"
            )
    return _LEN.pack(len(encoded)) + encoded + b"".join(blobs)


def decode_header(encoded: bytes) -> Tuple[Dict[str, Any], List[int]]:
    """Parse a frame's JSON header; returns (header, payload word counts)."""
    try:
        parsed = json.loads(encoded.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame header: {exc}") from None
    if not isinstance(parsed, dict):
        raise ProtocolError(
            f"frame header must be a JSON object, got {type(parsed).__name__}"
        )
    counts_raw = parsed.pop(_PAYLOADS_KEY, [])
    if not isinstance(counts_raw, list) or not all(
        isinstance(count, int) and 0 <= count <= MAX_PAYLOAD_WORDS
        for count in counts_raw
    ):
        raise ProtocolError(f"malformed {_PAYLOADS_KEY!r}: {counts_raw!r}")
    return parsed, [int(count) for count in counts_raw]


def _check_header_length(length: int) -> None:
    if length == 0 or length > MAX_HEADER_BYTES:
        raise ProtocolError(
            f"frame header length {length} outside"
            f" (0, {MAX_HEADER_BYTES}]"
        )


Frame = Tuple[Dict[str, Any], List["array[int]"]]


class SyncFrameIO:
    """Blocking frame transport over a connected socket (worker side).

    ``recv`` returns ``(header, payloads)`` with payloads as
    native-order ``array('Q')``; it raises :class:`ConnectionClosed` on
    clean EOF between frames and :class:`ProtocolError` on a mid-frame
    truncation (the difference matters: the former is a peer leaving,
    the latter a corrupted stream).
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock

    def _read_exact(self, count: int, *, start_of_frame: bool) -> bytes:
        chunks: List[bytes] = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(min(remaining, 1 << 20))
            if not chunk:
                if start_of_frame and remaining == count:
                    raise ConnectionClosed("peer closed the connection")
                raise ProtocolError(
                    f"stream truncated {remaining} bytes before the end"
                    " of a frame"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def send(
        self, header: Dict[str, Any], payloads: Sequence[object] = ()
    ) -> None:
        self._sock.sendall(encode_frame(header, payloads))

    def recv(self) -> Frame:
        length = _LEN.unpack(self._read_exact(4, start_of_frame=True))[0]
        _check_header_length(length)
        header, counts = decode_header(
            self._read_exact(length, start_of_frame=False)
        )
        payloads = [
            bytes_to_payload(
                self._read_exact(count * 8, start_of_frame=False)
            )
            for count in counts
        ]
        return header, payloads

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()


class ConnectionClosed(Exception):
    """The peer closed the connection at a frame boundary."""


async def read_frame(reader: asyncio.StreamReader) -> Frame:
    """Read one frame from an asyncio stream (coordinator side)."""
    try:
        prefix = await reader.readexactly(4)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionClosed("peer closed the connection") from None
        raise ProtocolError("stream truncated inside a length prefix") from None
    length = _LEN.unpack(prefix)[0]
    _check_header_length(length)
    try:
        header, counts = decode_header(await reader.readexactly(length))
        payloads = [
            bytes_to_payload(await reader.readexactly(count * 8))
            for count in counts
        ]
    except asyncio.IncompleteReadError:
        raise ProtocolError(
            "stream truncated inside a frame"
        ) from None
    return header, payloads


async def write_frame(
    writer: asyncio.StreamWriter,
    header: Dict[str, Any],
    payloads: Sequence[object] = (),
) -> None:
    """Write one frame to an asyncio stream and drain the buffer."""
    writer.write(encode_frame(header, payloads))
    await writer.drain()
