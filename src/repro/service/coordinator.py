"""The checking-service coordinator: jobs in, bit-identical verdicts out.

``repro serve --state-dir DIR`` runs one of these.  The coordinator is
an asyncio server with three kinds of peers on one port (the first
frame's ``hello`` names the role):

- **workers** (:mod:`repro.service.worker`) register and wait to be
  driven; the coordinator owns every request/response on a worker
  connection (workers never speak unsolicited), with a per-worker lock
  serializing requests and a heartbeat ping task watching liveness;
- **clients** (:mod:`repro.service.transport`, ``repro submit`` et al.)
  submit job specs, poll status, stream progress, cancel, and fetch
  results/counterexamples;
- the **job runner** task drains the persisted :class:`JobQueue` one
  job at a time, exploring each canonical wiring class with the
  distributed equivalent of
  :func:`repro.checker.parallel.explore_sharded`.

Determinism contract: a job fixes its *logical* shard count up front
(``JobSpec.shards``); states are owned by ``fingerprint % shards``
exactly as in the pipe engine, workers are assigned shard subsets, and
the driver merges per-shard layer results in ascending logical-shard
order — the same order the pipe driver's ``for shard in range(jobs)``
loop produces.  Inboxes concatenate contributions in sender-shard
order, violations are taken from the lowest reporting shard, and
budgets truncate at layer boundaries.  The result: the service verdict
is bit-identical to a serial or pipe-sharded run of the same spec, no
matter how many workers served it — or how many died.

Elasticity: the run checkpoints through the PR 4
:class:`~repro.store.checkpoint.RunCheckpointer` machinery (per-logical
-shard visited dumps + the pending frontier) every
``JobSpec.checkpoint_every`` admitted states.  When a worker dies
mid-round (socket EOF from a SIGKILL, a timeout from a partition, or
an ``error`` frame), the epoch increments and the class **rolls back
to the last committed checkpoint**: surviving + newly joined workers
are re-assigned shard subsets, reconfigured with fresh epoch-namespaced
stores, reloaded from the per-shard dumps, and the round loop resumes
from the checkpointed frontier.  At most one checkpoint interval of
work is lost; the final result is unchanged because resume itself is
bit-identical (PR 4's guarantee).  If every worker is gone the job
simply waits for the next one to join.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import time
import traceback
from array import array
from dataclasses import asdict
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.checker.fast_snapshot import (
    FastExplorationResult,
    FastSnapshotSpec,
    canonical_wiring_classes,
)
from repro.checker.fingerprint import fingerprint_int
from repro.checker.parallel import class_key
from repro.service.jobs import JobError, JobQueue, JobRecord, JobSpec
from repro.service.protocol import (
    ConnectionClosed,
    ProtocolError,
    read_frame,
    write_frame,
)
from repro.store.checkpoint import (
    RunCheckpointer,
    load_result,
    read_u64_file,
    write_u64_file,
)

_POR_KEYS = (
    "transitions_pruned", "ample_states", "fully_expanded_states",
    "cycle_proviso_expansions",
)


class WorkerDied(RuntimeError):
    """A worker connection failed mid-conversation."""


class _JobCancelled(Exception):
    """Raised inside a class run when the job's cancel flag is seen."""


class WorkerHandle:
    """One registered worker connection, driven request/response."""

    def __init__(
        self,
        name: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.name = name
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()
        self.alive = True
        self.gone = asyncio.Event()
        self.stats: Dict[str, Any] = {}
        self.last_seen = time.monotonic()
        self.shards: List[int] = []

    def mark_dead(self) -> None:
        self.alive = False
        self.gone.set()
        with contextlib.suppress(Exception):
            self.writer.close()

    async def request(
        self,
        header: Dict[str, Any],
        payloads: Tuple[object, ...] = (),
        timeout: Optional[float] = None,
    ) -> Tuple[Dict[str, Any], List["array[int]"]]:
        if not self.alive:
            raise WorkerDied(f"worker {self.name} is gone")
        try:
            async with self.lock:
                await write_frame(self.writer, header, payloads)
                reply, data = await asyncio.wait_for(
                    read_frame(self.reader), timeout
                )
        except (ConnectionClosed, ProtocolError, OSError,
                asyncio.TimeoutError) as exc:
            self.mark_dead()
            raise WorkerDied(
                f"worker {self.name} died during"
                f" {header.get('type')!r}: {type(exc).__name__}: {exc}"
            ) from None
        self.last_seen = time.monotonic()
        if reply.get("type") == "error":
            self.mark_dead()
            raise WorkerDied(
                f"worker {self.name} failed during"
                f" {header.get('type')!r}: {reply.get('message')}"
            )
        return reply, data

    def describe(self) -> Dict[str, Any]:
        info = dict(self.stats)
        info.update({
            "name": self.name,
            "alive": self.alive,
            "shards": self.shards,
            "last_seen_age_s": round(time.monotonic() - self.last_seen, 3),
        })
        return info


class Coordinator:
    """See the module docstring; one instance per ``repro serve``."""

    def __init__(
        self,
        state_dir: Path,
        host: str = "127.0.0.1",
        port: int = 0,
        round_timeout_s: Optional[float] = 600.0,
        ping_every_s: float = 2.0,
        log=print,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.queue = JobQueue(self.state_dir)
        self.host = host
        self.port = port
        self.round_timeout_s = round_timeout_s
        self.ping_every_s = ping_every_s
        self.log = log or (lambda line: None)
        self.workers: Dict[str, WorkerHandle] = {}
        self.endpoint: Optional[Tuple[str, int]] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._worker_joined = asyncio.Event()
        self._job_submitted = asyncio.Event()
        self._stopping = asyncio.Event()
        self._cancelled: Set[str] = set()
        self._watchers: Dict[str, List[asyncio.Queue]] = {}
        self._worker_seq = 0
        self._tasks: List[asyncio.Task] = []

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        requeued = self.queue.requeue_interrupted()
        for job_id in requeued:
            self.log(f"[serve] requeued interrupted {job_id}")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.endpoint = (self.host, int(sockname[1]))
        (self.state_dir / "endpoint.json").write_text(json.dumps({
            "host": self.endpoint[0], "port": self.endpoint[1],
        }))
        self._tasks.append(asyncio.create_task(self._runner()))
        self._tasks.append(asyncio.create_task(self._pinger()))
        self.log(
            f"[serve] listening on {self.endpoint[0]}:{self.endpoint[1]}"
            f" (state: {self.state_dir})"
        )
        return self.endpoint

    async def serve_until_stopped(self) -> None:
        await self._stopping.wait()
        await self.aclose()

    def request_stop(self) -> None:
        self._stopping.set()

    async def aclose(self) -> None:
        self._stopping.set()
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            with contextlib.suppress(asyncio.CancelledError, Exception):
                await task
        for worker in list(self.workers.values()):
            with contextlib.suppress(WorkerDied):
                await worker.request({"type": "shutdown"}, timeout=2.0)
            worker.mark_dead()
        self.workers.clear()
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()

    # -- connections ---------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            hello, _ = await read_frame(reader)
        except (ConnectionClosed, ProtocolError, OSError):
            writer.close()
            return
        role = hello.get("role")
        if hello.get("type") != "hello" or role not in ("worker", "client"):
            with contextlib.suppress(Exception):
                await write_frame(writer, {
                    "type": "error",
                    "message": f"expected a hello frame, got {hello!r}",
                })
            writer.close()
            return
        await write_frame(writer, {
            "type": "welcome", "server": "repro-coordinator", "version": 1,
        })
        if role == "worker":
            await self._register_worker(hello, reader, writer)
        else:
            await self._serve_client(reader, writer)

    async def _register_worker(
        self,
        hello: Dict[str, Any],
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self._worker_seq += 1
        base = str(hello.get("name") or f"worker-{self._worker_seq}")
        name = base
        while name in self.workers:
            name = f"{base}~{self._worker_seq}"
        worker = WorkerHandle(name, reader, writer)
        self.workers[name] = worker
        self.log(f"[serve] worker joined: {name} (fleet: {len(self.workers)})")
        self._worker_joined.set()
        # The coordinator owns all traffic on this connection; this
        # handler only waits for the handle to be retired so asyncio
        # keeps the streams open.
        await worker.gone.wait()
        self.workers.pop(name, None)
        self.log(f"[serve] worker left: {name} (fleet: {len(self.workers)})")
        with contextlib.suppress(Exception):
            writer.close()

    # -- client API ----------------------------------------------------

    async def _serve_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request, _ = await read_frame(reader)
                except (ConnectionClosed, ProtocolError):
                    return
                try:
                    await self._dispatch_client(request, writer)
                except JobError as exc:
                    await write_frame(writer, {
                        "type": "error", "message": str(exc),
                    })
                except Exception as exc:  # keep the client loop alive
                    await write_frame(writer, {
                        "type": "error",
                        "message": f"{type(exc).__name__}: {exc}",
                    })
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _dispatch_client(
        self, request: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        kind = request.get("type")
        if kind == "submit":
            spec = JobSpec.from_dict(dict(request.get("spec") or {}))
            record = self.queue.submit(spec)
            self._job_submitted.set()
            self.log(f"[serve] submitted {record.job_id}: {spec.to_dict()}")
            await write_frame(writer, {
                "type": "submitted", "job_id": record.job_id,
                "job": record.to_dict(),
            })
        elif kind == "status":
            job_id = request.get("job_id")
            if job_id:
                await write_frame(writer, {
                    "type": "status", "job": self.queue.get(str(job_id)).to_dict(),
                    "workers": [w.describe() for w in self.workers.values()],
                })
            else:
                await write_frame(writer, {
                    "type": "status",
                    "jobs": [r.to_dict() for r in self.queue.list()],
                    "workers": [w.describe() for w in self.workers.values()],
                })
        elif kind == "result":
            record = self.queue.get(str(request.get("job_id")))
            await write_frame(writer, {
                "type": "result", "job": record.to_dict(),
            })
        elif kind == "cancel":
            job_id = str(request.get("job_id"))
            record = self.queue.request_cancel(job_id)
            self._cancelled.add(job_id)
            await write_frame(writer, {
                "type": "cancelled", "job": record.to_dict(),
            })
        elif kind == "watch":
            await self._stream_watch(str(request.get("job_id")), writer)
        elif kind == "workers":
            await write_frame(writer, {
                "type": "workers",
                "workers": [w.describe() for w in self.workers.values()],
            })
        else:
            await write_frame(writer, {
                "type": "error", "message": f"unknown request {kind!r}",
            })

    async def _stream_watch(
        self, job_id: str, writer: asyncio.StreamWriter
    ) -> None:
        record = self.queue.get(job_id)  # raises JobError when unknown
        if record.done:
            await write_frame(writer, {"type": "end", "job": record.to_dict()})
            return
        queue: asyncio.Queue = asyncio.Queue()
        self._watchers.setdefault(job_id, []).append(queue)
        try:
            while True:
                message = await queue.get()
                await write_frame(writer, message)
                if message.get("type") == "end":
                    return
        finally:
            self._watchers.get(job_id, []).remove(queue)

    def _publish(self, job_id: str, message: Dict[str, Any]) -> None:
        for queue in self._watchers.get(job_id, []):
            queue.put_nowait(message)

    # -- liveness ------------------------------------------------------

    async def _pinger(self) -> None:
        while True:
            await asyncio.sleep(self.ping_every_s)
            for worker in list(self.workers.values()):
                if not worker.alive or worker.lock.locked():
                    continue  # busy in a round; the round itself is the probe
                try:
                    reply, _ = await worker.request(
                        {"type": "ping"}, timeout=max(self.ping_every_s * 5, 10)
                    )
                    worker.stats = dict(reply.get("stats") or {})
                except WorkerDied:
                    pass  # mark_dead already retired it

    # -- the job runner ------------------------------------------------

    async def _runner(self) -> None:
        while True:
            record = self.queue.next_queued()
            if record is None:
                self._job_submitted.clear()
                with contextlib.suppress(asyncio.TimeoutError):
                    await asyncio.wait_for(self._job_submitted.wait(), 5.0)
                continue
            try:
                await self._run_job(record)
            except Exception as exc:  # pragma: no cover - defensive
                self.log(
                    f"[serve] {record.job_id} crashed the runner:"
                    f" {type(exc).__name__}: {exc}\n{traceback.format_exc()}"
                )
                record = self.queue.get(record.job_id)
                record.state = "failed"
                record.error = f"{type(exc).__name__}: {exc}"
                record.finished_at = time.time()
                self.queue.save(record)
                self._publish(record.job_id, {
                    "type": "end", "job": record.to_dict(),
                })

    def _is_cancelled(self, record: JobRecord) -> bool:
        return record.cancel_requested or record.job_id in self._cancelled

    async def _run_job(self, record: JobRecord) -> None:
        spec = record.spec
        record.state = "running"
        record.started_at = time.time()
        self.queue.save(record)
        self.log(f"[serve] running {record.job_id}")
        classes = canonical_wiring_classes(spec.n, spec.n)
        recorded_keys = {row["class"] for row in record.rows}
        record.progress.update({
            "classes_total": len(classes),
            "classes_done": len(recorded_keys),
        })
        try:
            for index, wiring in enumerate(classes):
                key = class_key(wiring)
                if key in recorded_keys:
                    continue
                if self._is_cancelled(record):
                    raise _JobCancelled()
                result = await self._run_class(record, index, wiring)
                record.rows.append({
                    "class": key,
                    "wiring": [list(perm) for perm in wiring],
                    "result": asdict(result),
                })
                record.progress["classes_done"] = len(record.rows)
                self.queue.save(record)
                self._publish(record.job_id, {
                    "type": "progress", "job_id": record.job_id,
                    "progress": dict(record.progress),
                    "class": key, "result": asdict(result),
                })
            record.state = "done"
        except _JobCancelled:
            record.state = "cancelled"
            self.log(f"[serve] cancelled {record.job_id}")
        except JobFailed as exc:
            record.state = "failed"
            record.error = str(exc)
            self.log(f"[serve] failed {record.job_id}: {exc}")
        record.finished_at = time.time()
        self.queue.save(record)
        self._cancelled.discard(record.job_id)
        self.log(f"[serve] {record.job_id}: {record.state}")
        self._publish(record.job_id, {"type": "end", "job": record.to_dict()})

    # -- distributed sharded exploration of one wiring class -----------

    async def _acquire_fleet(self, record: JobRecord) -> List[WorkerHandle]:
        """Alive workers in deterministic (name) order; waits for >= 1."""
        while True:
            fleet = sorted(
                (w for w in self.workers.values() if w.alive),
                key=lambda w: w.name,
            )
            if fleet:
                return fleet
            if self._is_cancelled(record):
                raise _JobCancelled()
            self.log(f"[serve] {record.job_id}: waiting for workers")
            self._publish(record.job_id, {
                "type": "progress", "job_id": record.job_id,
                "progress": {"waiting_for_workers": True},
            })
            self._worker_joined.clear()
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._worker_joined.wait(), 5.0)

    async def _run_class(
        self, record: JobRecord, index: int, wiring: Tuple[Tuple[int, ...], ...]
    ) -> FastExplorationResult:
        spec = record.spec
        inputs = tuple(range(1, spec.n + 1))
        fast_spec = FastSnapshotSpec(inputs, wiring)
        if fast_spec.state_bits > 63:
            raise JobFailed(
                f"service wire entries are (state << 1) | canonical_bit in"
                f" a u64 word; this configuration packs states into"
                f" {fast_spec.state_bits} bits"
            )
        checkpointer = RunCheckpointer(
            self.queue.job_dir(record.job_id) / f"class-{index:03d}",
            meta={**spec.meta(), "class": class_key(wiring)},
            every=spec.checkpoint_every,
        )
        recorded = checkpointer.completed_result()
        if recorded is not None:
            return load_result(FastExplorationResult, recorded)

        canonicalizer = None
        if spec.symmetry:
            from repro.checker.symmetry import FastCanonicalizer

            canonicalizer = FastCanonicalizer(fast_spec)
        n_shards = spec.shards
        max_states = spec.budget if spec.budget else 10 ** 9
        epoch = 0

        while True:  # rollback loop: one iteration per worker epoch
            fleet = await self._acquire_fleet(record)
            try:
                return await self._run_class_epoch(
                    record, index, wiring, fast_spec, canonicalizer,
                    checkpointer, fleet, epoch, n_shards, max_states,
                )
            except WorkerDied as exc:
                epoch += 1
                self.log(
                    f"[serve] {record.job_id} class-{index:03d}: {exc};"
                    f" rolling back to the last checkpoint (epoch {epoch})"
                )
                self._publish(record.job_id, {
                    "type": "progress", "job_id": record.job_id,
                    "progress": {"rollback": str(exc), "epoch": epoch},
                })

    async def _run_class_epoch(
        self,
        record: JobRecord,
        index: int,
        wiring: Tuple[Tuple[int, ...], ...],
        fast_spec: FastSnapshotSpec,
        canonicalizer,
        checkpointer: RunCheckpointer,
        fleet: List[WorkerHandle],
        epoch: int,
        n_shards: int,
        max_states: int,
    ) -> FastExplorationResult:
        spec = record.spec
        # Static shard assignment for this epoch: round-robin over the
        # fleet in name order.  The *logical* partition (fingerprint %
        # n_shards) never changes, so any assignment yields identical
        # results; round-robin balances the load.
        assignment: Dict[str, List[int]] = {w.name: [] for w in fleet}
        owner_of: Dict[int, WorkerHandle] = {}
        for shard in range(n_shards):
            worker = fleet[shard % len(fleet)]
            assignment[worker.name].append(shard)
            owner_of[shard] = worker
        for worker in fleet:
            worker.shards = assignment[worker.name]

        configure = {
            "type": "configure",
            "epoch": epoch,
            "job_id": record.job_id,
            "class_index": index,
            "inputs": list(fast_spec.inputs),
            "wiring": [list(perm) for perm in wiring],
            "level_target": None,
            "n_shards": n_shards,
            "check_safety": True,
            "fingerprint": spec.fingerprint,
            "symmetry": spec.symmetry,
            "por": spec.por,
            "engine": spec.engine,
            "kernel": spec.kernel,
            "store": spec.store,
            "mem_cap": spec.mem_cap,
            "round_delay_ms": spec.round_delay_ms,
        }
        await asyncio.gather(*(
            worker.request(
                {**configure, "shards": assignment[worker.name]},
                timeout=self.round_timeout_s,
            )
            for worker in fleet
        ))

        states = 0
        transitions = 0
        covered: Optional[int] = 0 if spec.symmetry else None
        group_order = (
            canonicalizer.order if canonicalizer is not None else None
        )
        recanon_skipped: Optional[int] = 0 if spec.symmetry else None
        violation: Optional[str] = None
        por_base: Dict[str, int] = {}
        shard_por: List[Optional[Dict[str, int]]] = [None] * n_shards

        def _por_totals() -> Optional[Dict[str, int]]:
            if not spec.por:
                return None
            totals = {key: por_base.get(key, 0) for key in _POR_KEYS}
            for snapshot in shard_por:
                if snapshot:
                    for key, value in snapshot.items():
                        totals[key] = totals.get(key, 0) + value
            return totals

        def _finish(result: FastExplorationResult) -> FastExplorationResult:
            checkpointer.mark_complete(asdict(result))
            return result

        inboxes: Dict[int, "array[int]"] = {}
        resumed = checkpointer.latest()
        if resumed is not None:
            states = resumed.counter("admitted")
            transitions = resumed.counter("transitions")
            if covered is not None:
                covered = resumed.counter("covered")
            if recanon_skipped is not None:
                recanon_skipped = resumed.counter("skipped")
            if spec.por:
                por_base = {
                    key: int(resumed.counters.get(key, 0))
                    for key in _POR_KEYS
                }
            for entry in resumed.frontier():
                owner = fingerprint_int(entry >> 1) % n_shards
                inboxes.setdefault(owner, array("Q")).append(entry)
            await asyncio.gather(*(
                owner_of[shard].request(
                    {"type": "load", "shard": shard},
                    (read_u64_file(
                        resumed.directory / f"visited-{shard:03d}.u64"
                    ),),
                    timeout=self.round_timeout_s,
                )
                for shard in range(n_shards)
            ))
        else:
            initial = fast_spec.initial_state()
            canonical_bit = 0
            if canonicalizer is not None:
                initial = canonicalizer.canonical(initial)
                if not canonicalizer.trivial:
                    canonical_bit = 1
            inboxes = {
                fingerprint_int(initial) % n_shards: array(
                    "Q", [(initial << 1) | canonical_bit]
                )
            }

        seq = 0
        while inboxes:
            if self._is_cancelled(record):
                raise _JobCancelled()
            seq += 1
            frontier_size = sum(len(batch) for batch in inboxes.values())
            replies = await asyncio.gather(*(
                worker.request(
                    {
                        "type": "round", "seq": seq,
                        "shards": assignment[worker.name],
                    },
                    tuple(
                        inboxes.get(shard, array("Q"))
                        for shard in assignment[worker.name]
                    ),
                    timeout=self.round_timeout_s,
                )
                for worker in fleet
            ))
            # Merge in ascending *logical shard* order — the exact
            # order the pipe driver's `for shard in range(jobs)` loop
            # merges in, so counts, violation choice, and truncation
            # points are identical by construction.
            per_shard: Dict[int, Tuple[Dict[str, Any], List["array[int]"]]] = {}
            for (reply, data) in replies:
                for shard_result in reply["results"]:
                    per_shard[int(shard_result["shard"])] = (
                        shard_result, data
                    )
            parts: Dict[int, List["array[int]"]] = {}
            for shard in range(n_shards):
                if shard not in per_shard:
                    raise WorkerDied(
                        f"no worker reported shard {shard} in round {seq}"
                    )
                shard_result, data = per_shard[shard]
                states += int(shard_result["admitted"])
                transitions += int(shard_result["transitions"])
                if shard_result.get("covered") is not None and covered is not None:
                    covered += int(shard_result["covered"])
                if recanon_skipped is not None:
                    recanon_skipped += int(shard_result.get("skipped") or 0)
                if shard_result.get("por") is not None:
                    shard_por[shard] = dict(shard_result["por"])
                if shard_result.get("violation") and violation is None:
                    violation = str(shard_result["violation"])
                for dest, payload_index in shard_result.get("outboxes", []):
                    parts.setdefault(int(dest), []).append(
                        data[int(payload_index)]
                    )
            self._publish_round(record, states, transitions, frontier_size)
            if violation is not None:
                return _finish(FastExplorationResult(
                    states=states,
                    transitions=transitions,
                    complete=True,
                    violation=violation,
                    covered_states=covered,
                    symmetry_group_order=group_order,
                    recanonicalizations_skipped=recanon_skipped,
                    por_counters=_por_totals(),
                ))
            inboxes = {}
            for dest, contributions in parts.items():
                merged = array("Q")
                for contribution in contributions:
                    merged.extend(contribution)
                if merged:
                    inboxes[dest] = merged
            if states >= max_states and inboxes:
                truncated = sum(len(batch) for batch in inboxes.values())
                return _finish(FastExplorationResult(
                    states=states,
                    transitions=transitions,
                    complete=False,
                    truncated_transitions=truncated,
                    covered_states=covered,
                    symmetry_group_order=group_order,
                    recanonicalizations_skipped=recanon_skipped,
                    por_counters=_por_totals(),
                ))
            if inboxes and checkpointer.due(states):
                await self._checkpoint(
                    checkpointer, owner_of, assignment, fleet, inboxes,
                    states, transitions, covered, recanon_skipped,
                    _por_totals(),
                )
                self._publish(record.job_id, {
                    "type": "progress", "job_id": record.job_id,
                    "progress": dict(record.progress),
                    "checkpoint": {"admitted": states, "epoch": epoch},
                })

        return _finish(FastExplorationResult(
            states=states, transitions=transitions, complete=True,
            covered_states=covered, symmetry_group_order=group_order,
            recanonicalizations_skipped=recanon_skipped,
            por_counters=_por_totals(),
        ))

    def _publish_round(
        self,
        record: JobRecord,
        states: int,
        transitions: int,
        frontier_size: int,
    ) -> None:
        now = time.time()
        previous = record.progress.get("_at")
        previous_states = record.progress.get("states", 0)
        rate = None
        if previous and now > previous:
            rate = (states - previous_states) / (now - previous)
        record.progress.update({
            "states": states,
            "transitions": transitions,
            "frontier": frontier_size,
            "states_per_s": round(rate, 1) if rate is not None else None,
            "workers": {
                worker.name: worker.describe()
                for worker in self.workers.values()
            },
            "_at": now,
        })
        # status requests read records from disk; persist live progress
        # at most once a second so they see it without per-round I/O.
        last_saved = record.progress.get("_saved_at", 0.0)
        if now - last_saved >= 1.0:
            record.progress["_saved_at"] = now
            self.queue.save(record)
        self._publish(record.job_id, {
            "type": "progress", "job_id": record.job_id,
            "progress": {
                key: value
                for key, value in record.progress.items()
                if key != "_at"
            },
        })

    async def _checkpoint(
        self,
        checkpointer: RunCheckpointer,
        owner_of: Dict[int, WorkerHandle],
        assignment: Dict[str, List[int]],
        fleet: List[WorkerHandle],
        inboxes: Dict[int, "array[int]"],
        states: int,
        transitions: int,
        covered: Optional[int],
        recanon_skipped: Optional[int],
        por_totals: Optional[Dict[str, int]],
    ) -> None:
        staging = checkpointer.begin()
        dumps = await asyncio.gather(*(
            worker.request(
                {"type": "dump", "shards": assignment[worker.name]},
                timeout=self.round_timeout_s,
            )
            for worker in fleet
            if assignment[worker.name]
        ))
        for reply, data in dumps:
            for position, shard in enumerate(reply["shards"]):
                write_u64_file(
                    staging / f"visited-{int(shard):03d}.u64",
                    iter(data[position]),
                )
        write_u64_file(
            staging / "frontier.u64",
            (
                entry
                for owner in sorted(inboxes)
                for entry in inboxes[owner]
            ),
        )
        counters: Dict[str, Any] = {
            "admitted": states,
            "transitions": transitions,
            "covered": covered if covered is not None else 0,
            "skipped": recanon_skipped if recanon_skipped is not None else 0,
        }
        if por_totals is not None:
            counters.update(por_totals)
        checkpointer.commit(staging, counters)


class JobFailed(RuntimeError):
    """A job cannot proceed (bad configuration surfaced at run time)."""


# ----------------------------------------------------------------------
# Embedding helpers: tests, benchmarks, and the CLI front-end
# ----------------------------------------------------------------------

class CoordinatorHandle:
    """A coordinator running on a background thread (tests/benchmarks)."""

    def __init__(self, state_dir: Path, **kwargs: Any) -> None:
        import threading

        self.state_dir = Path(state_dir)
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._coordinator: Optional[Coordinator] = None
        self.endpoint: Optional[Tuple[str, int]] = None
        self._error: Optional[BaseException] = None
        self._kwargs = kwargs
        self._thread = threading.Thread(target=self._main, daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError(
                f"coordinator failed to start: {self._error}"
            ) from self._error
        if self.endpoint is None:
            raise RuntimeError("coordinator did not start within 30s")

    def _main(self) -> None:
        async def body() -> None:
            coordinator = Coordinator(self.state_dir, **self._kwargs)
            self._coordinator = coordinator
            self._loop = asyncio.get_running_loop()
            try:
                self.endpoint = await coordinator.start()
            finally:
                self._ready.set()
            await coordinator.serve_until_stopped()

        try:
            asyncio.run(body())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._error = exc
            self._ready.set()

    def stop(self, timeout: float = 30.0) -> None:
        loop = self._loop
        coordinator = self._coordinator
        if loop is not None and coordinator is not None and loop.is_running():
            loop.call_soon_threadsafe(coordinator.request_stop)
        self._thread.join(timeout=timeout)


async def run_coordinator(
    state_dir: Path,
    host: str = "127.0.0.1",
    port: int = 0,
    log=print,
) -> None:
    """``repro serve``'s body: run until cancelled (SIGINT)."""
    coordinator = Coordinator(state_dir, host=host, port=port, log=log)
    await coordinator.start()
    try:
        await coordinator.serve_until_stopped()
    except asyncio.CancelledError:
        await coordinator.aclose()
        raise
