"""Campaign jobs: the unit of work the checking service queues.

A :class:`JobSpec` is the machine + configuration of one checking
campaign, expressed as plain JSON-able values (never pickle — specs
cross the network).  A :class:`JobRecord` is one submitted job's
lifecycle: spec, state, timestamps, progress, per-class result rows,
and error text.  A :class:`JobQueue` persists records as one JSON file
per job under the coordinator's state directory, written atomically, so
a coordinator restart recovers the queue — jobs found ``running`` are
requeued (their per-class checkpoints under ``jobs/<id>/`` make the
re-run resume rather than restart).

Spec validation is strict both ways: unknown keys in a submitted spec
are refused (a newer client talking to an older coordinator must fail
loudly, mirroring the checkpoint meta.json contract), and semantic
invariants (``por`` needs an exhaustive run, engine/store names must
exist) are checked at submission time so a job can never be accepted
and then die on a worker with a config error.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Job lifecycle states.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

_ENGINES = ("scalar", "batch")
_KERNELS = ("auto", "numpy", "native")
_STORES = ("ram", "mmap", "spill")
_MACHINES = ("snapshot",)


class JobError(ValueError):
    """An invalid job spec or an operation on a job that refuses it."""


@dataclass(frozen=True)
class JobSpec:
    """One campaign: the paper's snapshot machine plus checker config.

    ``budget=0`` means exhaustive.  ``shards`` is the *logical* shard
    count — fixed for the life of the job so results are partition
    -deterministic however many workers come and go (workers are
    assigned shard subsets; see :mod:`repro.service.coordinator`).
    ``checkpoint_every`` is the admitted-state cadence of the job's
    checkpoints and therefore the elasticity guarantee: a killed worker
    loses at most one interval.  ``round_delay_ms`` is a test seam
    (workers sleep that long per round, making mid-run kills
    deterministic in tests); it is clamped to 10 s and defaults to 0.
    """

    n: int = 2
    budget: int = 0
    fingerprint: bool = False
    symmetry: bool = False
    por: bool = False
    engine: str = "scalar"
    kernel: str = "auto"
    store: str = "ram"
    mem_cap: int = 0
    shards: int = 4
    checkpoint_every: int = 2000
    machine: str = "snapshot"
    round_delay_ms: int = 0

    def validate(self) -> None:
        if self.machine not in _MACHINES:
            raise JobError(
                f"unknown machine {self.machine!r};"
                f" choose one of {', '.join(_MACHINES)}"
            )
        if not 1 <= self.n <= 6:
            raise JobError(f"n={self.n} outside the supported range 1..6")
        if self.budget < 0:
            raise JobError(f"budget must be >= 0 (0 = exhaustive): {self.budget}")
        if self.engine not in _ENGINES:
            raise JobError(
                f"unknown engine {self.engine!r};"
                f" choose one of {', '.join(_ENGINES)}"
            )
        if self.kernel not in _KERNELS:
            raise JobError(
                f"unknown kernel {self.kernel!r};"
                f" choose one of {', '.join(_KERNELS)}"
            )
        if self.store not in _STORES:
            raise JobError(
                f"unknown store backend {self.store!r};"
                f" choose one of {', '.join(_STORES)}"
            )
        if self.mem_cap < 0:
            raise JobError(f"mem_cap must be >= 0: {self.mem_cap}")
        if not 1 <= self.shards <= 256:
            raise JobError(
                f"shards={self.shards} outside the supported range 1..256"
            )
        if self.checkpoint_every < 1:
            raise JobError(
                f"checkpoint_every must be >= 1: {self.checkpoint_every}"
            )
        if not 0 <= self.round_delay_ms <= 10_000:
            raise JobError(
                f"round_delay_ms={self.round_delay_ms} outside 0..10000"
            )
        if self.por and self.budget:
            # Mirrors the CLI gate: a truncated POR run certifies
            # neither the reduced nor the unreduced state space.
            raise JobError(
                "por requires an exhaustive run (budget=0); a budget"
                " -truncated reduction certifies nothing"
            )

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobSpec":
        declared = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(key for key in payload if key not in declared)
        if unknown:
            raise JobError(
                f"unknown job spec keys {', '.join(unknown)} —"
                " submitted by a newer client? (this coordinator knows:"
                f" {', '.join(sorted(declared))})"
            )
        try:
            spec = cls(**payload)
        except TypeError as exc:
            raise JobError(f"malformed job spec: {exc}") from None
        spec.validate()
        return spec

    def meta(self) -> Dict[str, Any]:
        """The *semantic* configuration, for checkpoint meta validation.

        Store backend, memory cap, checkpoint cadence, the batch kernel,
        and the test delay are operational knobs that do not change
        results, so they are excluded — a job may resume under a
        different store, cadence, or kernel (kernels are bit-identical
        by the native conformance contract).  ``shards`` is semantic:
        budgeted truncation points depend on the logical partition.
        """
        return {
            "machine": self.machine,
            "n": self.n,
            "budget": self.budget,
            "fingerprint": self.fingerprint,
            "symmetry": self.symmetry,
            "por": self.por,
            "engine": self.engine,
            "shards": self.shards,
        }


@dataclass
class JobRecord:
    """One submitted job's persisted lifecycle."""

    job_id: str
    spec: JobSpec
    state: str = "queued"
    created_at: float = 0.0
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    error: Optional[str] = None
    #: Live counters while running: states, transitions, frontier,
    #: classes_done, classes_total, workers — whatever the coordinator
    #: last published.
    progress: Dict[str, Any] = field(default_factory=dict)
    #: Finished per-class rows: {"class": key, "wiring": [...],
    #: "result": asdict(FastExplorationResult)}.
    rows: List[Dict[str, Any]] = field(default_factory=list)
    cancel_requested: bool = False

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["spec"] = self.spec.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "JobRecord":
        data = dict(payload)
        spec = JobSpec.from_dict(dict(data.pop("spec", {})))
        declared = {f.name for f in dataclasses.fields(cls)} - {"spec"}
        unknown = sorted(key for key in data if key not in declared)
        if unknown:
            raise JobError(
                f"unknown job record keys: {', '.join(unknown)}"
            )
        if data.get("state") not in JOB_STATES:
            raise JobError(f"unknown job state {data.get('state')!r}")
        return cls(spec=spec, **data)

    @property
    def done(self) -> bool:
        return self.state in ("done", "failed", "cancelled")


class JobQueue:
    """FIFO of persisted jobs under ``state_dir/jobs`` (one JSON each).

    Writes are atomic (tmp + rename) so a crash mid-save never leaves a
    half-written record.  Job ids are monotonically numbered from what
    the directory already holds, so ids survive restarts without a
    separate counter file.
    """

    def __init__(self, state_dir: Path) -> None:
        self.directory = Path(state_dir) / "jobs"
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, job_id: str) -> Path:
        if not job_id.startswith("job-") or "/" in job_id or ".." in job_id:
            raise JobError(f"malformed job id {job_id!r}")
        return self.directory / f"{job_id}.json"

    def _ids(self) -> List[str]:
        ids = [
            entry.stem
            for entry in self.directory.glob("job-*.json")
        ]
        return sorted(ids)

    def submit(self, spec: JobSpec) -> JobRecord:
        spec.validate()
        numbers = [
            int(job_id.split("-", 1)[1])
            for job_id in self._ids()
            if job_id.split("-", 1)[1].isdigit()
        ]
        job_id = f"job-{(max(numbers) + 1) if numbers else 1:06d}"
        record = JobRecord(
            job_id=job_id, spec=spec, created_at=time.time()
        )
        self.save(record)
        return record

    def save(self, record: JobRecord) -> None:
        path = self._path(record.job_id)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        os.replace(tmp, path)

    def get(self, job_id: str) -> JobRecord:
        path = self._path(job_id)
        if not path.exists():
            raise JobError(f"no such job: {job_id}")
        loaded = json.loads(path.read_text())
        return JobRecord.from_dict(dict(loaded))

    def list(self) -> List[JobRecord]:
        return [self.get(job_id) for job_id in self._ids()]

    def next_queued(self) -> Optional[JobRecord]:
        for record in self.list():
            if record.state == "queued":
                return record
        return None

    def requeue_interrupted(self) -> List[str]:
        """Running jobs found at startup crashed with the coordinator;
        put them back in the queue (their checkpoints make this a
        resume, not a restart)."""
        requeued = []
        for record in self.list():
            if record.state == "running":
                record.state = "queued"
                record.started_at = None
                self.save(record)
                requeued.append(record.job_id)
        return requeued

    def request_cancel(self, job_id: str) -> JobRecord:
        record = self.get(job_id)
        if record.done:
            return record
        if record.state == "queued":
            record.state = "cancelled"
            record.finished_at = time.time()
        else:
            record.cancel_requested = True
        self.save(record)
        return record

    def job_dir(self, job_id: str) -> Path:
        """Scratch/checkpoint directory of one job (created on demand)."""
        path = self.directory / self._path(job_id).stem
        path.mkdir(parents=True, exist_ok=True)
        return path
