"""The distributed checking service: campaigns as jobs, shards as workers.

``repro serve`` runs a :class:`~repro.service.coordinator.Coordinator`;
``repro worker --connect`` adds capacity to it (elastically — workers
may join and leave mid-run); ``repro submit/status/result/cancel``
drive the job API through :class:`~repro.service.transport.ServiceClient`.
Results are bit-identical to local serial/sharded runs of the same
spec; see ``docs/service.md`` for the architecture, wire protocol, and
the failure model behind that guarantee.
"""

from repro.service.heartbeat import Heartbeat, current_rss_bytes, format_bytes
from repro.service.jobs import JobError, JobQueue, JobRecord, JobSpec
from repro.service.protocol import (
    ConnectionClosed,
    ProtocolError,
    SyncFrameIO,
    encode_frame,
)
from repro.service.transport import (
    ServiceClient,
    ServiceError,
    discover_endpoint,
)

__all__ = [
    "ConnectionClosed",
    "Heartbeat",
    "JobError",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "ProtocolError",
    "ServiceClient",
    "ServiceError",
    "SyncFrameIO",
    "current_rss_bytes",
    "discover_endpoint",
    "encode_frame",
    "format_bytes",
]
