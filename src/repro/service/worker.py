"""The service worker: socket transport around :class:`ShardEngine`.

``repro worker --connect HOST:PORT`` runs this loop.  A worker is the
distributed twin of one pipe-based shard *process* of
:func:`repro.checker.parallel.explore_sharded`, generalized two ways:

- one worker hosts **many logical shards** (the coordinator fixes the
  job's logical shard count up front and assigns each worker a subset,
  so the state partition — and therefore every count and truncation
  point — is independent of how many workers happen to be connected);
- the transport is a TCP socket speaking
  :mod:`repro.service.protocol` frames, with reconnect + exponential
  backoff, so workers can join from other hosts and outlive coordinator
  restarts.

The worker is deliberately dumb: it holds no job state beyond its
configured engines and never initiates anything.  The coordinator owns
scheduling, checkpoints, and elasticity; a worker that dies is simply
re-assigned (see :mod:`repro.service.coordinator`).  All exploration
semantics live in :class:`~repro.checker.parallel.ShardEngine` — the
same class the pipe workers run — which is what makes service results
bit-identical to local sharded runs.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.checker.parallel import ShardEngine
from repro.service.heartbeat import current_rss_bytes
from repro.service.protocol import (
    ConnectionClosed,
    ProtocolError,
    SyncFrameIO,
)
from repro.store.base import StoreConfig


class _WorkerState:
    """Engines + counters for the currently configured (job, epoch)."""

    def __init__(self) -> None:
        self.engines: Dict[int, ShardEngine] = {}
        self.epoch: Optional[int] = None
        self.job_id: Optional[str] = None
        self.round_delay_ms = 0
        self.busy_ms = 0.0
        self.rounds = 0
        self.states = 0
        self.transitions = 0

    def close(self) -> None:
        for engine in self.engines.values():
            engine.close()
        self.engines.clear()
        self.epoch = None
        self.job_id = None


def _configure(state: _WorkerState, header: Dict[str, Any]) -> Dict[str, Any]:
    state.close()
    epoch = int(header["epoch"])
    shards = [int(shard) for shard in header["shards"]]
    store_config = StoreConfig(
        backend=str(header.get("store", "ram")),
        mem_cap=int(header["mem_cap"]) if header.get("mem_cap") else
        StoreConfig().mem_cap,
    )
    for shard in shards:
        # The epoch lands in the store namespace: a shard re-assigned
        # after a failure must never collide with stale spill/mmap
        # files a previous owner (or a previous epoch of this worker)
        # left on disk.
        state.engines[shard] = ShardEngine(
            [int(value) for value in header["inputs"]],
            tuple(tuple(int(r) for r in perm) for perm in header["wiring"]),
            header.get("level_target"),
            shard,
            int(header["n_shards"]),
            bool(header.get("check_safety", True)),
            bool(header.get("fingerprint", False)),
            symmetry=bool(header.get("symmetry", False)),
            store_config=store_config,
            por=bool(header.get("por", False)),
            engine=str(header.get("engine", "scalar")),
            kernel=str(header.get("kernel", "auto")),
            store_namespace=f"shard-{shard:03d}-e{epoch:03d}",
        )
    state.epoch = epoch
    state.job_id = header.get("job_id")
    state.round_delay_ms = int(header.get("round_delay_ms", 0))
    return {"type": "configured", "epoch": epoch, "shards": shards}


def _round_reply(
    state: _WorkerState, header: Dict[str, Any], payloads: List[Any]
) -> Tuple[Dict[str, Any], List[object]]:
    if state.round_delay_ms:
        time.sleep(state.round_delay_ms / 1000.0)
    shards = [int(shard) for shard in header["shards"]]
    if len(shards) != len(payloads):
        raise ProtocolError(
            f"round frame names {len(shards)} shards but carries"
            f" {len(payloads)} payloads"
        )
    started = time.monotonic()
    results: List[Dict[str, Any]] = []
    out_payloads: List[object] = []
    for shard, batch in zip(shards, payloads):
        engine = state.engines.get(shard)
        if engine is None:
            raise ProtocolError(f"shard {shard} is not configured here")
        (admitted, transitions, violation, outboxes, covered, skipped,
         por_counters) = engine.process_round(batch)
        state.states += admitted
        state.transitions += transitions
        outbox_refs = []
        for dest in sorted(outboxes):
            outbox_refs.append([dest, len(out_payloads)])
            out_payloads.append(outboxes[dest])
        results.append({
            "shard": shard,
            "admitted": admitted,
            "transitions": transitions,
            "violation": violation,
            "covered": covered,
            "skipped": skipped,
            "por": por_counters,
            "outboxes": outbox_refs,
        })
    state.busy_ms += (time.monotonic() - started) * 1000.0
    state.rounds += 1
    return (
        {"type": "layer", "seq": header.get("seq"), "results": results},
        out_payloads,
    )


def _stats(state: _WorkerState) -> Dict[str, Any]:
    return {
        "pid": os.getpid(),
        "rss": current_rss_bytes(),
        "busy_ms": state.busy_ms,
        "rounds": state.rounds,
        "states": state.states,
        "transitions": state.transitions,
        "epoch": state.epoch,
        "job_id": state.job_id,
        "shards": sorted(state.engines),
    }


def serve_connection(
    io: SyncFrameIO,
    name: str,
    emit: Callable[[str], None],
) -> bool:
    """Drive one connection until it ends.

    Returns True when the coordinator asked for a clean shutdown (the
    worker should exit) and False when the connection dropped (the
    caller may reconnect).
    """
    io.send({"type": "hello", "role": "worker", "name": name,
             "pid": os.getpid()})
    welcome, _ = io.recv()
    if welcome.get("type") != "welcome":
        raise ProtocolError(f"expected welcome, got {welcome!r}")
    emit(f"[worker {name}] connected to {welcome.get('server', '?')}")
    state = _WorkerState()
    try:
        while True:
            header, payloads = io.recv()
            kind = header.get("type")
            if kind == "shutdown":
                io.send({"type": "bye"})
                return True
            if kind == "ping":
                io.send({"type": "pong", "stats": _stats(state)})
            elif kind == "configure":
                io.send(_configure(state, header))
            elif kind == "round":
                reply, out_payloads = _round_reply(state, header, payloads)
                io.send(reply, out_payloads)
            elif kind == "dump":
                shards = [int(shard) for shard in header["shards"]]
                keys = [state.engines[shard].visited_keys() for shard in shards]
                io.send(
                    {"type": "dumped", "shards": shards,
                     "counts": [len(part) for part in keys]},
                    keys,
                )
            elif kind == "load":
                shard = int(header["shard"])
                count = state.engines[shard].load_keys(list(payloads[0]))
                io.send({"type": "loaded", "shard": shard, "count": count})
            else:
                io.send({"type": "error",
                         "message": f"unknown message type {kind!r}"})
    except ConnectionClosed:
        emit(f"[worker {name}] coordinator closed the connection")
        return False
    except Exception as exc:
        # Surface the failure to the coordinator (it rolls the affected
        # job back to its last checkpoint), then drop the connection;
        # the reconnect loop re-registers this worker with fresh state.
        try:
            io.send({"type": "error",
                     "message": f"{type(exc).__name__}: {exc}"})
        except OSError:
            pass
        emit(f"[worker {name}] error: {type(exc).__name__}: {exc}")
        return False
    finally:
        state.close()


def run_worker(
    host: str,
    port: int,
    name: Optional[str] = None,
    reconnect_attempts: int = 10,
    backoff_s: float = 0.5,
    max_backoff_s: float = 10.0,
    emit: Callable[[str], None] = print,
) -> int:
    """Connect (and keep reconnecting) to a coordinator; exit code.

    A refused or dropped connection is retried with exponential backoff
    up to ``reconnect_attempts`` consecutive failures — a coordinator
    restart well inside the window is invisible to the fleet.  A clean
    ``shutdown`` from the coordinator ends the loop with exit code 0.
    """
    worker_name = name or f"worker-{socket.gethostname()}-{os.getpid()}"
    failures = 0
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=30)
        except OSError as exc:
            failures += 1
            if failures > reconnect_attempts:
                emit(
                    f"[worker {worker_name}] giving up after"
                    f" {failures - 1} failed connection attempts: {exc}"
                )
                return 1
            delay = min(backoff_s * (2 ** (failures - 1)), max_backoff_s)
            emit(
                f"[worker {worker_name}] connect to {host}:{port} failed"
                f" ({exc}); retrying in {delay:.1f}s"
            )
            time.sleep(delay)
            continue
        sock.settimeout(None)
        io = SyncFrameIO(sock)
        try:
            done = serve_connection(io, worker_name, emit)
        finally:
            io.close()
        if done:
            emit(f"[worker {worker_name}] shut down cleanly")
            return 0
        failures += 1
        if failures > reconnect_attempts:
            emit(
                f"[worker {worker_name}] giving up after {failures - 1}"
                " dropped connections"
            )
            return 1
        delay = min(backoff_s * (2 ** (failures - 1)), max_backoff_s)
        emit(f"[worker {worker_name}] reconnecting in {delay:.1f}s")
        time.sleep(delay)
