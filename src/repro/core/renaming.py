"""Adaptive renaming (Figure 4, Section 6).

The paper adapts the Bar-Noy–Dolev (1989) algorithm: given a snapshot
``S`` of the participating (group) identifiers, a processor ranks its
own identifier within ``S`` and takes the name

    ``name = z(z-1)/2 + r``

where ``z = |S|`` and ``r`` is the 1-based rank.  The name space is laid
out so size-1 snapshots use name 1, size-2 snapshots use names 2-3,
size-3 snapshots use 4-6, etc.; with ``M`` participating groups every
name falls in ``1..M(M+1)/2``.

With a *group* solution to the snapshot task (instead of atomic memory
snapshots) two processors in the same group may return incomparable
snapshots of equal size — the classic argument that equal-size snapshots
are identical is lost.  Section 6's saving grace: incomparable snapshots
can only come from the *same* group, and any other group's snapshot is
either a superset of their union or a subset of their intersection, so
the sizes between intersection and union are effectively reserved for
that group; clashes can then only happen within a group, which group
solvability allows.  The tests and benchmark E7 exercise exactly this
subtlety.

Group identifiers must be totally ordered (the rank is taken in sorted
order); integers or strings both work.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple

from repro.core.snapshot import SnapshotMachine, SnapshotState
from repro.core.views import RegisterRecord, View
from repro.sim.ops import Op


def bar_noy_dolev_name(snapshot: View, my_id: Hashable) -> int:
    """The Bar-Noy–Dolev name for ``my_id`` given snapshot ``snapshot``.

    ``name = z(z-1)/2 + r`` with ``z = |snapshot|`` and ``r`` the 1-based
    rank of ``my_id`` in the sorted snapshot.
    """
    if my_id not in snapshot:
        raise ValueError(f"{my_id!r} not in its own snapshot {sorted(snapshot)!r}")
    ordered = sorted(snapshot)
    z = len(ordered)
    r = ordered.index(my_id) + 1
    return (z - 1) * z // 2 + r


def renaming_bound(n_groups: int) -> int:
    """The paper's name-space bound ``M(M+1)/2`` for ``M`` groups."""
    return n_groups * (n_groups + 1) // 2


@dataclass(frozen=True)
class RenamingState:
    """Local state: the embedded snapshot state plus the own identifier."""

    inner: SnapshotState
    my_id: Hashable
    name: Optional[int] = None

    @property
    def done(self) -> bool:
        return self.name is not None


class RenamingMachine:
    """Adaptive renaming on top of the fully-anonymous snapshot.

    The processor's input is its group identifier.  The machine runs the
    Figure 3 snapshot to completion and then computes its name from the
    returned snapshot (a local step, merged into the final read).
    """

    #: Every op comes from the inner snapshot machine; the footprint is
    #: resolved through the delegation chain (anonlint POR002).
    por_footprint = "delegate"

    def __init__(
        self,
        n_processors: int,
        n_registers: Optional[int] = None,
        level_target: Optional[int] = None,
    ) -> None:
        self.snapshot_machine = SnapshotMachine(
            n_processors, n_registers, level_target
        )
        self.n_processors = n_processors
        self.n_registers = self.snapshot_machine.n_registers

    # -- AlgorithmMachine protocol -------------------------------------
    def initial_state(self, my_input: Hashable) -> RenamingState:
        return RenamingState(
            inner=self.snapshot_machine.initial_state(my_input), my_id=my_input
        )

    def register_initial_value(self) -> RegisterRecord:
        return self.snapshot_machine.register_initial_value()

    def enabled_ops(self, state: RenamingState) -> Tuple[Op, ...]:
        if state.done:
            return ()
        return self.snapshot_machine.enabled_ops(state.inner)

    def apply(self, state: RenamingState, op: Op, result: Any) -> RenamingState:
        inner = self.snapshot_machine.apply(state.inner, op, result)
        snapshot = self.snapshot_machine.output(inner)
        if snapshot is None:
            return RenamingState(inner=inner, my_id=state.my_id)
        return RenamingState(
            inner=inner,
            my_id=state.my_id,
            name=bar_noy_dolev_name(snapshot, state.my_id),
        )

    def output(self, state: RenamingState) -> Optional[int]:
        """The acquired name, or ``None`` while still running."""
        return state.name

    # -- Symmetry hooks (repro.checker.symmetry) ------------------------
    # The machine is value-equivariant in the group identifiers: the
    # embedded snapshot machine is fully equivariant, and the name is a
    # *pure function* of (snapshot, my_id) — so the image of a done
    # state under a renaming is the done state whose name is recomputed
    # from the renamed snapshot and renamed identifier.  The rank
    # itself is not preserved (tau need not be monotone), and does not
    # have to be: equivariance requires commuting with the transition
    # function, and the final transition recomputes the name from
    # scratch exactly as done here.
    def rename_inputs(self, state: RenamingState, mapping) -> RenamingState:
        """Image of a local state under a group-id renaming ``mapping``."""
        inner = self.snapshot_machine.rename_inputs(state.inner, mapping)
        my_id = mapping.get(state.my_id, state.my_id)
        if state.name is None:
            return RenamingState(inner=inner, my_id=my_id)
        snapshot = self.snapshot_machine.output(inner)
        assert snapshot is not None  # name set => embedded snapshot done
        return RenamingState(
            inner=inner,
            my_id=my_id,
            name=bar_noy_dolev_name(snapshot, my_id),
        )

    def rename_register_value(self, value: RegisterRecord, mapping) -> RegisterRecord:
        """Image of a register record under a group-id renaming."""
        return self.snapshot_machine.rename_register_value(value, mapping)

    def snapshot_used(self, state: RenamingState) -> Optional[View]:
        """The snapshot the name was derived from (analysis helper)."""
        return self.snapshot_machine.output(state.inner)
