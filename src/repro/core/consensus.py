"""Obstruction-free consensus (Figure 5, Section 7).

The paper derandomizes Chandra's shared-coin consensus (as Guerraoui &
Ruppert did for processor anonymity) on top of the long-lived snapshot:

- each processor maintains a preference (initially its consensus input)
  and a monotonically increasing timestamp (initially 0);
- it repeatedly invokes the long-lived snapshot with input
  ``(preference, timestamp)``;
- upon obtaining a snapshot, it *decides* a value ``v`` if ``v`` appears
  with a timestamp at least 2 greater than the highest timestamp of any
  other value; otherwise it adopts the value with the highest timestamp
  as its preference, sets its timestamp to the highest timestamp plus
  one, and invokes again.

All communication happens through the long-lived snapshot, so there is
no interference between consensus steps and snapshot steps (Section 7).
The algorithm is obstruction-free: a processor running solo adopts the
leading value and then climbs two timestamps ahead, deciding; it is not
wait-free (a symmetric adversary can alternate two processors forever —
benchmark E8 demonstrates the livelock).

Ties on the highest timestamp are broken deterministically (smallest
value under Python ordering); the tie-break is the same pure function in
every processor, as anonymity demands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, Optional, Tuple

from repro.core.long_lived import LongLivedSnapshotMachine
from repro.core.snapshot import SnapshotState
from repro.core.views import RegisterRecord, View
from repro.sim.ops import Op


@dataclass(frozen=True)
class TimestampedValue:
    """The records processors feed to the long-lived snapshot."""

    value: Hashable
    timestamp: int

    def __repr__(self) -> str:
        return f"({self.value!r}@{self.timestamp})"


def max_timestamps(snapshot: View) -> Dict[Hashable, int]:
    """Highest timestamp per value in a snapshot of timestamped records."""
    best: Dict[Hashable, int] = {}
    for record in snapshot:
        if not isinstance(record, TimestampedValue):
            raise TypeError(f"expected TimestampedValue, got {record!r}")
        current = best.get(record.value)
        if current is None or record.timestamp > current:
            best[record.value] = record.timestamp
    return best


def decide_or_adopt(snapshot: View) -> Tuple[Optional[Hashable], Hashable, int]:
    """Chandra's rule on one snapshot.

    Returns ``(decision, preference, timestamp)``: ``decision`` is
    non-``None`` when some value leads every other value by at least 2
    — where a value not appearing in the snapshot counts as having
    timestamp 0, so a decision always requires the winner to have
    reached timestamp at least 2 (this is what makes a freshly-started
    solo run climb two rounds before deciding, and it is essential for
    agreement).  Otherwise ``preference``/``timestamp`` are the adopted
    value (highest timestamp, deterministic tie-break) and the next
    timestamp to use.

    The ``repr``-ordered tie-break makes this function — and hence
    :class:`ConsensusMachine` — *not* equivariant under renaming of the
    proposal values, so the machine deliberately provides no
    ``rename_inputs``/``rename_register_value`` symmetry hooks (see
    :mod:`repro.checker.symmetry`): the symmetry-reduced checker then
    restricts itself to the input-preserving subgroup, which is sound.
    """
    best = max_timestamps(snapshot)
    if not best:
        raise ValueError("snapshot contains no timestamped values")
    top_ts = max(best.values())
    leaders = sorted(
        (value for value, ts in best.items() if ts == top_ts),
        key=repr,
    )
    leader = leaders[0]
    others = [ts for value, ts in best.items() if value != leader]
    runner_up = max(others, default=0)  # absent values count as timestamp 0
    if len(leaders) == 1 and top_ts >= runner_up + 2:
        return leader, leader, top_ts
    return None, leader, top_ts + 1


@dataclass(frozen=True)
class ConsensusState:
    """Local state: embedded long-lived snapshot + the Chandra race."""

    inner: SnapshotState
    preference: Hashable
    timestamp: int
    decision: Optional[Hashable] = None

    @property
    def done(self) -> bool:
        return self.decision is not None


class ConsensusMachine:
    """The Figure 5 algorithm as a state machine.

    The processor's input is its (group) value to propose.  Decision is
    the write-once output.
    """

    #: Every op comes from the inner snapshot machine; the footprint is
    #: resolved through the delegation chain (anonlint POR002).
    por_footprint = "delegate"

    def __init__(
        self,
        n_processors: int,
        n_registers: Optional[int] = None,
        level_target: Optional[int] = None,
    ) -> None:
        self.snapshot_machine = LongLivedSnapshotMachine(
            n_processors, n_registers, level_target
        )
        self.n_processors = n_processors
        self.n_registers = self.snapshot_machine.n_registers

    # -- AlgorithmMachine protocol -------------------------------------
    def initial_state(self, my_input: Hashable) -> ConsensusState:
        first = TimestampedValue(my_input, 0)
        return ConsensusState(
            inner=self.snapshot_machine.initial_state(first),
            preference=my_input,
            timestamp=0,
        )

    def register_initial_value(self) -> RegisterRecord:
        return self.snapshot_machine.register_initial_value()

    def enabled_ops(self, state: ConsensusState) -> Tuple[Op, ...]:
        if state.done:
            return ()
        return self.snapshot_machine.enabled_ops(state.inner)

    def apply(self, state: ConsensusState, op: Op, result: Any) -> ConsensusState:
        inner = self.snapshot_machine.apply(state.inner, op, result)
        if not self.snapshot_machine.is_ready(inner):
            return ConsensusState(
                inner=inner,
                preference=state.preference,
                timestamp=state.timestamp,
            )
        # The invocation completed: run Chandra's rule and either decide
        # or immediately re-invoke (local computation, merged into the
        # final read step of the scan).
        snapshot = self.snapshot_machine.output(inner)
        decision, preference, timestamp = decide_or_adopt(snapshot)
        if decision is not None:
            return ConsensusState(
                inner=inner,
                preference=preference,
                timestamp=state.timestamp,
                decision=decision,
            )
        reinvoked = self.snapshot_machine.invoke(
            inner, TimestampedValue(preference, timestamp)
        )
        return ConsensusState(
            inner=reinvoked, preference=preference, timestamp=timestamp
        )

    def output(self, state: ConsensusState) -> Optional[Hashable]:
        """The decided value, or ``None`` while undecided."""
        return state.decision
