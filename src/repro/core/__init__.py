"""The paper's algorithms, implemented as pure state machines.

- :mod:`repro.core.views` — value types: views (sets of inputs) and the
  ``(view, level)`` register records of the snapshot algorithm.
- :mod:`repro.core.write_scan` — the write-scan loop of Figure 1 /
  Section 4 (no termination; the object of the eventual-pattern study).
- :mod:`repro.core.snapshot` — the wait-free group solution to the
  snapshot task, Figure 3 / Section 5 (the main contribution).
- :mod:`repro.core.long_lived` — the long-lived snapshot of Section 7.
- :mod:`repro.core.renaming` — adaptive renaming via Bar-Noy–Dolev
  rank-in-snapshot, Figure 4 / Section 6.
- :mod:`repro.core.consensus` — obstruction-free consensus via the
  derandomized Chandra race, Figure 5 / Section 7.

All machines are anonymous by construction: they are parameterized only
by ``(n_processors, n_registers)`` and the processor's private input.
"""

from repro.core.consensus import ConsensusMachine, ConsensusState, TimestampedValue
from repro.core.long_lived import LongLivedSnapshotMachine, LongLivedState
from repro.core.renaming import RenamingMachine, RenamingState, bar_noy_dolev_name
from repro.core.snapshot import SnapshotMachine, SnapshotState
from repro.core.views import RegisterRecord, View, view
from repro.core.write_scan import WriteScanMachine, WriteScanState

__all__ = [
    "View",
    "view",
    "RegisterRecord",
    "WriteScanMachine",
    "WriteScanState",
    "SnapshotMachine",
    "SnapshotState",
    "LongLivedSnapshotMachine",
    "LongLivedState",
    "RenamingMachine",
    "RenamingState",
    "bar_noy_dolev_name",
    "ConsensusMachine",
    "ConsensusState",
    "TimestampedValue",
]
