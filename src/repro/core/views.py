"""Value types shared by the paper's algorithms.

A *view* (Section 4) is the set of input values a processor knows about.
Views only ever grow.  We represent views as ``frozenset`` — immutable
and hashable, as required by the state-machine architecture — with a
small helper for readable construction.

The snapshot algorithm's registers hold records with two components,
``view`` and ``level`` (Section 5.2); :class:`RegisterRecord` is that
record.  The empty record (empty view, level 0) is the known default
value all registers start with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable

View = FrozenSet[Hashable]


def view(*values: Hashable) -> View:
    """Construct a view from the given values: ``view(1, 2) == frozenset({1, 2})``."""
    return frozenset(values)


def comparable(first: Iterable[Hashable], second: Iterable[Hashable]) -> bool:
    """Whether two views are related by containment (either direction).

    This is the snapshot task's central condition (Definition 3.2).
    """
    first_set = frozenset(first)
    second_set = frozenset(second)
    return first_set <= second_set or second_set <= first_set


def all_comparable(views: Iterable[Iterable[Hashable]]) -> bool:
    """Whether every pair in ``views`` is related by containment.

    A finite family of sets is pairwise comparable iff it forms a chain,
    which we check in ``O(k log k)`` by sorting on cardinality.
    """
    chain = sorted((frozenset(entry) for entry in views), key=len)
    return all(small <= large for small, large in zip(chain, chain[1:]))


@dataclass(frozen=True)
class RegisterRecord:
    """Contents of one register in the snapshot algorithm: ``(view, level)``.

    Initially every register holds an empty view and level 0
    (Section 5.2: "each initially a record with two components: an empty
    view ... and a level ... of 0").
    """

    view: View = frozenset()
    level: int = 0

    def __repr__(self) -> str:
        inner = "{" + ",".join(map(repr, sorted(self.view, key=repr))) + "}"
        return f"<{inner}|{self.level}>"


EMPTY_RECORD = RegisterRecord()
