"""The wait-free snapshot algorithm (Figure 3, Section 5).

The paper's main algorithmic contribution: a wait-free group solution to
the snapshot task in the fully-anonymous model, using only ``N``
registers for ``N`` processors.

Each register holds a :class:`~repro.core.views.RegisterRecord`
``(view, level)``, initially ``(∅, 0)``.  Each processor keeps a view
(initialized to the singleton of its own input) and a level in
``0..N`` (initialized to 0), and alternates:

- **write phase**: pick any register not yet written since the last
  full fairness cycle and write ``(view, level)`` to it;
- **scan phase**: read all registers one by one; at the end of the scan,
  if every register's view equalled the processor's own view, set
  ``level := min(levels read) + 1``, otherwise ``level := 0``; then add
  all views read to the own view.

A processor terminates and outputs its view as its snapshot upon
reaching level ``N`` (footnote 4 of the paper notes ``N-1`` already
suffices; ``level_target`` exposes that variant, and the model-checking
experiments verify both).

The level mechanism is the paper's answer to the "eventual pattern"
pathology (Figure 2): a processor can only climb to level ``N`` if a
chain of processors behind it each read the same view everywhere, which
makes the view durably stored despite interference (Definition 5.1 and
Lemma 5.3) and therefore a safe snapshot output.

Internal nondeterminism: the choice of which unwritten register to write
("picks a register that it has not written to since it last wrote all
the registers") is left open; ``enabled_ops`` returns all choices and
the model checker branches over every one.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Hashable, Optional, Tuple

from repro.core.views import RegisterRecord, View
from repro.sim.ops import Op, Read, Write

PHASE_WRITE = "write"
PHASE_SCAN = "scan"
PHASE_DONE = "done"

#: Sentinel for "no level read yet" at the start of a scan; any real
#: level is smaller.
_NO_LEVEL = None


@dataclass(frozen=True)
class SnapshotState:
    """Immutable local state of one snapshot processor.

    The representation quotients away bookkeeping the algorithm can
    never observe, which matters for model checking (fewer distinct
    states) without changing any behaviour:

    - the scan accumulator of the pseudocode is folded into ``view``
      eagerly: while ``scan_all_match`` holds, every view read equals
      the own view (so there is nothing to accumulate), and the moment
      it fails the scan's level is 0 regardless, so growing ``view``
      immediately is indistinguishable from growing it at scan end —
      the view is only externally visible through writes, which happen
      in the write phase;
    - ``scan_min_level`` is reset to ``None`` once ``scan_all_match``
      fails, because it is only consulted when the whole scan matched.
    """

    #: Inputs known so far; contains the own input, never shrinks.
    view: View
    #: Current level, 0..level_target.
    level: int = 0
    #: Local register indices not yet written in the current cycle.
    unwritten: frozenset = frozenset()
    phase: str = PHASE_WRITE
    #: Next local register index to read (scan phase only).
    scan_pos: int = 0
    #: Whether every view read so far this scan equals the own view.
    scan_all_match: bool = True
    #: Minimum level read so far this scan (None before the first read,
    #: and canonically None after the scan stopped matching).
    scan_min_level: Optional[int] = None

    @property
    def done(self) -> bool:
        return self.phase == PHASE_DONE


class SnapshotMachine:
    """The Figure 3 algorithm as a state machine.

    Parameters
    ----------
    n_processors:
        The paper's ``N``.  Processors know ``N`` (Section 2).
    n_registers:
        Number of shared registers; the paper uses exactly ``N``.  Other
        values are allowed to support the register-count ablation (E9).
    level_target:
        Level at which a processor terminates; defaults to ``N``.  The
        paper's footnote 4 notes ``N-1`` is already sufficient.
    """

    #: Declared write/scan footprint, certified against the statically
    #: inferred one by anonlint POR002 and replayed on BFS-sampled
    #: states by `repro lint --dynamic`: writes only target registers
    #: still in the local ``unwritten`` set; scans may read anything.
    por_footprint = {"writes": "unwritten", "reads": "all"}

    def __init__(
        self,
        n_processors: int,
        n_registers: Optional[int] = None,
        level_target: Optional[int] = None,
    ) -> None:
        if n_processors < 1:
            raise ValueError("need at least one processor")
        self.n_processors = n_processors
        self.n_registers = n_processors if n_registers is None else n_registers
        if self.n_registers <= 0:
            raise ValueError("need at least one register")
        self.level_target = n_processors if level_target is None else level_target
        if self.level_target < 1:
            raise ValueError("level target must be at least 1")
        self._all_registers = frozenset(range(self.n_registers))

    # -- AlgorithmMachine protocol -------------------------------------
    def initial_state(self, my_input: Hashable) -> SnapshotState:
        return SnapshotState(
            view=frozenset({my_input}), unwritten=self._all_registers
        )

    def register_initial_value(self) -> RegisterRecord:
        return RegisterRecord()

    def enabled_ops(self, state: SnapshotState) -> Tuple[Op, ...]:
        if state.phase == PHASE_DONE:
            return ()
        if state.phase == PHASE_WRITE:
            record = RegisterRecord(view=state.view, level=state.level)
            return tuple(Write(reg, record) for reg in sorted(state.unwritten))
        return (Read(state.scan_pos),)

    def apply(self, state: SnapshotState, op: Op, result: Any) -> SnapshotState:
        if isinstance(op, Write):
            return self._apply_write(state, op)
        return self._apply_read(state, op, result)

    def output(self, state: SnapshotState) -> Optional[View]:
        """The snapshot: the view, once level ``level_target`` is reached."""
        if state.phase == PHASE_DONE:
            return state.view
        return None

    # -- Symmetry hooks (repro.checker.symmetry) ------------------------
    # The transition function only ever compares views for equality and
    # unions them, so it commutes with any bijective renaming of the
    # input values: the machine is fully value-equivariant, and the
    # symmetry-reduced checker may use group elements that rename
    # inputs.  Machines without this property (e.g. consensus, whose
    # tie-break orders proposals by repr) must NOT provide these hooks.
    def rename_inputs(self, state: SnapshotState, mapping) -> SnapshotState:
        """Image of a local state under an input renaming ``mapping``."""
        return replace(
            state,
            view=frozenset(mapping.get(value, value) for value in state.view),
        )

    def rename_register_value(self, value: RegisterRecord, mapping) -> RegisterRecord:
        """Image of a register record under an input renaming ``mapping``."""
        return RegisterRecord(
            view=frozenset(mapping.get(v, v) for v in value.view),
            level=value.level,
        )

    # -- Transitions ----------------------------------------------------
    def _apply_write(self, state: SnapshotState, op: Write) -> SnapshotState:
        if state.phase != PHASE_WRITE or op.reg not in state.unwritten:
            raise ValueError(f"write {op!r} not enabled in {state!r}")
        remaining = state.unwritten - {op.reg}
        if not remaining:
            remaining = self._all_registers  # fairness cycle complete
        return replace(
            state,
            unwritten=remaining,
            phase=PHASE_SCAN,
            scan_pos=0,
            scan_all_match=True,
            scan_min_level=None,
        )

    def _apply_read(
        self, state: SnapshotState, op: Read, result: Any
    ) -> SnapshotState:
        if state.phase != PHASE_SCAN or op.reg != state.scan_pos:
            raise ValueError(f"read {op!r} not enabled in {state!r}")
        if not isinstance(result, RegisterRecord):
            raise TypeError(f"snapshot registers hold records, got {result!r}")
        all_match = state.scan_all_match and result.view == state.view
        if all_match:
            view = state.view
            if state.scan_min_level is None:
                min_level: Optional[int] = result.level
            else:
                min_level = min(state.scan_min_level, result.level)
        else:
            # The scan can no longer end with a level increase; fold the
            # read into the view now and drop the level bookkeeping
            # (see the SnapshotState docstring for why this is sound).
            view = state.view | result.view
            min_level = None
        next_pos = state.scan_pos + 1
        if next_pos < self.n_registers:
            return replace(
                state,
                view=view,
                scan_pos=next_pos,
                scan_all_match=all_match,
                scan_min_level=min_level,
            )
        return self._finish_scan(state, view, all_match, min_level)

    def _finish_scan(
        self,
        state: SnapshotState,
        view: View,
        all_match: bool,
        min_level: Optional[int],
    ) -> SnapshotState:
        """Fold the completed scan into the local state (atomic with the
        last read, per the PlusCal label structure)."""
        if all_match:
            assert min_level is not None
            new_level = min_level + 1
        else:
            new_level = 0
        if new_level >= self.level_target:
            # Canonicalize the fields a terminated processor can never
            # use again (it takes no further steps); this quotients away
            # distinctions the model checker would otherwise explore.
            return replace(
                state,
                view=view,
                level=new_level,
                unwritten=frozenset(),
                phase=PHASE_DONE,
                scan_pos=0,
                scan_all_match=True,
                scan_min_level=None,
            )
        return replace(
            state,
            view=view,
            level=new_level,
            phase=PHASE_WRITE,
            scan_pos=0,
            scan_all_match=True,
            scan_min_level=None,
        )
