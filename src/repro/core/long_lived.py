"""The long-lived snapshot (Section 7).

In a long-lived snapshot, a processor that has produced an output can
invoke the snapshot again with a new input, receive a new output, invoke
again, and so on.  The guarantees (Section 7):

- outputs only contain input values of participating processors,
- the output of each processor contains all the values it has used as
  inputs so far,
- every two outputs are related by containment.

The paper obtains it by "tweaking" the single-shot algorithm of
Figure 3: processors keep their local state between invocations and, on
a new invocation, simply reset their level to 0 and add the new input to
their view.  Since the single-shot algorithm is wait-free, the long-lived
one is non-blocking and obstruction-free.

Concretely, :class:`LongLivedSnapshotMachine` extends
:class:`~repro.core.snapshot.SnapshotMachine` with a ``ready`` phase: on
reaching the level target, the processor parks with its output available
instead of terminating; the client (e.g. the consensus algorithm of
:mod:`repro.core.consensus`) collects the output and calls
:meth:`~LongLivedSnapshotMachine.invoke` to start the next invocation.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Hashable, Optional, Tuple

from repro.core.snapshot import (
    PHASE_SCAN,
    PHASE_WRITE,
    SnapshotMachine,
    SnapshotState,
)
from repro.core.views import View
from repro.sim.ops import Op

PHASE_READY = "ready"

#: Alias: long-lived snapshots reuse the single-shot state shape; only
#: the phase values differ (``ready`` instead of ``done``).
LongLivedState = SnapshotState


class LongLivedSnapshotMachine(SnapshotMachine):
    """Long-lived variant of the Figure 3 snapshot algorithm.

    The machine never terminates by itself: reaching the level target
    parks it in the ``ready`` phase (no enabled operations) until the
    client calls :meth:`invoke` with the next input.
    """

    # -- AlgorithmMachine protocol overrides -----------------------------
    def enabled_ops(self, state: SnapshotState) -> Tuple[Op, ...]:
        if state.phase == PHASE_READY:
            return ()
        return super().enabled_ops(state)

    def output(self, state: SnapshotState) -> Optional[View]:
        """The output of the invocation that just completed, if ready."""
        if state.phase == PHASE_READY:
            return state.view
        return None

    # -- Long-lived interface --------------------------------------------
    def is_ready(self, state: SnapshotState) -> bool:
        """Whether the current invocation has produced its output."""
        return state.phase == PHASE_READY

    def invoke(self, state: SnapshotState, new_input: Hashable) -> SnapshotState:
        """Start the next invocation (Section 7's "tweak").

        Resets the level to 0 and adds ``new_input`` to the view; all
        other local state (in particular the write-fairness cycle)
        carries over.
        """
        if state.phase not in (PHASE_READY, PHASE_WRITE, PHASE_SCAN):
            raise ValueError(f"cannot invoke from phase {state.phase!r}")
        return replace(
            state,
            view=state.view | {new_input},
            level=0,
            phase=PHASE_WRITE,
            scan_pos=0,
            scan_all_match=True,
            scan_min_level=None,
        )

    # -- Transition override ----------------------------------------------
    def _finish_scan(self, state, view, all_match, min_level):
        finished = super()._finish_scan(state, view, all_match, min_level)
        if finished.phase == "done":
            # Park as ready instead of terminating.  The single-shot
            # machine canonicalizes ``unwritten`` away on termination,
            # but a long-lived processor keeps its local state across
            # invocations (Section 7) — restore the fairness cycle.
            return replace(
                finished, phase=PHASE_READY, unwritten=state.unwritten
            )
        return finished
