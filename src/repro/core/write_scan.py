"""The write-scan loop (Figure 1, Section 4).

Each processor gets an arbitrary input and then indefinitely alternates
between:

- a *write* phase: write its current view to one register it has not
  written since it last wrote all of them ("issues writes fairly"), and
- a *scan* phase: read all registers one by one, then add everything it
  read to its view.

The loop never terminates; it is the object of the eventual-pattern
study: in any infinite execution, the *stable views* (Definition 4.2)
form a DAG under strict containment with a unique source (Theorem 4.8).
The pathological execution of Figure 2 is an execution of this loop; see
:mod:`repro.sim.scripted`.

Atomicity granularity matches the PlusCal spec: one write = one step;
each of the ``M`` reads of a scan = one step; the end-of-scan view update
merges into the last read step.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Hashable, Optional, Tuple

from repro.core.views import View
from repro.sim.ops import Op, Read, Write

#: Phase markers.  The processor is either about to write one register or
#: partway through reading all of them.
PHASE_WRITE = "write"
PHASE_SCAN = "scan"


@dataclass(frozen=True)
class WriteScanState:
    """Immutable local state of one write-scan processor."""

    #: The set of input values known so far; contains the own input and
    #: never shrinks.
    view: View
    #: Local register indices not yet written in the current fairness
    #: cycle.  Never empty in the write phase: it is refilled the moment
    #: the last register of a cycle is written.
    unwritten: frozenset = frozenset()
    phase: str = PHASE_WRITE
    #: Next local register index to read (scan phase only).
    scan_pos: int = 0


class WriteScanMachine:
    """The Figure 1 algorithm as a state machine.

    Parameters
    ----------
    n_registers:
        The number of shared registers ``M`` (each processor knows it).
    """

    #: Declared write/scan footprint (certified by anonlint POR002):
    #: writes only target the local ``unwritten`` set, scans may read
    #: any register.
    por_footprint = {"writes": "unwritten", "reads": "all"}

    def __init__(self, n_registers: int) -> None:
        if n_registers <= 0:
            raise ValueError("need at least one register")
        self.n_registers = n_registers
        self._all_registers = frozenset(range(n_registers))

    # -- AlgorithmMachine protocol -------------------------------------
    def initial_state(self, my_input: Hashable) -> WriteScanState:
        return WriteScanState(
            view=frozenset({my_input}), unwritten=self._all_registers
        )

    def register_initial_value(self) -> View:
        """Registers hold plain views; initially the empty view."""
        return frozenset()

    def enabled_ops(self, state: WriteScanState) -> Tuple[Op, ...]:
        if state.phase == PHASE_WRITE:
            return tuple(
                Write(reg, state.view) for reg in sorted(state.unwritten)
            )
        return (Read(state.scan_pos),)

    def apply(self, state: WriteScanState, op: Op, result: Any) -> WriteScanState:
        if isinstance(op, Write):
            return self._apply_write(state, op)
        return self._apply_read(state, op, result)

    def output(self, state: WriteScanState) -> Optional[Any]:
        return None  # the loop never terminates

    # -- Transitions ----------------------------------------------------
    def _apply_write(self, state: WriteScanState, op: Write) -> WriteScanState:
        if state.phase != PHASE_WRITE or op.reg not in state.unwritten:
            raise ValueError(f"write {op!r} not enabled in {state!r}")
        remaining = state.unwritten - {op.reg}
        if not remaining:
            remaining = self._all_registers  # fairness cycle complete
        return replace(
            state,
            unwritten=remaining,
            phase=PHASE_SCAN,
            scan_pos=0,
        )

    def _apply_read(
        self, state: WriteScanState, op: Read, result: Any
    ) -> WriteScanState:
        if state.phase != PHASE_SCAN or op.reg != state.scan_pos:
            raise ValueError(f"read {op!r} not enabled in {state!r}")
        # The pseudocode accumulates the scan's reads and folds them into
        # the view at the end; since the view is only externally visible
        # through writes (which happen in the write phase), folding each
        # read in immediately is indistinguishable and keeps the state
        # smaller for model checking and lasso detection.
        view = state.view | result
        next_pos = state.scan_pos + 1
        if next_pos < self.n_registers:
            return replace(state, view=view, scan_pos=next_pos)
        return replace(state, view=view, phase=PHASE_WRITE, scan_pos=0)
