"""Baselines from the paper's related-work lineage (Section 8).

These algorithms assume *stronger* models than the fully-anonymous one;
the benchmark harness (E10) compares them against the paper's algorithm
to show the price of anonymity, and the tests show exactly where each
breaks when its model assumption is taken away:

- :mod:`repro.baselines.double_collect` — the classic non-anonymous
  single-writer snapshot: lock-free double collect, and the Afek et al.
  style wait-free variant with embedded-scan helping;
- :mod:`repro.baselines.guerraoui_ruppert` — the Guerraoui–Ruppert
  (2005) processor-anonymous snapshot built on a *weak counter* that
  races along an ordered array of registers; possible with named memory,
  impossible with anonymous memory (no common register order exists —
  the paper's Section 1 observation, demonstrated by test);
- :mod:`repro.baselines.naive_fully_anonymous` — the natural-but-wrong
  "terminate on a clean double collect" rule in the fully-anonymous
  model, refuted by the Figure 2 extension (E2).
"""

from repro.baselines.double_collect import (
    afek_style_snapshot_process,
    lock_free_snapshot_process,
)
from repro.baselines.guerraoui_ruppert import (
    WEAK_COUNTER_FAILED,
    gr_snapshot_process,
    weak_counter_process,
)
from repro.baselines.naive_fully_anonymous import (
    NaiveDoubleCollectMachine,
    double_collect_outputs_from_trace,
)

__all__ = [
    "lock_free_snapshot_process",
    "afek_style_snapshot_process",
    "weak_counter_process",
    "gr_snapshot_process",
    "WEAK_COUNTER_FAILED",
    "NaiveDoubleCollectMachine",
    "double_collect_outputs_from_trace",
]
