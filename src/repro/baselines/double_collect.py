"""Non-anonymous snapshot baselines (Afek et al. 1993 lineage).

These run in the classic model the paper contrasts with: processors have
identifiers and each owns a single-writer register (register ``pid``,
with the identity wiring — no anonymity of any kind).  They are the
"what you get when nothing is anonymous" reference points of benchmark
E10.

- :func:`lock_free_snapshot_process` — update own register with a
  sequence-numbered value, then repeat full collects until two
  consecutive collects are identical ("clean double collect"); returns
  the union of values in the clean collect.  Lock-free, not wait-free:
  a scanner can starve while writers keep moving.
- :func:`afek_style_snapshot_process` — Afek et al.'s helping idea:
  every update embeds the writer's own most recent scan result; a
  scanner that observes the same register change *twice* borrows the
  embedded scan of the second change (that scan is entirely contained
  in the scanner's interval).  Wait-free: at most ``N`` retries before a
  borrow is guaranteed.

Both are generator processes (:class:`repro.sim.process.GeneratorProcess`):
they live outside the paper's model, so they do not need the
state-machine/model-checking machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Generator, Hashable, List, Optional, Tuple

from repro.sim.ops import Op, Read, Write


@dataclass(frozen=True)
class SWMRRecord:
    """Contents of a single-writer register."""

    value: Hashable
    seq: int
    #: The writer's last completed scan (Afek-style helping); None in
    #: the plain lock-free variant.
    embedded_scan: Optional[FrozenSet[Hashable]] = None


def _collect(n_registers: int) -> Generator[Op, Any, Tuple[Any, ...]]:
    """Read all registers once; returns the tuple of records."""
    records: List[Any] = []
    for reg in range(n_registers):
        record = yield Read(reg)
        records.append(record)
    return tuple(records)


def _values_of(collect: Tuple[Any, ...]) -> FrozenSet[Hashable]:
    return frozenset(
        record.value for record in collect if isinstance(record, SWMRRecord)
    )


def lock_free_snapshot_process(
    n_processors: int, pid: int, my_input: Hashable
) -> Generator[Op, Any, FrozenSet[Hashable]]:
    """Update-then-scan with clean double collect (lock-free).

    The process writes ``(my_input, seq)`` to register ``pid`` (its own
    single-writer register), then collects until two consecutive
    collects are equal, returning the values of the clean collect.
    """
    # Single-writer named memory by design: this baseline runs in the
    # classic non-anonymous model (register `pid` is the processor's
    # own), which is exactly the contrast E10 measures.
    yield Write(pid, SWMRRecord(value=my_input, seq=0))  # anonlint: disable=ANON002
    previous = yield from _collect(n_processors)
    # Lock-free, deliberately not wait-free: a scanner starves while
    # writers keep moving — the negative reference point.
    while True:  # anonlint: disable=WF001
        current = yield from _collect(n_processors)
        if current == previous:
            return _values_of(current)
        previous = current


def afek_style_snapshot_process(
    n_processors: int, pid: int, my_input: Hashable
) -> Generator[Op, Any, FrozenSet[Hashable]]:
    """Wait-free update-and-scan with embedded-scan helping.

    The update embeds the writer's own scan, and scans borrow from
    twice-moved writers, bounding the number of collect retries by the
    number of processors.
    """

    def scan() -> Generator[Op, Any, FrozenSet[Hashable]]:
        moved: dict = {}
        previous = yield from _collect(n_processors)
        while True:
            current = yield from _collect(n_processors)
            if current == previous:
                return _values_of(current)
            for reg in range(n_processors):
                old, new = previous[reg], current[reg]
                old_seq = old.seq if isinstance(old, SWMRRecord) else -1
                new_seq = new.seq if isinstance(new, SWMRRecord) else -1
                if new_seq > old_seq:
                    if reg in moved and new.embedded_scan is not None:
                        # Second observed move: the embedded scan began
                        # after our scan started — borrow it.
                        return new.embedded_scan
                    moved[reg] = True
            previous = current

    # First write: no scan to embed yet; embed the trivial self-view so
    # borrowers still satisfy self-inclusion.  (Named single-writer
    # memory by design, as above.)
    yield Write(pid, SWMRRecord(value=my_input, seq=0,  # anonlint: disable=ANON002
                                embedded_scan=frozenset({my_input})))
    result = yield from scan()
    # Publish the completed scan so later borrowers can use it.
    yield Write(pid, SWMRRecord(value=my_input, seq=1, embedded_scan=result))  # anonlint: disable=ANON002
    return result
