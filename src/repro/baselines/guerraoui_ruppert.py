"""Guerraoui–Ruppert style processor-anonymous snapshot (named memory).

Guerraoui & Ruppert (2005) showed that with anonymous *processors* but
named *memory*, wait-free atomic memory snapshots are possible.  Their
key gadget is a **weak counter**: processors race, from a *common
starting position*, along a one-direction array of binary registers to
be the first to set a bit; the index of the first unset bit acts as a
(weak) counter.  The construction relies essentially on the shared
register order — which is precisely what memory anonymity removes, as
the paper's introduction points out ("there is no way to even define a
common starting register for the race or a shared ordering of the
registers to race through").

This module implements a faithful-in-spirit, simplified version:

- :func:`weak_counter_process` — ``get-and-increment``: scan the bit
  array from position 0, set the first bit read as 0, return its index.
  (GR's full version adds helping for wait-freedom; the simplified race
  preserves exactly the property anonymity breaks, which is what the
  experiments need.  The simplification is documented in DESIGN.md.)
- :func:`gr_snapshot_process` — update-and-scan built on the counter:
  an update writes ``(value, counter_ticket)``; a scan repeats collects
  until two consecutive collects agree *and* the counter has not moved,
  returning the values seen.  Obstruction-free as written.

Under the identity wiring (named memory) the counter tickets are
distinct and monotone.  Under random wirings (anonymous memory) two
processors can grab the *same* ticket — the demonstration used by the
tests and benchmark E10.  :data:`WEAK_COUNTER_FAILED` is returned by
the counter when it runs off the end of the array.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Generator, Hashable, List, Tuple

from repro.sim.ops import Op, Read, Write

#: Sentinel ticket when the counter array is exhausted.
WEAK_COUNTER_FAILED = -1

#: Register layout for the GR snapshot: the first ``n_values`` registers
#: hold value records, the remaining ones form the counter bit array.


@dataclass(frozen=True)
class GRRecord:
    """A value register's contents: the value plus its counter ticket."""

    value: Hashable
    ticket: int


def weak_counter_process(
    n_bits: int, base_register: int = 0
) -> Generator[Op, Any, int]:
    """One ``get-and-increment`` on the bit-array weak counter.

    Scans local registers ``base_register .. base_register+n_bits-1``
    in order for the first bit equal to 0, writes 1 there, and returns
    its index.  Correctness (distinct, roughly ordered tickets) depends
    on every processor scanning the *same* register order — true with
    named memory, false with anonymous memory.
    """
    for index in range(n_bits):
        bit = yield Read(base_register + index)
        if not bit:
            yield Write(base_register + index, 1)
            return index
    return WEAK_COUNTER_FAILED


def gr_snapshot_process(
    n_values: int,
    n_counter_bits: int,
    my_slot: int,
    my_input: Hashable,
) -> Generator[Op, Any, FrozenSet[Hashable]]:
    """Update-and-scan snapshot with weak-counter interference detection.

    ``my_slot`` is the value register this processor updates.  (GR avoid
    per-processor slots via more machinery; slots keep the baseline
    focused on the counter, which is the part anonymity breaks.)
    """
    ticket = yield from weak_counter_process(n_counter_bits, base_register=n_values)
    yield Write(my_slot, GRRecord(value=my_input, ticket=ticket))

    def collect() -> Generator[Op, Any, Tuple[Any, ...]]:
        records: List[Any] = []
        for reg in range(n_values):
            record = yield Read(reg)
            records.append(record)
        return tuple(records)

    previous = yield from collect()
    # Obstruction-free as written (GR's model): the double collect plus
    # counter re-check terminates only once interference stops, so
    # there is deliberately no wait-freedom progress guard.
    while True:  # anonlint: disable=WF001
        current = yield from collect()
        counter_now = yield from _read_counter(n_values, n_counter_bits)
        if current == previous:
            counter_again = yield from _read_counter(n_values, n_counter_bits)
            if counter_now == counter_again:
                return frozenset(
                    record.value
                    for record in current
                    if isinstance(record, GRRecord)
                )
        previous = current


def _read_counter(
    n_values: int, n_bits: int
) -> Generator[Op, Any, int]:
    """Read the counter value: index of the first unset bit."""
    for index in range(n_bits):
        bit = yield Read(n_values + index)
        if not bit:
            return index
    return n_bits
