"""The naive "clean double collect" rule in the fully-anonymous model.

Section 4 of the paper opens with the question: when can a write-scan
processor terminate and declare its view a snapshot?  "Reading the same
set of values in every register" does not work, and "neither does a
double collect" — the five-processor extension of Figure 2 (experiment
E2) exhibits processors ``p`` and ``p'`` that read constant, equal
collects forever yet hold incomparable views ``{1,2}`` and ``{1,3}``.

This module makes that negative result executable in two ways:

- :class:`NaiveDoubleCollectMachine` — the write-scan loop terminating
  after two consecutive identical collects; correct-looking under benign
  schedules, refuted under the E2 schedule;
- :func:`double_collect_outputs_from_trace` — evaluates the
  double-collect termination rule *post hoc* on any write-scan trace:
  for each processor, the view it would have output at its first clean
  double collect.  Applying it to the E2 execution yields the
  incomparable outputs without having to re-align the scripted schedule
  to a different op pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.core.views import View
from repro.core.write_scan import WriteScanMachine, WriteScanState
from repro.memory.trace import ReadEvent, Trace
from repro.sim.ops import Op, Write

PHASE_DONE = "done"


@dataclass(frozen=True)
class NaiveState:
    """Write-scan state plus the double-collect bookkeeping."""

    inner: WriteScanState
    #: The register-content vector of the previous completed collect.
    previous_collect: Optional[Tuple[View, ...]] = None
    #: Registers read so far in the current collect (vector in local order).
    current_collect: Tuple[View, ...] = ()
    done: bool = False


class NaiveDoubleCollectMachine:
    """Write-scan terminating on a clean double collect (unsound).

    Kept deliberately faithful to the folklore rule so the E2 refutation
    targets the real thing: the processor outputs the union of the clean
    collect's contents.
    """

    #: Every op comes from the inner write-scan machine; the footprint
    #: is resolved through the delegation chain (anonlint POR002).
    por_footprint = "delegate"

    def __init__(self, n_registers: int) -> None:
        self.n_registers = n_registers
        self._inner = WriteScanMachine(n_registers)

    # -- AlgorithmMachine protocol -------------------------------------
    def initial_state(self, my_input: Hashable) -> NaiveState:
        return NaiveState(inner=self._inner.initial_state(my_input))

    def register_initial_value(self) -> View:
        return self._inner.register_initial_value()

    def enabled_ops(self, state: NaiveState) -> Tuple[Op, ...]:
        if state.done:
            return ()
        return self._inner.enabled_ops(state.inner)

    def apply(self, state: NaiveState, op: Op, result: Any) -> NaiveState:
        inner = self._inner.apply(state.inner, op, result)
        if isinstance(op, Write):
            return replace(state, inner=inner, current_collect=())
        collected = state.current_collect + (result,)
        if len(collected) < self.n_registers:
            return replace(state, inner=inner, current_collect=collected)
        # Collect complete: compare with the previous one.
        if state.previous_collect == collected:
            return NaiveState(
                inner=inner,
                previous_collect=collected,
                current_collect=(),
                done=True,
            )
        return NaiveState(
            inner=inner, previous_collect=collected, current_collect=()
        )

    def output(self, state: NaiveState) -> Optional[View]:
        if not state.done:
            return None
        union: frozenset = frozenset()
        for entry in state.previous_collect or ():
            union |= entry
        return union | state.inner.view


def double_collect_outputs_from_trace(
    trace: Trace, n_registers: int
) -> Dict[int, View]:
    """First clean-double-collect output per processor, from a trace.

    Replays each processor's reads, groups them into collects of
    ``n_registers``, and returns the union of the first collect that
    equals its predecessor (per processor).  Processors that never get a
    clean double collect are absent from the result.
    """
    # The pids below are the *harness's* event labels: this function
    # analyzes a recorded trace post hoc, it is not algorithm code, so
    # keying bookkeeping by pid does not break anonymity (ANON002).
    per_pid_reads: Dict[int, List[View]] = {}
    outputs: Dict[int, View] = {}
    previous_collect: Dict[int, Tuple[View, ...]] = {}
    for event in trace:
        if not isinstance(event, ReadEvent):
            continue
        pid = event.pid
        if pid in outputs:
            continue
        reads = per_pid_reads.setdefault(pid, [])
        reads.append(event.value)
        if len(reads) == n_registers:
            collect = tuple(reads)
            reads.clear()
            if previous_collect.get(pid) == collect:
                union: frozenset = frozenset()
                for entry in collect:
                    union |= entry
                outputs[pid] = union  # anonlint: disable=ANON002
            previous_collect[pid] = collect  # anonlint: disable=ANON002
    return outputs
