"""Command-line interface: ``python -m repro <command>``.

Thin, scriptable access to the library's main entry points:

- ``snapshot`` / ``renaming`` / ``consensus`` — run one of the paper's
  algorithms with chosen inputs, seed, and sizes, printing per-processor
  outputs;
- ``figure2`` — print the reproduced Figure 2 table and its certified
  repetition;
- ``check`` — TLC-style exhaustive model check of the snapshot
  algorithm for N=2 (safety + wait-freedom), or a budgeted N=3 sweep,
  optionally parallel (``--jobs``, ``--sharded``), memory-lean
  (``--fingerprint``), symmetry-reduced (``--symmetry``), disk-backed
  (``--store mmap|spill``), and checkpointed (``--checkpoint-dir`` /
  ``--resume``);
- ``lint`` — anonlint, the model-soundness static analysis (anonymity,
  wiring discipline, permutation-invariance, wait-freedom hygiene),
  with ``--dynamic`` metamorphic orbit-invariance verification;
- ``lower-bound`` — run the §2.1 covering-erasure demonstration.

Every command exits non-zero if the run violates the property it
demonstrates, so the CLI doubles as a smoke check in scripts/CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence


def _parse_inputs(raw: Sequence[str]) -> List[str]:
    """Inputs are strings; pure integers are converted for convenience."""
    parsed: List = []
    for token in raw:
        try:
            parsed.append(int(token))
        except ValueError:
            parsed.append(token)
    return parsed


def _parse_mem(text: str) -> int:
    """Parse a byte size: a plain integer or K/M/G-suffixed (binary)."""
    units = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}
    cleaned = text.strip().lower()
    if cleaned.endswith("ib"):
        cleaned = cleaned[:-2]
    elif cleaned.endswith("b"):
        cleaned = cleaned[:-1]
    if cleaned and cleaned[-1] in units:
        return int(float(cleaned[:-1]) * units[cleaned[-1]])
    return int(cleaned)


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.api import run_snapshot
    from repro.core.views import all_comparable

    inputs = _parse_inputs(args.inputs)
    result = run_snapshot(
        inputs, seed=args.seed, n_registers=args.registers,
        max_steps=args.max_steps,
    )
    for pid in sorted(result.outputs):
        print(f"processor {pid} (input {inputs[pid]!r}):"
              f" {sorted(result.outputs[pid], key=repr)}")
    ok = result.all_terminated and all_comparable(result.outputs.values())
    print(f"terminated: {result.all_terminated};"
          f" containment: {all_comparable(result.outputs.values())};"
          f" steps: {result.steps}")
    return 0 if ok else 1


def _cmd_renaming(args: argparse.Namespace) -> int:
    from repro.api import run_renaming
    from repro.core.renaming import renaming_bound

    group_ids = _parse_inputs(args.inputs)
    result = run_renaming(group_ids, seed=args.seed, max_steps=args.max_steps)
    m = len(set(group_ids))
    bound = renaming_bound(m)
    for pid in sorted(result.outputs):
        print(f"processor {pid} (group {group_ids[pid]!r}):"
              f" name {result.outputs[pid]}")
    within = all(1 <= name <= bound for name in result.outputs.values())
    print(f"groups: {m}; namespace bound M(M+1)/2 = {bound};"
          f" within bound: {within}")
    return 0 if result.all_terminated and within else 1


def _cmd_consensus(args: argparse.Namespace) -> int:
    from repro.api import run_consensus

    proposals = _parse_inputs(args.inputs)
    result = run_consensus(proposals, seed=args.seed, max_steps=args.max_steps)
    for pid in sorted(result.outputs):
        print(f"processor {pid} (proposed {proposals[pid]!r}):"
              f" decided {result.outputs[pid]!r}")
    decided = set(result.outputs.values())
    agreement = len(decided) <= 1
    validity = decided <= set(proposals)
    print(f"agreement: {agreement}; validity: {validity};"
          f" decided {len(result.outputs)}/{len(proposals)}")
    return 0 if agreement and validity else 1


def _cmd_figure2(args: argparse.Namespace) -> int:
    from repro.analysis import stable_view_graph_from_lasso
    from repro.sim.scripted import (
        build_figure2_runner,
        figure2_observed_rows,
        format_figure2_table,
    )

    print(format_figure2_table(figure2_observed_rows()))
    runner = build_figure2_runner(detect_lasso=True)
    result = runner.run(100_000)
    print(f"\nrows 5-13 repeat every {result.lasso.cycle_length} steps"
          f" (certified by state repetition)")
    graph = stable_view_graph_from_lasso(result)
    print(f"stable-view graph: {graph.describe()}")
    return 0 if graph.has_unique_source() else 1


def _symmetry_suffix(result) -> str:
    """Render the reduction achieved by one symmetry-reduced result."""
    if result.covered_states is None:
        return ""
    ratio = result.covered_states / max(1, result.states)
    skipped = getattr(result, "recanonicalizations_skipped", None)
    skip_note = (
        f", {skipped} re-canonicalizations skipped" if skipped else ""
    )
    return (
        f", covering {result.covered_states} concrete states"
        f" ({ratio:.2f}x, stabilizer order {result.symmetry_group_order})"
        f"{skip_note}"
    )


def _store_suffix(result) -> str:
    """Render one result's store footprint (only set when --store ran)."""
    counters = getattr(result, "store_counters", None)
    if not counters:
        return ""
    disk = ""
    if counters.get("file_bytes"):
        disk = f", {counters['file_bytes'] / (1024 * 1024):.1f} MiB on disk"
    return f" [store: {counters.get('entries', 0)} entries{disk}]"


def _por_suffix(result) -> str:
    """Render one result's ample-set reduction (only set when --por ran)."""
    counters = getattr(result, "por_counters", None)
    if not counters:
        return ""
    return (
        f" [por: {counters.get('transitions_pruned', 0)} transitions"
        f" pruned, {counters.get('ample_states', 0)} ample /"
        f" {counters.get('fully_expanded_states', 0)} full,"
        f" {counters.get('cycle_proviso_expansions', 0)} proviso"
        f" expansions]"
    )


def _report_collision(total_states: int) -> None:
    """The birthday-bound honesty line every fingerprint run ends with."""
    from repro.checker.fingerprint import collision_probability

    probability = collision_probability(total_states)
    print(
        f"fingerprint collision probability: ~{probability:.2e} across"
        f" {total_states} distinct states (64-bit birthday bound)"
    )
    if probability > 1e-6:
        print(
            "warning: collision probability exceeds 1e-6 — a colliding"
            " state is silently never explored; rerun without"
            " --fingerprint to certify the verdict"
        )


def _cmd_check(args: argparse.Namespace) -> int:
    import os
    from dataclasses import replace
    from pathlib import Path

    from repro.checker import Explorer, SystemSpec
    from repro.checker.liveness import check_wait_freedom
    from repro.checker.parallel import (
        check_snapshot_classes,
        class_key,
        engine_label,
        explore_sharded,
    )
    from repro.checker.fast_snapshot import canonical_wiring_classes
    from repro.checker.properties import SNAPSHOT_SAFETY
    from repro.core import SnapshotMachine
    from repro.memory.wiring import enumerate_wiring_assignments
    from repro.store import (
        CheckpointIncompatible,
        RunCheckpointer,
        StoreConfig,
        StoreError,
    )
    from repro.store.checkpoint import git_sha

    if (
        args.por
        and args.n == 3
        and args.budget > 0
        and not args.por_unsafe_budget
    ):
        print(
            "error: --por under a state budget is refused — the reduced"
            " and unreduced bounded explorations truncate *different*"
            " frontiers, so their verdicts are not comparable and a"
            " budget-missed violation cannot be told apart from a"
            " POR-pruned one; rerun with --budget 0 (exhaustive) or"
            " accept the caveat explicitly with --por-unsafe-budget"
        )
        return 2

    if args.engine == "batch":
        from repro.checker.batch import BatchEngineUnavailable, require_numpy

        try:
            require_numpy()
        except BatchEngineUnavailable as exc:
            print(f"error: {exc}")
            return 2

    # Resolve the batch kernel once up front: an explicit --kernel
    # native that cannot run here degrades to numpy with a single
    # warning (results are identical), never an error.
    kernel = args.kernel
    if args.engine == "batch":
        from repro.checker.native.loader import (
            resolve_kernel,
            warn_kernel_fallback,
        )

        kernel = resolve_kernel(args.kernel)
        if args.kernel == "native" and kernel != "native":
            warn_kernel_fallback()

    usable = os.cpu_count() or 1
    jobs = max(1, args.jobs)
    if jobs > usable:
        print(
            f"note: --jobs {jobs} capped to {usable} — this host has"
            f" {usable} usable core(s), and oversubscribed workers are"
            " pure fork/IPC overhead (measured slower than serial)"
        )
        jobs = usable

    if args.resume is not None and not Path(args.resume).is_dir():
        print(f"error: --resume {args.resume}: no such checkpoint directory")
        return 2
    if (
        args.resume is not None
        and args.checkpoint_dir is not None
        and Path(args.resume) != Path(args.checkpoint_dir)
    ):
        print("error: --resume and --checkpoint-dir name different"
              " directories; --resume already implies the checkpoint"
              " directory")
        return 2
    ckpt_base = (
        Path(args.resume) if args.resume is not None
        else Path(args.checkpoint_dir) if args.checkpoint_dir is not None
        else None
    )
    store_cfg = None
    if args.store != "ram" or args.store_dir is not None:
        store_cfg = StoreConfig(
            backend=args.store,
            directory=args.store_dir,
            mem_cap=args.mem_cap,
        )
    # The store backend is deliberately NOT part of the checkpoint meta:
    # checkpoints dump visited keys in a backend-neutral format, so a
    # run started in RAM may legitimately resume onto spill when it
    # outgrows memory.
    meta_base = {
        "n": args.n,
        "budget": args.budget,
        "fingerprint": bool(args.fingerprint),
        "symmetry": bool(args.symmetry),
        "por": bool(args.por),
        "git_sha": git_sha(),
    }
    # --budget 0 means unbudgeted (exhaustive) exploration.
    budget = args.budget if args.budget > 0 else None
    max_states = budget if budget is not None else 10 ** 9

    failures = 0
    fingerprinted_states = 0
    # --profile wraps the exploration loop only: the profiler goes live
    # right before the engines run and the dump happens on every exit
    # path (including violations and checkpoint refusals), so the stats
    # attribute hot-path time without argparse/reporting noise.
    profiler = None
    if args.profile is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        if args.n == 2:
            # Safety + wait-freedom need the full edge list (pid labels
            # are not orbit-stable), so liveness always runs unreduced;
            # with --symmetry the safety pass additionally runs reduced
            # and its reduction is reported per wiring.
            for wiring in enumerate_wiring_assignments(2, 2):
                spec = SystemSpec(SnapshotMachine(2), [1, 2], wiring)
                result = Explorer(spec, SNAPSHOT_SAFETY, keep_edges=True).run()
                violations = check_wait_freedom(spec, result)
                suffix = ""
                ok = result.ok and not violations
                if args.symmetry:
                    reduced = Explorer(
                        spec, SNAPSHOT_SAFETY, symmetry=True
                    ).run()
                    ok = ok and reduced.ok
                    suffix = (
                        f"; symmetry: {reduced.states} representatives"
                        + _symmetry_suffix(reduced)
                    )
                if not ok:
                    failures += 1
                status = "OK" if ok else "VIOLATED"
                print(f"wiring {wiring.permutations()}: {result.states}"
                      f" states, safety+wait-freedom {status}{suffix}")
            if (
                store_cfg is not None
                or ckpt_base is not None
                or args.por
                or args.engine == "batch"
            ):
                # The full-edge N=2 engine keeps object tables that only
                # live in RAM (and its liveness pass needs the unreduced
                # graph), so --store / checkpointing / --por / --engine
                # batch run through a fast class sweep on top (the
                # --symmetry precedent: both passes, one command).
                rows = check_snapshot_classes(
                    2, budget=budget, jobs=jobs,
                    fingerprint=args.fingerprint, symmetry=args.symmetry,
                    store=store_cfg, por=args.por, engine=args.engine,
                    kernel=kernel,
                    sweep_dir=str(ckpt_base) if ckpt_base else None,
                    sweep_meta={**meta_base, "engine": "sweep"},
                    heartbeat_every=args.heartbeat,
                )
                print(f"store-backed class sweep ({args.store}):")
                for wiring, result in rows:
                    status = (
                        "OK" if result.ok else f"VIOLATED: {result.violation}"
                    )
                    if not result.ok:
                        failures += 1
                    if args.fingerprint:
                        fingerprinted_states += result.states
                    print(f"  wiring class {wiring}: {result.states} states"
                          f"{_store_suffix(result)}{_por_suffix(result)},"
                          f" {status}")
                if args.por:
                    from repro.analysis import aggregate_por_statistics

                    stats = aggregate_por_statistics(
                        result for _, result in rows
                    )
                    print(f"por total: {stats.summary()}")
        elif args.sharded and jobs > 1:
            # One class at a time, its BFS frontier sharded across
            # workers; store files and checkpoints are namespaced
            # class-NNN/ so classes never share state.
            inputs = list(range(1, args.n + 1))
            for index, wiring in enumerate(
                canonical_wiring_classes(args.n, args.n)
            ):
                class_store = store_cfg
                if store_cfg is not None and store_cfg.directory is not None:
                    class_store = replace(
                        store_cfg,
                        directory=str(
                            Path(store_cfg.directory) / f"class-{index:03d}"
                        ),
                    )
                checkpointer = None
                if ckpt_base is not None:
                    checkpointer = RunCheckpointer(
                        ckpt_base / f"class-{index:03d}",
                        meta={
                            **meta_base,
                            "engine": "sharded",
                            "jobs": jobs,
                            "wiring": class_key(wiring),
                        },
                        every=args.checkpoint_every,
                    )
                heartbeat = None
                if args.heartbeat is not None:
                    from repro.service.heartbeat import Heartbeat

                    heartbeat = Heartbeat(
                        args.heartbeat,
                        label=(
                            f"class-{index:03d}"
                            f" {engine_label(args.engine, kernel)}"
                        ),
                    )
                result = explore_sharded(
                    inputs, wiring, jobs=jobs, max_states=max_states,
                    fingerprint=args.fingerprint, symmetry=args.symmetry,
                    store=class_store, checkpointer=checkpointer,
                    por=args.por, engine=args.engine, kernel=kernel,
                    heartbeat=heartbeat,
                )
                status = "OK" if result.ok else f"VIOLATED: {result.violation}"
                if not result.ok:
                    failures += 1
                if args.fingerprint:
                    fingerprinted_states += result.states
                scope = "exhaustive" if result.complete else "bounded"
                print(f"wiring class {wiring}: {result.states} states"
                      f" ({scope}, {jobs} frontier shards)"
                      f"{_symmetry_suffix(result)}{_store_suffix(result)}"
                      f"{_por_suffix(result)}, {status}")
        else:
            # One whole class per worker (E4's natural grain).
            rows = check_snapshot_classes(
                args.n, budget=budget, jobs=jobs,
                fingerprint=args.fingerprint, symmetry=args.symmetry,
                store=store_cfg, por=args.por, engine=args.engine,
                kernel=kernel,
                sweep_dir=str(ckpt_base) if ckpt_base else None,
                sweep_meta=(
                    {**meta_base, "engine": "sweep"}
                    if ckpt_base is not None
                    else None
                ),
                heartbeat_every=args.heartbeat,
            )
            for wiring, result in rows:
                status = "OK" if result.ok else f"VIOLATED: {result.violation}"
                if not result.ok:
                    failures += 1
                if args.fingerprint:
                    fingerprinted_states += result.states
                scope = "exhaustive" if result.complete else "bounded"
                print(f"wiring class {wiring}: {result.states} states"
                      f" ({scope}){_symmetry_suffix(result)}"
                      f"{_store_suffix(result)}{_por_suffix(result)},"
                      f" {status}")
            if args.symmetry:
                explored = sum(result.states for _, result in rows)
                covered = sum(
                    result.covered_states or result.states
                    for _, result in rows
                )
                print(f"sweep total: {explored} representatives cover"
                      f" {covered} concrete states"
                      f" ({covered / max(1, explored):.2f}x reduction)")
            if args.por:
                from repro.analysis import aggregate_por_statistics

                stats = aggregate_por_statistics(
                    result for _, result in rows
                )
                print(f"por total: {stats.summary()}")
    except CheckpointIncompatible as exc:
        print(f"error: {exc}")
        return 2
    except StoreError as exc:
        print(f"error: {exc}")
        return 2
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(args.profile)
            print(f"profile: exploration stats written to {args.profile}")
    if args.fingerprint and fingerprinted_states:
        _report_collision(fingerprinted_states)
    return 0 if failures == 0 else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    import inspect
    from pathlib import Path

    from repro.lint import (
        Baseline,
        LintEngine,
        builtin_footprint_verifications,
        builtin_verifications,
        git_sha,
        load_baseline,
        match_baseline,
        render_json,
        render_text,
        rule_catalog,
        select_rules,
        write_baseline,
    )

    if args.explain:
        catalog = rule_catalog()
        rule = catalog.get(args.explain)
        if rule is None:
            print(
                f"error: unknown rule {args.explain!r}"
                f" (known: {', '.join(sorted(catalog))})"
            )
            return 2
        print(f"{rule.rule_id}: {rule.summary}")
        doc = inspect.getdoc(inspect.getmodule(type(rule)))
        if doc:
            print()
            print(doc)
        return 0

    rules = None
    if args.only:
        try:
            rules = select_rules(
                [token.strip() for token in args.only.split(",") if token.strip()]
            )
        except ValueError as exc:
            print(f"error: {exc}")
            return 2

    root = Path.cwd()
    paths = [Path(p) for p in args.paths]

    if args.infer_footprints:
        return _print_inferred_footprints(paths, root)

    report = LintEngine(rules=rules).lint_paths(paths, root=root)
    baseline_path = Path(args.baseline)
    previous = load_baseline(baseline_path)

    if args.write_baseline:
        baseline = write_baseline(
            baseline_path, report.active, previous=previous
        )
        print(
            f"wrote {len(baseline.entries)} baseline entr(ies) to"
            f" {baseline_path} (git {baseline.git_sha or 'unknown'})"
        )
        return 0

    if rules is not None:
        # A rule-restricted run must not flag the other rules' baseline
        # entries as stale: match only against the selected rules.
        selected = {rule.rule_id for rule in rules}
        previous = Baseline(
            entries=[e for e in previous.entries if e.rule in selected],
            git_sha=previous.git_sha,
            schema=previous.schema,
        )

    match = match_baseline(report.active, previous)
    dynamic = None
    if args.dynamic:
        dynamic = builtin_verifications(args.dynamic_states)
        dynamic += builtin_footprint_verifications(args.dynamic_states)
    current_sha = git_sha(root)
    renderer = render_json if args.format == "json" else render_text
    print(
        renderer(
            report,
            match,
            dynamic,
            baseline_sha=previous.git_sha,
            current_sha=current_sha,
        )
    )
    # Exit non-zero only on *new* findings (or dynamic mismatches):
    # baselined findings are accepted debt, stale entries a cleanup hint.
    dynamic_failed = any(not v.ok for v in dynamic or [])
    return 1 if match.new or dynamic_failed else 0


def _print_inferred_footprints(paths, root) -> int:
    """``repro lint --infer-footprints``: POR002's working view."""
    from repro.lint import ModuleContext, discover_files
    from repro.lint.por import (
        infer_machine_footprints,
        infer_property_footprints,
    )

    for path in discover_files(paths):
        try:
            relative = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            relative = path.as_posix()
        ctx = ModuleContext(relative, path.read_text(encoding="utf-8"))
        for prop in infer_property_footprints(ctx):
            print(f"{relative}:{prop.line}: property {prop.name}")
            print(f"  declared: {prop.format_declared()}")
            print(f"  inferred: {prop.format_inferred()}")
            for problem in prop.uncovered():
                print(f"  uncovered: {problem}")
        if not ctx.is_machine:
            continue
        for machine in infer_machine_footprints(ctx):
            print(f"{relative}:{machine.line}: machine {machine.class_name}")
            print(f"  declared: {machine.declared!r}")
            print(f"  inferred: {machine.inferred!r}")
            problem = machine.mismatch()
            if problem:
                print(f"  mismatch: {problem}")
    return 0


def _parse_hostport(text: str):
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    return host, int(port)


def _service_client(args: argparse.Namespace):
    from pathlib import Path

    from repro.service.transport import ServiceClient

    if args.connect is not None:
        host, port = args.connect
        return ServiceClient(host, port)
    return ServiceClient.for_state_dir(Path(args.state_dir))


def _print_job(record) -> int:
    """Render one job record; exit status 0 only for a clean ``done``."""
    spec = record.spec
    print(f"{record.job_id}: {record.state}"
          f" (n={spec.n}, budget={spec.budget or 'exhaustive'},"
          f" engine={spec.engine}, shards={spec.shards},"
          f" symmetry={spec.symmetry}, por={spec.por})")
    if record.error:
        print(f"  error: {record.error}")
    failures = 0
    for row in record.rows:
        result = row["result"]
        violation = result.get("violation")
        if violation:
            failures += 1
            print(f"  class {row['class']}: {result['states']} states,"
                  f" VIOLATED: {violation}")
        else:
            scope = "exhaustive" if result.get("complete") else "bounded"
            print(f"  class {row['class']}: {result['states']} states"
                  f" ({scope}), OK")
    if record.state != "done":
        return 1
    return 0 if failures == 0 else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from repro.service.coordinator import run_coordinator

    try:
        asyncio.run(run_coordinator(
            Path(args.state_dir), host=args.host, port=args.port,
        ))
    except KeyboardInterrupt:
        print("\n[serve] interrupted; jobs resume on the next serve")
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.service.worker import run_worker

    host, port = args.connect
    return run_worker(
        host, port, name=args.name,
        reconnect_attempts=args.reconnect_attempts,
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.jobs import JobError, JobSpec
    from repro.service.transport import ServiceError

    try:
        spec = JobSpec(
            n=args.n,
            budget=args.budget,
            fingerprint=args.fingerprint,
            symmetry=args.symmetry,
            por=args.por,
            engine=args.engine,
            kernel=args.kernel,
            store=args.store,
            mem_cap=args.mem_cap,
            shards=args.shards,
            checkpoint_every=args.checkpoint_every,
        )
        spec.validate()
        with _service_client(args) as client:
            job_id = client.submit(spec)
            print(f"submitted {job_id}")
            if not args.wait:
                return 0
            record = client.wait(job_id)
        return _print_job(record)
    except (JobError, ServiceError) as exc:
        print(f"error: {exc}")
        return 2


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.service.jobs import JobRecord
    from repro.service.transport import ServiceError

    try:
        with _service_client(args) as client:
            reply = client.status(args.job_id)
    except ServiceError as exc:
        print(f"error: {exc}")
        return 2
    jobs = [reply["job"]] if "job" in reply else reply.get("jobs", [])
    if not jobs:
        print("no jobs")
    for payload in jobs:
        record = JobRecord.from_dict(dict(payload))
        progress = {
            key: value
            for key, value in record.progress.items()
            if not key.startswith("_") and key != "workers"
        }
        print(f"{record.job_id}: {record.state}"
              + (f" {progress}" if record.state == "running" else ""))
    workers = reply.get("workers", [])
    print(f"workers: {len(workers)}")
    for worker in workers:
        print(f"  {worker.get('name')}: shards={worker.get('shards')},"
              f" states={worker.get('states', 0)},"
              f" last seen {worker.get('last_seen_age_s', '?')}s ago")
    return 0


def _cmd_result(args: argparse.Namespace) -> int:
    import json as json_mod

    from repro.service.transport import ServiceError

    try:
        with _service_client(args) as client:
            record = (
                client.wait(args.job_id) if args.wait
                else client.job(args.job_id)
            )
    except ServiceError as exc:
        print(f"error: {exc}")
        return 2
    if args.json:
        print(json_mod.dumps(record.to_dict(), indent=2, sort_keys=True))
        return 0 if record.state == "done" else 1
    return _print_job(record)


def _cmd_cancel(args: argparse.Namespace) -> int:
    from repro.service.transport import ServiceError

    try:
        with _service_client(args) as client:
            record = client.cancel(args.job_id)
    except ServiceError as exc:
        print(f"error: {exc}")
        return 2
    print(f"{record.job_id}: {record.state}"
          + (" (cancel requested)" if record.cancel_requested else ""))
    return 0


def _cmd_lower_bound(args: argparse.Namespace) -> int:
    from repro.core import SnapshotMachine
    from repro.sim.adversaries import demonstrate_erasure

    n = args.n
    demo = demonstrate_erasure(
        lambda: SnapshotMachine(n, n_registers=n - 1),
        inputs=list(range(1, n + 1)),
        alternate_input=999,
    )
    print(f"{n} processors, {n - 1} registers:")
    print(f"  run A: p outputs {sorted(demo.first.solo_output)};"
          f" memory after covering: {demo.first.memory_after_covering}")
    print(f"  run B: p outputs {sorted(demo.second.solo_output)};"
          f" memory after covering: {demo.second.memory_after_covering}")
    print(f"  erasure complete / twin-indistinguishable:"
          f" {demo.erasure_complete}")
    return 0 if demo.erasure_complete else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Fully-anonymous shared-memory algorithms"
            " (Losa & Gafni, PODC 2024) — reproduction CLI"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_run_command(name, help_text, handler, default_inputs):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument(
            "inputs", nargs="*", default=default_inputs,
            help=f"per-processor inputs (default: {' '.join(default_inputs)})",
        )
        cmd.add_argument("--seed", type=int, default=0)
        cmd.add_argument("--max-steps", type=int, default=2_000_000)
        if name == "snapshot":
            cmd.add_argument(
                "--registers", type=int, default=None,
                help="register count M (default: one per processor)",
            )
        cmd.set_defaults(handler=handler)

    add_run_command(
        "snapshot", "run the wait-free snapshot task (Figure 3)",
        _cmd_snapshot, ["1", "2", "3"],
    )
    add_run_command(
        "renaming", "run adaptive renaming (Figure 4); inputs are group ids",
        _cmd_renaming, ["1", "2", "1"],
    )
    add_run_command(
        "consensus", "run obstruction-free consensus (Figure 5)",
        _cmd_consensus, ["a", "b", "a"],
    )

    figure2 = sub.add_parser(
        "figure2", help="reproduce the paper's Figure 2 and certify the lasso"
    )
    figure2.set_defaults(handler=_cmd_figure2)

    check = sub.add_parser(
        "check", help="model-check the snapshot algorithm (TLC-style)"
    )
    check.add_argument("--n", type=int, default=2, choices=[2, 3])
    check.add_argument(
        "--budget", type=int, default=200_000,
        help="states per wiring class for n=3 (n=2 is exhaustive);"
             " 0 means unbudgeted (exhaustive) exploration",
    )
    check.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the n=3 sweep: wiring classes are"
             " checked in parallel (1 = serial)",
    )
    check.add_argument(
        "--sharded", action="store_true",
        help="with --jobs > 1, shard each class's BFS frontier across"
             " the workers instead of one whole class per worker",
    )
    check.add_argument(
        "--engine", choices=["scalar", "batch"], default="scalar",
        help="exploration kernel: scalar (default; the pure-Python"
             " conformance oracle) or batch (numpy level-batched u64"
             " arrays, same verdicts at a multiple of the throughput;"
             " requires numpy).  With --por the batch engine selects"
             " ample sets level-synchronously (novelty certified"
             " against the level-boundary visited set plus"
             " earlier-in-level occurrences — pessimistic, sound):"
             " same verdicts as scalar+POR, possibly different"
             " state/transition counts",
    )
    check.add_argument(
        "--kernel", choices=["auto", "numpy", "native"], default="auto",
        help="batch-engine level kernel: auto (default; generated C"
             " kernel when a C compiler is present, numpy otherwise),"
             " numpy (force the vectorized oracle), or native (force the"
             " generated C kernel; degrades to numpy with a warning when"
             " no compiler is available).  Kernels are bit-identical —"
             " same states, fingerprints, and verdicts; ignored by"
             " --engine scalar",
    )
    check.add_argument(
        "--fingerprint", action="store_true",
        help="store 64-bit state fingerprints instead of full states"
             " (~10x less state-store memory; collision probability"
             " ~n^2/2^65, TLC's trade)",
    )
    check.add_argument(
        "--symmetry", action=argparse.BooleanOptionalAction, default=False,
        help="explore one representative per orbit of the wiring"
             " stabilizer (process/register permutations + input"
             " renaming): up to N! fewer states, identical verdicts for"
             " the built-in (permutation-invariant) properties;"
             " --no-symmetry is the escape hatch for custom"
             " non-invariant properties",
    )
    check.add_argument(
        "--por", action=argparse.BooleanOptionalAction, default=False,
        help="ample-set partial-order reduction: expand one processor's"
             " steps instead of all interleavings wherever the classic"
             " C0-C3 conditions hold (independence from the wiring"
             " tables, invisibility from the properties' declared"
             " footprints, cycle proviso from the visited set)."
             " Identical verdicts, fewer transitions; composes with"
             " --symmetry.  Refused under a state budget unless"
             " --por-unsafe-budget (see docs/checking.md)",
    )
    check.add_argument(
        "--por-unsafe-budget", action="store_true",
        help="allow --por together with a truncating --budget, accepting"
             " that the reduced run truncates a different frontier than"
             " an unreduced run would (bounded verdicts no longer"
             " comparable across the two)",
    )
    from repro.store import BACKENDS, DEFAULT_MEM_CAP

    check.add_argument(
        "--store", choices=list(BACKENDS), default="ram",
        help="visited-set backend: ram (default), mmap (open-addressing"
             " table in a memory-mapped file, fixed --mem-cap), or spill"
             " (bounded RAM buffer + sorted on-disk runs, TLC-style;"
             " unbounded state counts)",
    )
    check.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="directory for store files (default: a fresh temporary"
             " directory per run)",
    )
    check.add_argument(
        "--mem-cap", type=_parse_mem, default=DEFAULT_MEM_CAP,
        metavar="BYTES",
        help="RAM budget per store instance, plain bytes or K/M/G"
             " suffixed (default 64M); mmap refuses to grow past it,"
             " spill spills to disk under it",
    )
    check.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="persist the run into DIR: n=3 sweeps record each finished"
             " class; --sharded runs additionally dump frontier +"
             " visited set every --checkpoint-every states",
    )
    check.add_argument(
        "--checkpoint-every", type=int, default=1_000_000, metavar="STATES",
        help="checkpoint cadence in admitted states for --sharded runs"
             " (default 1000000; checkpoints land on BFS layer"
             " boundaries)",
    )
    check.add_argument(
        "--resume", default=None, metavar="DIR",
        help="resume a previous --checkpoint-dir run from DIR; the"
             " stored configuration (n, budget, fingerprint, symmetry,"
             " ...) must match or the run is refused — a git-SHA drift"
             " is only warned about",
    )
    check.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECS",
        help="print a progress line to stderr every SECS seconds of a"
             " long run: admitted states (with delta and states/s),"
             " frontier size, transitions, and resident set size",
    )
    check.add_argument(
        "--profile", default=None, metavar="FILE",
        help="cProfile the exploration loop (only — argument parsing and"
             " reporting are excluded) and dump the stats to FILE for"
             " pstats/snakeviz; engine-agnostic",
    )
    check.set_defaults(handler=_cmd_check)

    lint = sub.add_parser(
        "lint",
        help="anonlint: model-soundness static analysis (ANON/WIRE/"
             "INVAR/WF/POR rule families; see docs/linting.md)",
    )
    lint.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text",
    )
    lint.add_argument(
        "--only", metavar="RULE[,RULE...]", default=None,
        help="run only the named rule(s), e.g. --only POR002,INVAR002v2;"
             " baseline matching is restricted to the same rules",
    )
    lint.add_argument(
        "--explain", metavar="RULE", default=None,
        help="print what the named rule checks (summary plus the"
             " implementing module's documentation) and exit",
    )
    lint.add_argument(
        "--infer-footprints", action="store_true",
        help="print declared vs statically inferred footprints for"
             " every property and machine class in the linted paths,"
             " then exit (POR002's working view)",
    )
    lint.add_argument(
        "--baseline", default=".anonlint-baseline.json",
        help="baseline file of accepted findings (git-SHA stamped);"
             " new findings fail the run, baselined ones do not",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="accept all current findings into the baseline"
             " (justifications of matching entries are preserved)",
    )
    lint.add_argument(
        "--dynamic", action="store_true",
        help="additionally run the dynamic verifiers: the metamorphic"
             " orbit-invariance check (every built-in property on"
             " reachable states vs their wiring-stabilizer orbit"
             " images) and the footprint cross-check (declared"
             " visibility/machine footprints vs observed behavior)",
    )
    lint.add_argument(
        "--dynamic-states", type=int, default=250,
        help="bounded-BFS sample size per system for --dynamic",
    )
    lint.set_defaults(handler=_cmd_lint)

    lower = sub.add_parser(
        "lower-bound", help="the §2.1 covering-erasure demonstration"
    )
    lower.add_argument("--n", type=int, default=4)
    lower.set_defaults(handler=_cmd_lower_bound)

    serve = sub.add_parser(
        "serve",
        help="run the checking-service coordinator: accepts campaign"
             " jobs from `repro submit` and drives `repro worker`"
             " fleets (see docs/service.md)",
    )
    serve.add_argument(
        "--state-dir", required=True, metavar="DIR",
        help="persistent state: the job queue, per-job checkpoints, and"
             " endpoint.json (how local clients discover the port)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="listening port (default 0: pick a free port and record it"
             " in endpoint.json)",
    )
    serve.set_defaults(handler=_cmd_serve)

    worker = sub.add_parser(
        "worker",
        help="run one checking worker against a coordinator; workers"
             " may join and leave mid-run (elastic membership)",
    )
    worker.add_argument(
        "--connect", type=_parse_hostport, required=True,
        metavar="HOST:PORT",
    )
    worker.add_argument(
        "--name", default=None,
        help="worker name shown in `repro status` (default:"
             " worker-<hostname>-<pid>)",
    )
    worker.add_argument(
        "--reconnect-attempts", type=int, default=10,
        help="consecutive connect failures tolerated before giving up"
             " (exponential backoff between attempts)",
    )
    worker.set_defaults(handler=_cmd_worker)

    def add_client_command(name, help_text, handler):
        cmd = sub.add_parser(name, help=help_text)
        target = cmd.add_mutually_exclusive_group(required=True)
        target.add_argument(
            "--state-dir", metavar="DIR",
            help="a local coordinator's state directory (the port is"
                 " read from its endpoint.json)",
        )
        target.add_argument(
            "--connect", type=_parse_hostport, metavar="HOST:PORT",
            help="a coordinator's address (remote coordinators)",
        )
        cmd.set_defaults(handler=handler, connect=None, state_dir=None)
        return cmd

    submit = add_client_command(
        "submit", "submit a checking campaign to a coordinator",
        _cmd_submit,
    )
    submit.add_argument("--n", type=int, default=2, choices=[2, 3])
    submit.add_argument(
        "--budget", type=int, default=0,
        help="states per wiring class; 0 (default) = exhaustive",
    )
    submit.add_argument("--fingerprint", action="store_true")
    submit.add_argument("--symmetry", action="store_true")
    submit.add_argument("--por", action="store_true")
    submit.add_argument(
        "--engine", choices=["scalar", "batch"], default="scalar",
    )
    submit.add_argument(
        "--kernel", choices=["auto", "numpy", "native"], default="auto",
        help="batch-engine level kernel on the worker host: auto"
             " (default), numpy, or native (degrades to numpy on"
             " compiler-less workers; bit-identical results)",
    )
    submit.add_argument("--store", choices=list(BACKENDS), default="ram")
    submit.add_argument(
        "--mem-cap", type=_parse_mem, default=DEFAULT_MEM_CAP,
        metavar="BYTES",
    )
    submit.add_argument(
        "--shards", type=int, default=4,
        help="logical frontier shards (fixed per job; workers are"
             " assigned shard subsets, so the verdict is independent of"
             " worker count — default 4)",
    )
    submit.add_argument(
        "--checkpoint-every", type=int, default=2000, metavar="STATES",
        help="checkpoint cadence in admitted states; a killed worker"
             " loses at most one interval (default 2000)",
    )
    submit.add_argument(
        "--wait", action="store_true",
        help="block until the job finishes and print its verdicts",
    )

    status = add_client_command(
        "status", "job queue + worker fleet of a coordinator",
        _cmd_status,
    )
    status.add_argument("job_id", nargs="?", default=None)

    result = add_client_command(
        "result", "fetch one job's verdicts (and any counterexamples)",
        _cmd_result,
    )
    result.add_argument("job_id")
    result.add_argument(
        "--json", action="store_true",
        help="dump the full job record (spec, progress, per-class"
             " results) as JSON",
    )
    result.add_argument(
        "--wait", action="store_true",
        help="block until the job reaches a terminal state first",
    )

    cancel = add_client_command(
        "cancel", "cancel a queued or running job", _cmd_cancel,
    )
    cancel.add_argument("job_id")

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
