"""The consensus task (Definition 3.1).

All participants must agree on the identifier of a participating
processor: the valid output assignments are exactly the constant partial
functions whose constant value lies in their domain of definition.

Under group solvability this becomes: all processors return the same
participating *group* identifier — the paper's reading of fully-anonymous
consensus (Section 3.2: "agree on a unique input of a participating
processor").
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping

from repro.tasks.base import Task


class ConsensusTask(Task):
    """Agreement on one participating identifier."""

    def is_valid(self, assignment: Mapping[Hashable, Any]) -> bool:
        if not assignment:
            return True
        values = set(assignment.values())
        if len(values) != 1:
            return False  # agreement
        (value,) = values
        return value in assignment  # validity: a participating identifier

    def explain_violation(self, assignment: Mapping[Hashable, Any]) -> str:
        values = set(assignment.values())
        if len(values) > 1:
            return f"disagreement: outputs {sorted(values, key=repr)!r}"
        if values and next(iter(values)) not in assignment:
            return (
                f"decided value {next(iter(values))!r} is not a participating"
                f" identifier {sorted(assignment, key=repr)!r}"
            )
        return "assignment is valid"
