"""The task interface (Section 3.1).

The paper specifies a task as a pair ``(O, Δ)``: a set of outputs and a
set of valid *output assignments*, where an output assignment is a
partial function from processors to outputs.  We represent an output
assignment as a mapping from participant identifiers to outputs, and a
task as a validity predicate over such mappings (extensionally equal to
membership in ``Δ``, but checkable).

In this paper every processor receives its own identifier as input, so
participant identifiers double as inputs.  Under *group* solvability
(:mod:`repro.tasks.group`) the same predicates are evaluated with group
identifiers playing the role of processor identifiers — that is exactly
Gafni's construction, and the reason the interface is agnostic about
what the identifiers denote.
"""

from __future__ import annotations

import abc
from typing import Any, Hashable, Mapping


class Task(abc.ABC):
    """A task ``(O, Δ)``, given as a checkable validity predicate."""

    @abc.abstractmethod
    def is_valid(self, assignment: Mapping[Hashable, Any]) -> bool:
        """Whether ``assignment`` (participant id -> output) is in ``Δ``.

        The domain of ``assignment`` is the set of participating
        identifiers; non-participants must not appear.
        """

    def explain_violation(self, assignment: Mapping[Hashable, Any]) -> str:
        """Human-readable reason an assignment is invalid (for tests).

        Default implementation just reports validity; tasks override
        this with precise diagnostics.
        """
        if self.is_valid(assignment):
            return "assignment is valid"
        return f"assignment {dict(assignment)!r} violates {type(self).__name__}"
