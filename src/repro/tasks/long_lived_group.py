"""Group solvability for long-lived problems (the paper's §7 proposal).

Section 7, on the long-lived snapshot: "in the same vein as for tasks,
we could define group solvability of long-lived problems by
interpreting inputs as groups and considering that each invocation by
the same processor is done by a different logical processor.  We leave
it to future work to prove that the consensus algorithm below is
correct if we assume it uses a group solution to long-lived snapshot."

This module implements that definition as an executable check:

- every *invocation* is a logical processor, identified by
  ``(pid, invocation_index)``;
- a logical processor's group is its invocation's input value
  (interpreting inputs as groups, exactly as Definition 3.4 does for
  single-shot tasks);
- an execution's long-lived history group-solves the (long-lived)
  snapshot problem when every *output sample* — one completed
  invocation's output per participating group — satisfies the
  snapshot conditions over group identifiers, and additionally each
  output contains the groups of all inputs its (physical) processor has
  used so far (the paper's second long-lived guarantee, which is per
  physical processor and therefore checked outside the sampling).

The test suite uses it to validate the long-lived snapshot's histories
under group semantics, and to validate the consensus algorithm's
snapshot usage — the empirical counterpart of the future-work proof the
paper defers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Mapping, Optional, Tuple

from repro.tasks.group import GroupCheckResult, iter_output_samples


@dataclass(frozen=True)
class Invocation:
    """One completed long-lived invocation (a logical processor)."""

    pid: int
    index: int
    input: Hashable
    output: frozenset

    @property
    def logical_id(self) -> Tuple[int, int]:
        return (self.pid, self.index)


@dataclass
class LongLivedHistory:
    """Recorder for long-lived snapshot invocations."""

    invocations: List[Invocation] = field(default_factory=list)
    #: Inputs used so far per physical processor (including pending).
    inputs_used: Dict[int, List[Hashable]] = field(default_factory=dict)

    def begin(self, pid: int, input_value: Hashable) -> None:
        self.inputs_used.setdefault(pid, []).append(input_value)

    def complete(self, pid: int, output: frozenset) -> Invocation:
        index = len([inv for inv in self.invocations if inv.pid == pid])
        used = self.inputs_used.get(pid, [])
        if index >= len(used):
            raise ValueError(
                f"completion without a begun invocation for pid {pid}"
            )
        invocation = Invocation(
            pid=pid, index=index, input=used[index], output=frozenset(output)
        )
        self.invocations.append(invocation)
        return invocation


def check_long_lived_group_snapshot(
    history: LongLivedHistory,
    group_of: Optional[Mapping[Hashable, Hashable]] = None,
    max_samples: int = 100_000,
) -> GroupCheckResult:
    """Check the §7 group-solvability proposal on a recorded history.

    ``group_of`` maps raw input values to group identifiers (identity
    by default — each distinct input value is its own group, matching
    Definition 3.4's construction).

    Three conditions:

    1. (per physical processor) each completed invocation's output
       contains the groups of **all inputs that processor has used up
       to and including that invocation** — Section 7's second
       guarantee, lifted to groups;
    2. outputs mention only participating groups;
    3. (the sampled condition) treating each invocation as a logical
       processor of group ``group_of(input)``, every output sample —
       one output per participating group — is a valid snapshot-task
       assignment over group identifiers.
    """
    def to_group(value: Hashable) -> Hashable:
        if group_of is None:
            return value
        return group_of.get(value, value)

    participating_groups = {
        to_group(value)
        for used in history.inputs_used.values()
        for value in used
    }

    # Condition 1 + 2 (not sample-dependent).
    for invocation in history.invocations:
        used_so_far = history.inputs_used[invocation.pid][: invocation.index + 1]
        output_groups = {to_group(value) for value in invocation.output}
        missing = {to_group(value) for value in used_so_far} - output_groups
        if missing:
            return GroupCheckResult(
                valid=False,
                samples_checked=0,
                counterexample={invocation.logical_id: invocation.output},
                reason=(
                    f"invocation {invocation.logical_id} output misses its"
                    f" own used groups {sorted(missing, key=repr)!r}"
                ),
            )
        strays = output_groups - participating_groups
        if strays:
            return GroupCheckResult(
                valid=False,
                samples_checked=0,
                counterexample={invocation.logical_id: invocation.output},
                reason=(
                    f"invocation {invocation.logical_id} output mentions"
                    f" non-participating groups {sorted(strays, key=repr)!r}"
                ),
            )

    # Condition 3: sample one completed invocation per group; each
    # sample must satisfy self-inclusion and pairwise containment over
    # group identifiers.  (Membership in *participating* groups was
    # already checked as condition 2 — note participation means having
    # begun an invocation, which is weaker than having completed one,
    # so it cannot be delegated to the sample-domain check.)
    groups: Dict[Hashable, Tuple[int, ...]] = {}
    outputs: Dict[int, Any] = {}
    for logical_index, invocation in enumerate(history.invocations):
        group = to_group(invocation.input)
        groups.setdefault(group, ())
        groups[group] = groups[group] + (logical_index,)
        outputs[logical_index] = frozenset(
            to_group(value) for value in invocation.output
        )
    checked = 0
    for sample in iter_output_samples(groups, outputs):
        checked += 1
        if checked > max_samples:
            return GroupCheckResult(
                valid=True,
                samples_checked=checked - 1,
                exhaustive=False,
                notes=["sample cap reached"],
            )
        violation = _sample_violation(sample)
        if violation is not None:
            return GroupCheckResult(
                valid=False,
                samples_checked=checked,
                counterexample=sample,
                reason=violation,
            )
    return GroupCheckResult(valid=True, samples_checked=checked)


def _sample_violation(sample: Mapping[Hashable, frozenset]) -> Optional[str]:
    """Self-inclusion + pairwise containment over group identifiers."""
    for group, output in sample.items():
        if group not in output:
            return (
                f"group {group!r} missing from its sampled output"
                f" {sorted(output, key=repr)!r}"
            )
    chain = sorted(sample.values(), key=len)
    for small, large in zip(chain, chain[1:]):
        if not small <= large:
            return (
                f"incomparable sampled outputs:"
                f" {sorted(small, key=repr)!r} vs {sorted(large, key=repr)!r}"
            )
    return None
