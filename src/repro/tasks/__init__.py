"""Tasks and group solvability (Section 3).

A task (Section 3.1) is a set of outputs plus a set of valid output
assignments (partial functions from processors to outputs).  This
package provides:

- the :class:`~repro.tasks.base.Task` interface and the three classic
  tasks the paper studies — :class:`~repro.tasks.snapshot_task.SnapshotTask`,
  :class:`~repro.tasks.consensus_task.ConsensusTask`,
  :class:`~repro.tasks.renaming_task.AdaptiveRenamingTask`;
- *group solvability* (Section 3.2, Definition 3.4):
  :func:`~repro.tasks.group.check_group_solution` checks a concrete
  execution's outputs by enumerating (or sampling) every *output
  sample* — every way of picking one representative output per
  participating group — and validating each against the task.

The worked example of Section 3.2 (groups ``A={1}``, ``B={2,3}``,
``C={4}`` with incomparable outputs inside ``B`` being a *legal* group
solution of the snapshot task) lives in the tests and benchmark E12.
"""

from repro.tasks.base import Task
from repro.tasks.long_lived_group import (
    Invocation,
    LongLivedHistory,
    check_long_lived_group_snapshot,
)
from repro.tasks.more_tasks import (
    ImmediateSnapshotTask,
    SetConsensusTask,
    WeakSymmetryBreakingTask,
)
from repro.tasks.consensus_task import ConsensusTask
from repro.tasks.group import (
    GroupCheckResult,
    check_group_solution,
    groups_from_inputs,
    iter_output_samples,
)
from repro.tasks.renaming_task import AdaptiveRenamingTask
from repro.tasks.snapshot_task import SnapshotTask

__all__ = [
    "Task",
    "SnapshotTask",
    "ImmediateSnapshotTask",
    "SetConsensusTask",
    "WeakSymmetryBreakingTask",
    "ConsensusTask",
    "AdaptiveRenamingTask",
    "check_group_solution",
    "iter_output_samples",
    "groups_from_inputs",
    "GroupCheckResult",
    "LongLivedHistory",
    "Invocation",
    "check_long_lived_group_snapshot",
]
