"""The other classic tasks the paper transfers via group solvability.

Section 3.2: "We can similarly apply the definition to any other classic
task, e.g. immediate-snapshot, set-consensus, weak symmetry breaking,
etc."  This module supplies those task definitions so the
group-solvability machinery (Definition 3.4) applies to them out of the
box, and so the paper's negative results about them can be exercised:

- :class:`ImmediateSnapshotTask` — snapshot plus *immediacy*
  (``j ∈ o[i]  ⇒  o[j] ⊆ o[i]``).  Gafni (2004) shows immediate
  snapshot is **not** wait-free group-solvable for 3 processors; the
  paper's conclusion transfers this impossibility to the
  fully-anonymous model.  Experiment E13 exhibits concrete executions
  of the Figure 3 algorithm whose outputs violate immediacy, confirming
  that the algorithm solves the snapshot task but not the immediate
  variant.
- :class:`SetConsensusTask` — ``k``-set agreement: outputs are inputs
  of participants and at most ``k`` distinct values are decided.
- :class:`WeakSymmetryBreakingTask` — with the full set of ``n``
  processors participating, outputs in ``{0, 1}`` such that not all
  equal (both values appear); with fewer participants anything goes
  (the classic WSB formulation for exactly-n executions).
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping

from repro.tasks.base import Task


class ImmediateSnapshotTask(Task):
    """Snapshot + immediacy.

    Valid when: each participant's output contains itself and only
    participants; outputs are pairwise containment-related; and
    whenever ``j`` appears in ``o[i]``, ``o[j] ⊆ o[i]`` (for ``j`` in
    the assignment's domain).
    """

    def is_valid(self, assignment: Mapping[Hashable, Any]) -> bool:
        participants = set(assignment)
        sets = {pid: frozenset(out) for pid, out in assignment.items()}
        for pid, out in sets.items():
            if pid not in out or not out <= participants:
                return False
        values = list(sets.values())
        chain = sorted(values, key=len)
        if not all(a <= b for a, b in zip(chain, chain[1:])):
            return False
        for pid, out in sets.items():
            for member in out:
                if member in sets and not sets[member] <= out:
                    return False
        return True

    def explain_violation(self, assignment: Mapping[Hashable, Any]) -> str:
        sets = {pid: frozenset(out) for pid, out in assignment.items()}
        for pid, out in sets.items():
            if pid not in out:
                return f"{pid!r} missing from its own output"
            for member in out:
                if member in sets and not sets[member] <= out:
                    return (
                        f"immediacy violated: {member!r} ∈ o[{pid!r}] but"
                        f" o[{member!r}] = {sorted(sets[member], key=repr)!r}"
                        f" ⊄ o[{pid!r}] = {sorted(out, key=repr)!r}"
                    )
        chain = sorted(sets.values(), key=len)
        for a, b in zip(chain, chain[1:]):
            if not a <= b:
                return (
                    f"containment violated: {sorted(a, key=repr)!r} vs"
                    f" {sorted(b, key=repr)!r}"
                )
        return "assignment is valid"


class SetConsensusTask(Task):
    """``k``-set agreement: at most ``k`` distinct decided values, each
    the identifier of a participant."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("k must be positive")
        self.k = k

    def is_valid(self, assignment: Mapping[Hashable, Any]) -> bool:
        if not assignment:
            return True
        values = set(assignment.values())
        if len(values) > self.k:
            return False
        return values <= set(assignment)

    def explain_violation(self, assignment: Mapping[Hashable, Any]) -> str:
        values = set(assignment.values())
        if len(values) > self.k:
            return (
                f"{len(values)} distinct decisions"
                f" {sorted(values, key=repr)!r} exceed k={self.k}"
            )
        strays = values - set(assignment)
        if strays:
            return f"non-participant decisions {sorted(strays, key=repr)!r}"
        return "assignment is valid"


class WeakSymmetryBreakingTask(Task):
    """Weak symmetry breaking for ``n`` processors.

    Outputs are bits; when *all* ``n`` processors participate, not all
    outputs may be equal.  Executions with fewer participants are
    unconstrained (the standard formulation).
    """

    def __init__(self, n_processors: int) -> None:
        if n_processors < 2:
            raise ValueError("weak symmetry breaking needs >= 2 processors")
        self.n_processors = n_processors

    def is_valid(self, assignment: Mapping[Hashable, Any]) -> bool:
        if any(value not in (0, 1) for value in assignment.values()):
            return False
        if len(assignment) < self.n_processors:
            return True
        return len(set(assignment.values())) == 2

    def explain_violation(self, assignment: Mapping[Hashable, Any]) -> str:
        bad = {v for v in assignment.values() if v not in (0, 1)}
        if bad:
            return f"non-binary outputs {sorted(bad, key=repr)!r}"
        if (
            len(assignment) >= self.n_processors
            and len(set(assignment.values())) != 2
        ):
            return (
                f"all {len(assignment)} participants output"
                f" {next(iter(assignment.values()))!r}: symmetry unbroken"
            )
        return "assignment is valid"
