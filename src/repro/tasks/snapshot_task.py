"""The snapshot task (Definition 3.2).

Each participant ``i`` outputs a set of participating identifiers
``o[i]`` such that ``i ∈ o[i]`` and every pair of outputs is related by
containment.  The task is model-agnostic: it says nothing about memory
contents, which is exactly the distinction the paper draws between the
snapshot *task* and *atomic memory snapshots* (footnote 2).
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping

from repro.core.views import all_comparable
from repro.tasks.base import Task


class SnapshotTask(Task):
    """The classic snapshot task over arbitrary participant identifiers."""

    def is_valid(self, assignment: Mapping[Hashable, Any]) -> bool:
        participants = set(assignment)
        for participant, output in assignment.items():
            output_set = frozenset(output)
            if participant not in output_set:
                return False  # self-inclusion
            if not output_set <= participants:
                return False  # outputs mention only participants
        return all_comparable(assignment.values())

    def explain_violation(self, assignment: Mapping[Hashable, Any]) -> str:
        participants = set(assignment)
        for participant, output in assignment.items():
            output_set = frozenset(output)
            if participant not in output_set:
                return (
                    f"participant {participant!r} missing from its own output"
                    f" {sorted(output_set, key=repr)!r}"
                )
            extras = output_set - participants
            if extras:
                return (
                    f"participant {participant!r} output mentions"
                    f" non-participants {sorted(extras, key=repr)!r}"
                )
        outputs = list(assignment.items())
        for index, (first, first_out) in enumerate(outputs):
            for second, second_out in outputs[index + 1 :]:
                first_set, second_set = frozenset(first_out), frozenset(second_out)
                if not (first_set <= second_set or second_set <= first_set):
                    return (
                        f"outputs of {first!r} and {second!r} are incomparable:"
                        f" {sorted(first_set, key=repr)!r} vs"
                        f" {sorted(second_set, key=repr)!r}"
                    )
        return "assignment is valid"
