"""The adaptive renaming task (Definition 3.3).

With parameter ``f`` (a function on naturals), each participant outputs
a *unique* natural number, and if ``n`` participants participate the
outputs must lie in ``1..f(n)``.  The paper's algorithm achieves
``f(n) = n(n+1)/2``.

Under group solvability, "unique" is required only across groups:
processors in the same group may share a name (Section 3.2, renaming
discussion), and the adaptivity parameter counts participating *groups*.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Mapping

from repro.tasks.base import Task


def bar_noy_dolev_namespace(n: int) -> int:
    """The paper's parameter ``f(n) = n(n+1)/2``."""
    return n * (n + 1) // 2


class AdaptiveRenamingTask(Task):
    """Adaptive renaming with a configurable namespace function."""

    def __init__(self, f: Callable[[int], int] = bar_noy_dolev_namespace) -> None:
        self._f = f

    def is_valid(self, assignment: Mapping[Hashable, Any]) -> bool:
        names = list(assignment.values())
        if len(set(names)) != len(names):
            return False  # uniqueness
        bound = self._f(len(assignment))
        return all(
            isinstance(name, int) and 1 <= name <= bound for name in names
        )

    def explain_violation(self, assignment: Mapping[Hashable, Any]) -> str:
        names = list(assignment.values())
        if len(set(names)) != len(names):
            dupes = sorted({name for name in names if names.count(name) > 1})
            return f"duplicate names across participants: {dupes!r}"
        bound = self._f(len(assignment))
        for participant, name in assignment.items():
            if not isinstance(name, int) or not 1 <= name <= bound:
                return (
                    f"participant {participant!r} name {name!r} outside"
                    f" 1..{bound} (n={len(assignment)})"
                )
        return "assignment is valid"
