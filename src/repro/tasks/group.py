"""Group solvability (Section 3.2, Definition 3.4).

Gafni's notion, adopted by the paper: view a task as referring to
*groups* (one group per distinct input value) rather than individual
processors.  An algorithm group-solves a task when, for every execution
and every *output sample* — every function mapping each participating
group's identifier to the output of one of its members — the sample is a
valid output assignment of the task.

This module turns that definition into an executable check over a
finished execution: given the group of each processor and the outputs
the processors produced, it enumerates (or samples, for large groups)
all output samples and validates each against the task.

The enumeration is exponential in the number of *distinct* outputs per
group, not in group size (identical outputs within a group produce
identical samples); executions of the paper's algorithms rarely have
more than a couple of distinct outputs per group, so exhaustive checking
is the norm and sampling the fallback.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterator, List, Mapping, Optional, Tuple

from repro.tasks.base import Task


def groups_from_inputs(inputs: Mapping[int, Hashable]) -> Dict[Hashable, Tuple[int, ...]]:
    """Partition processors into groups by input value.

    ``inputs`` maps pid -> input; the result maps group identifier (the
    shared input value) to the sorted tuple of member pids.  This is the
    paper's ``G_i`` = "set of all processors with input ``i``".
    """
    groups: Dict[Hashable, List[int]] = {}
    for pid, value in inputs.items():
        groups.setdefault(value, []).append(pid)
    return {gid: tuple(sorted(members)) for gid, members in groups.items()}


def iter_output_samples(
    groups: Mapping[Hashable, Tuple[int, ...]],
    outputs: Mapping[int, Any],
) -> Iterator[Dict[Hashable, Any]]:
    """Yield every output sample of the execution.

    A sample picks, for each participating group (one with at least one
    member that produced an output), the output of one member.  Distinct
    samples that pick equal outputs are deduplicated, which keeps the
    enumeration proportional to distinct outputs per group.
    """
    participating: List[Tuple[Hashable, List[Any]]] = []
    for gid in sorted(groups, key=repr):
        members = groups[gid]
        member_outputs = [outputs[pid] for pid in members if pid in outputs]
        if not member_outputs:
            continue
        distinct: List[Any] = []
        for output in member_outputs:
            if output not in distinct:
                distinct.append(output)
        participating.append((gid, distinct))
    gids = [gid for gid, _ in participating]
    for combo in itertools.product(*(choices for _, choices in participating)):
        yield dict(zip(gids, combo))


@dataclass
class GroupCheckResult:
    """Outcome of a group-solvability check."""

    valid: bool
    samples_checked: int
    #: The first failing sample, if any, plus the task's diagnostic.
    counterexample: Optional[Dict[Hashable, Any]] = None
    reason: str = ""
    exhaustive: bool = True
    notes: List[str] = field(default_factory=list)


def check_group_solution(
    task: Task,
    inputs: Mapping[int, Hashable],
    outputs: Mapping[int, Any],
    max_samples: int = 100_000,
    rng: Optional[random.Random] = None,
) -> GroupCheckResult:
    """Check Definition 3.4 on one finished execution.

    Parameters
    ----------
    task:
        The task whose specification samples must satisfy (with group
        identifiers playing the role of participant identifiers).
    inputs:
        pid -> input value, for every processor that *participated*
        (took at least one step).  Groups are derived from it.
    outputs:
        pid -> output, for the processors that terminated.  Processors
        that participated but did not terminate constrain nothing
        (Definition 3.4 quantifies over output samples, which pick
        outputs of members that produced one).
    max_samples:
        Cap on enumerated samples.  Beyond it, the check switches to
        uniform sampling (``exhaustive=False`` in the result).
    """
    groups = groups_from_inputs(inputs)
    checked = 0
    sampler = iter_output_samples(groups, outputs)
    for sample in sampler:
        if checked >= max_samples:
            break
        checked += 1
        if not task.is_valid(sample):
            return GroupCheckResult(
                valid=False,
                samples_checked=checked,
                counterexample=sample,
                reason=task.explain_violation(sample),
            )
    else:
        return GroupCheckResult(valid=True, samples_checked=checked)

    # Enumeration exceeded the cap: fall back to random sampling.
    rng = rng or random.Random(0)
    participating = {
        gid: sorted(
            {repr(outputs[pid]): outputs[pid] for pid in members if pid in outputs}.values(),
            key=repr,
        )
        for gid, members in groups.items()
        if any(pid in outputs for pid in members)
    }
    for _ in range(max_samples):
        sample = {gid: rng.choice(choices) for gid, choices in participating.items()}
        checked += 1
        if not task.is_valid(sample):
            return GroupCheckResult(
                valid=False,
                samples_checked=checked,
                counterexample=sample,
                reason=task.explain_violation(sample),
                exhaustive=False,
            )
    return GroupCheckResult(
        valid=True,
        samples_checked=checked,
        exhaustive=False,
        notes=["sample space exceeded max_samples; validated by sampling"],
    )
