"""ASCII timelines of executions.

Renders a trace as one lane per processor plus one per register, which
makes covering patterns — the paper's central phenomenon — visible at a
glance: you can watch a poised write land on a register just after it
was read, erasing a value nobody else ever saw.

Two renderers:

- :func:`render_lanes` — one column per event, one row per processor;
  ``W0``/``R2`` cells mark a write/read of physical register 0/2, ``!``
  marks the output step;
- :func:`render_register_history` — one row per register, showing the
  sequence of values it held, each annotated with its writer and
  whether anyone else read it before it was overwritten (erasures show
  as ``✗``).

Both are plain functions from a :class:`~repro.memory.trace.Trace` to a
string; the examples print them and the tests pin their structure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.memory.trace import ReadEvent, Trace, WriteEvent


def render_lanes(
    trace: Trace,
    max_events: int = 80,
    processor_names: Optional[Sequence[str]] = None,
) -> str:
    """One row per processor, one column per (shared-memory) event."""
    events = list(trace)[:max_events]
    pids = sorted({event.pid for event in events})
    names = {
        pid: (processor_names[pid] if processor_names else f"p{pid}")
        for pid in pids
    }
    width = max((len(name) for name in names.values()), default=2)

    def cell(event, pid) -> str:
        if event.pid != pid:
            return " . "
        if isinstance(event, WriteEvent):
            return f"W{event.physical_index} "
        if isinstance(event, ReadEvent):
            return f"R{event.physical_index} "
        return " ! "

    lines = []
    for pid in pids:
        row = "".join(cell(event, pid) for event in events)
        lines.append(f"{names[pid]:>{width}} |{row}")
    truncated = len(trace) - len(events)
    if truncated > 0:
        lines.append(f"... ({truncated} more events)")
    return "\n".join(lines)


def render_register_history(
    trace: Trace, n_registers: int, max_entries_per_register: int = 20
) -> str:
    """One row per physical register: the values it held over time.

    Each entry is ``value@writer`` with a trailing ``✗`` when the value
    was overwritten before any *other* processor read it (information
    erased without communicating — the §2.1 phenomenon).
    """
    # Collect, per register, its write history plus read observations.
    entries: Dict[int, List[dict]] = {reg: [] for reg in range(n_registers)}
    for event in trace:
        if isinstance(event, WriteEvent):
            entries[event.physical_index].append(
                {"value": event.value, "writer": event.pid, "seen": False}
            )
        elif isinstance(event, ReadEvent):
            history = entries.get(event.physical_index)
            if history:
                if event.pid != history[-1]["writer"]:
                    history[-1]["seen"] = True

    lines = []
    for reg in range(n_registers):
        rendered = []
        history = entries[reg]
        for index, entry in enumerate(history[:max_entries_per_register]):
            erased = index < len(history) - 1 and not entry["seen"]
            marker = "✗" if erased else ""
            rendered.append(
                f"{_short(entry['value'])}@p{entry['writer']}{marker}"
            )
        suffix = ""
        if len(history) > max_entries_per_register:
            suffix = f" … (+{len(history) - max_entries_per_register})"
        lines.append(f"r{reg}: " + " → ".join(rendered) + suffix)
    return "\n".join(lines)


def erasure_summary(trace: Trace, n_registers: int) -> Dict[int, int]:
    """Per-register count of values erased before anyone else read them."""
    counts: Dict[int, int] = {reg: 0 for reg in range(n_registers)}
    last: Dict[int, dict] = {}
    for event in trace:
        if isinstance(event, WriteEvent):
            previous = last.get(event.physical_index)
            if previous is not None and not previous["seen"]:
                counts[event.physical_index] += 1
            last[event.physical_index] = {"writer": event.pid, "seen": False}
        elif isinstance(event, ReadEvent):
            entry = last.get(event.physical_index)
            if entry is not None and event.pid != entry["writer"]:
                entry["seen"] = True
    return counts


def _short(value) -> str:
    """Compact rendering of a register value."""
    view = getattr(value, "view", None)
    if view is not None:
        inner = ",".join(str(v) for v in sorted(view, key=repr))
        level = getattr(value, "level", None)
        return f"{{{inner}}}" + (f"|{level}" if level is not None else "")
    if isinstance(value, frozenset):
        return "{" + ",".join(str(v) for v in sorted(value, key=repr)) + "}"
    return repr(value)
