"""Execution statistics for the benchmark harness.

Step accounting, overwrite/covering counters, and level traces.  An
*overwrite of unread information* is a write landing on a register whose
previous value was never read by anyone **other than its own writer** —
the information was erased before it communicated anything, which is the
erasure phenomenon the fully-anonymous model struggles with (Sections 1
and 2.1; a writer re-reading its own value during its scan communicates
nothing).  The benchmark harness uses these counters to show *why* the
anonymous algorithms pay more steps than the named-memory baselines
(E10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.memory.trace import ReadEvent, Trace, WriteEvent


@dataclass
class ExecutionStatistics:
    """Aggregated per-execution counters."""

    total_steps: int
    reads: int
    writes: int
    outputs: int
    steps_per_pid: Dict[int, int]
    #: Writes that erased a value nobody but its writer had read
    #: (information lost before it communicated anything).
    unread_overwrites: int
    #: Writes landing on a register whose last writer was a different
    #: processor (the "overwriting each other" of Section 1).
    cross_overwrites: int
    max_steps_per_pid: int = 0
    mean_steps_per_pid: float = 0.0

    def summary(self) -> str:
        return (
            f"steps={self.total_steps} (r={self.reads}, w={self.writes},"
            f" out={self.outputs}); per-pid max={self.max_steps_per_pid},"
            f" mean={self.mean_steps_per_pid:.1f};"
            f" unread overwrites={self.unread_overwrites},"
            f" cross overwrites={self.cross_overwrites}"
        )


def collect_statistics(trace: Trace) -> ExecutionStatistics:
    """Compute :class:`ExecutionStatistics` from a trace."""
    reads = writes = outputs = 0
    steps_per_pid: Dict[int, int] = {}
    unread_overwrites = 0
    cross_overwrites = 0
    # physical register -> (writer, read by a non-writer since that write?)
    last_write_state: Dict[int, Tuple[Optional[int], bool]] = {}
    for event in trace:
        if isinstance(event, ReadEvent):
            reads += 1
            steps_per_pid[event.pid] = steps_per_pid.get(event.pid, 0) + 1
            writer, seen = last_write_state.get(
                event.physical_index, (None, True)
            )
            if event.pid != writer:
                seen = True
            last_write_state[event.physical_index] = (writer, seen)
        elif isinstance(event, WriteEvent):
            writes += 1
            steps_per_pid[event.pid] = steps_per_pid.get(event.pid, 0) + 1
            previous = last_write_state.get(event.physical_index)
            if previous is not None:
                previous_writer, was_read = previous
                if not was_read:
                    unread_overwrites += 1
                if previous_writer is not None and previous_writer != event.pid:
                    cross_overwrites += 1
            last_write_state[event.physical_index] = (event.pid, False)
        else:
            outputs += 1
    per_pid_values = list(steps_per_pid.values())
    return ExecutionStatistics(
        total_steps=reads + writes,
        reads=reads,
        writes=writes,
        outputs=outputs,
        steps_per_pid=steps_per_pid,
        unread_overwrites=unread_overwrites,
        cross_overwrites=cross_overwrites,
        max_steps_per_pid=max(per_pid_values, default=0),
        mean_steps_per_pid=(
            sum(per_pid_values) / len(per_pid_values) if per_pid_values else 0.0
        ),
    )


def overwrite_counts(trace: Trace) -> Dict[int, int]:
    """Per-processor count of cross-processor overwrites."""
    counts: Dict[int, int] = {}
    for event in trace:
        if isinstance(event, WriteEvent):
            if event.overwrote is not None and event.overwrote != event.pid:
                counts[event.pid] = counts.get(event.pid, 0) + 1
    return counts


def level_trace(trace: Trace) -> Dict[int, List[int]]:
    """Per-processor sequence of levels carried by its writes.

    Registers in the snapshot algorithm hold ``(view, level)`` records;
    the level each processor attaches to its writes traces its climb
    toward the termination level (Section 5.1's intuition, benchmark
    E11).
    """
    levels: Dict[int, List[int]] = {}
    for event in trace:
        if isinstance(event, WriteEvent):
            level = getattr(event.value, "level", None)
            if level is not None:
                levels.setdefault(event.pid, []).append(level)
    return levels


# ----------------------------------------------------------------------
# Orbit statistics of symmetry-reduced exploration (checker-side)
# ----------------------------------------------------------------------

@dataclass
class SymmetryStatistics:
    """Aggregated orbit counts from symmetry-reduced exploration runs.

    One entry summarizes a set of :class:`FastExplorationResult` /
    :class:`ExplorationResult` objects produced with ``symmetry=True``:
    how many orbit representatives were explored, how many concrete
    states those orbits cover, and the resulting reduction ratio — the
    multiplier the quotient construction saved over unreduced
    exploration of the same coverage (benchmark E15's ``symmetry``
    section and the ``check --symmetry`` sweep total).
    """

    #: Orbit representatives explored (states actually visited).
    representatives: int
    #: Concrete states covered: the sum of orbit sizes.
    covered: int
    #: Per-run wiring-stabilizer group orders, in input order.
    group_orders: List[int] = field(default_factory=list)
    #: Sharded runs: boundary states whose re-canonicalization the
    #: wire format's canonical bit made unnecessary.
    recanonicalizations_skipped: int = 0

    @property
    def reduction_ratio(self) -> float:
        """Concrete states certified per state explored (>= 1.0)."""
        if self.representatives == 0:
            return 1.0
        return self.covered / self.representatives

    @property
    def mean_orbit_size(self) -> float:
        """Synonym for :attr:`reduction_ratio` in orbit terms."""
        return self.reduction_ratio

    def summary(self) -> str:
        orders = ",".join(str(order) for order in self.group_orders)
        skipped = (
            f"; {self.recanonicalizations_skipped} re-canonicalizations"
            f" skipped"
            if self.recanonicalizations_skipped
            else ""
        )
        return (
            f"{self.representatives} representatives cover {self.covered}"
            f" concrete states ({self.reduction_ratio:.2f}x reduction;"
            f" stabilizer orders [{orders}]{skipped})"
        )


@dataclass
class StoreStatistics:
    """Aggregated fingerprint-store counters from exploration runs.

    One entry folds the ``store_counters`` of a set of results produced
    with an explicit :class:`~repro.store.StoreConfig`: how many keys
    the backends hold, how many bytes live on disk, and the operation
    counters that explain the cost profile (spills, merges, disk probes
    vs Bloom-filter short-circuits).  Benchmark E15's ``store`` section
    and the ``check --store`` report both build on this shape.
    """

    #: Distinct keys across all stores (sum of ``entries``).
    entries: int
    #: Bytes the stores occupy on disk (0 for pure-RAM runs).
    file_bytes: int
    #: Spill-backend events: buffer flushes to sorted runs.
    spills: int = 0
    #: Spill-backend events: sorted-run consolidations.
    merges: int = 0
    #: Lookups that had to touch a run file.
    disk_probes: int = 0
    #: Lookups the Bloom filter resolved without touching disk.
    bloom_skips: int = 0
    #: Wall-clock milliseconds spent consolidating sorted runs
    #: (spill backend; parallel merges count elapsed, not CPU, time).
    merge_wall_ms: int = 0

    @property
    def disk_hit_fraction(self) -> float:
        """Fraction of disk-eligible lookups that actually read a run."""
        total = self.disk_probes + self.bloom_skips
        if total == 0:
            return 0.0
        return self.disk_probes / total

    def summary(self) -> str:
        disk = (
            f"; {self.file_bytes / (1024 * 1024):.1f} MiB on disk"
            f" ({self.spills} spills, {self.merges} merges"
            f" in {self.merge_wall_ms} ms,"
            f" disk-hit fraction {self.disk_hit_fraction:.3f})"
            if self.file_bytes
            else ""
        )
        return f"{self.entries} stored keys{disk}"


def aggregate_store_statistics(results) -> StoreStatistics:
    """Fold exploration results into one :class:`StoreStatistics`.

    Accepts any iterable of result objects; results without
    ``store_counters`` (runs on the implicit default store) contribute
    nothing, so mixed sweeps aggregate correctly.
    """
    totals = StoreStatistics(entries=0, file_bytes=0)
    for result in results:
        counters = getattr(result, "store_counters", None)
        if not counters:
            continue
        totals.entries += counters.get("entries", 0)
        totals.file_bytes += counters.get("file_bytes", 0)
        totals.spills += counters.get("spills", 0)
        totals.merges += counters.get("merges", 0)
        totals.disk_probes += counters.get("disk_probes", 0)
        totals.bloom_skips += counters.get("bloom_skips", 0)
        totals.merge_wall_ms += counters.get("merge_wall_ms", 0)
    return totals


@dataclass
class PORStatistics:
    """Aggregated ample-set reduction counters from exploration runs.

    One entry folds the ``por_counters`` of a set of results produced
    with ``por=True`` (:mod:`repro.checker.por`): how many transitions
    the ample sets pruned, how the expanded states split between ample
    and full expansion, and how often the cycle proviso (C3) forced a
    full expansion that invisibility alone would have allowed to be
    reduced.  Benchmark E15's ``por`` section and the ``check --por``
    sweep summary both build on this shape.
    """

    #: Successor transitions the ample sets never generated.
    transitions_pruned: int
    #: Expanded states whose ample set was a strict subset of their
    #: enabled transitions.
    ample_states: int
    #: Expanded states that were fully expanded (no valid ample set,
    #: fewer than two active processors, or C3 rejection).
    fully_expanded_states: int
    #: Full expansions forced *specifically* by the cycle proviso: some
    #: candidate passed C0-C2 but every candidate's successors were all
    #: already visited.
    cycle_proviso_expansions: int = 0

    @property
    def states(self) -> int:
        """Total expanded states (ample + full)."""
        return self.ample_states + self.fully_expanded_states

    @property
    def ample_fraction(self) -> float:
        """Fraction of expanded states that took an ample (reduced) set."""
        if self.states == 0:
            return 0.0
        return self.ample_states / self.states

    def summary(self) -> str:
        return (
            f"{self.transitions_pruned} transitions pruned;"
            f" {self.ample_states}/{self.states} states ample"
            f" ({self.ample_fraction:.2f});"
            f" {self.cycle_proviso_expansions} cycle-proviso expansions"
        )


def aggregate_por_statistics(results) -> PORStatistics:
    """Fold exploration results into one :class:`PORStatistics`.

    Accepts any iterable of result objects; results without
    ``por_counters`` (unreduced runs) contribute nothing, so mixed
    sweeps aggregate correctly.
    """
    totals = PORStatistics(
        transitions_pruned=0, ample_states=0, fully_expanded_states=0
    )
    for result in results:
        counters = getattr(result, "por_counters", None)
        if not counters:
            continue
        totals.transitions_pruned += counters.get("transitions_pruned", 0)
        totals.ample_states += counters.get("ample_states", 0)
        totals.fully_expanded_states += counters.get(
            "fully_expanded_states", 0
        )
        totals.cycle_proviso_expansions += counters.get(
            "cycle_proviso_expansions", 0
        )
    return totals


# ----------------------------------------------------------------------
# Per-worker statistics of distributed service runs (checker-side)
# ----------------------------------------------------------------------

@dataclass
class WorkerStatistics:
    """One service worker's contribution to a campaign.

    Built from the stats a worker reports in its ``pong`` frames (see
    :mod:`repro.service.worker`): cumulative admissions/expansions over
    the rounds it served, the time it spent actually exploring
    (``busy_ms``, excluding waits for the coordinator's round merges),
    and its last reported footprint.
    """

    name: str
    states: int = 0
    transitions: int = 0
    rounds: int = 0
    busy_ms: float = 0.0
    rss_bytes: int = 0
    shards: List[int] = field(default_factory=list)
    alive: bool = True
    last_seen_age_s: float = 0.0

    def utilization(self, wall_s: float) -> float:
        """Fraction of ``wall_s`` this worker spent exploring."""
        if wall_s <= 0:
            return 0.0
        return min(1.0, (self.busy_ms / 1000.0) / wall_s)


@dataclass
class ServiceStatistics:
    """Aggregated fleet statistics of one distributed campaign.

    The roll-up behind ``repro status`` and benchmark E15's ``service``
    section: total throughput plus the per-worker split that shows
    whether the shard assignment kept the fleet busy.
    """

    workers: List[WorkerStatistics]
    wall_s: float = 0.0
    states: int = 0
    transitions: int = 0

    @property
    def states_per_s(self) -> float:
        if self.wall_s <= 0:
            return 0.0
        return self.states / self.wall_s

    @property
    def mean_utilization(self) -> float:
        if not self.workers:
            return 0.0
        return sum(
            worker.utilization(self.wall_s) for worker in self.workers
        ) / len(self.workers)

    def summary(self) -> str:
        split = ", ".join(
            f"{worker.name}: {worker.states} states"
            f" ({worker.utilization(self.wall_s):.0%} busy)"
            for worker in self.workers
        )
        return (
            f"{self.states} states in {self.wall_s:.2f}s"
            f" ({self.states_per_s:.0f}/s) across {len(self.workers)}"
            f" worker(s) [{split}]"
        )


def aggregate_service_statistics(
    worker_stats, wall_s: float
) -> ServiceStatistics:
    """Fold per-worker stat dicts into one :class:`ServiceStatistics`.

    ``worker_stats`` is an iterable of the dicts the coordinator holds
    per worker (``pong`` stats merged with membership fields — the
    shape :meth:`WorkerHandle.describe` returns and ``repro status``
    prints).  Unknown keys are ignored so coordinator and client can
    evolve independently.
    """
    workers = []
    for stats in worker_stats:
        workers.append(WorkerStatistics(
            name=str(stats.get("name", "?")),
            states=int(stats.get("states") or 0),
            transitions=int(stats.get("transitions") or 0),
            rounds=int(stats.get("rounds") or 0),
            busy_ms=float(stats.get("busy_ms") or 0.0),
            rss_bytes=int(stats.get("rss") or 0),
            shards=list(stats.get("shards") or []),
            alive=bool(stats.get("alive", True)),
            last_seen_age_s=float(stats.get("last_seen_age_s") or 0.0),
        ))
    return ServiceStatistics(
        workers=workers,
        wall_s=wall_s,
        states=sum(worker.states for worker in workers),
        transitions=sum(worker.transitions for worker in workers),
    )


def aggregate_symmetry_statistics(results) -> SymmetryStatistics:
    """Fold exploration results into one :class:`SymmetryStatistics`.

    Accepts any iterable of result objects carrying ``states`` and the
    symmetry fields (``covered_states``, ``symmetry_group_order``);
    results from unreduced runs (``covered_states is None``) count
    their states as covering exactly themselves, so mixed sweeps
    aggregate correctly.
    """
    representatives = 0
    covered = 0
    skipped = 0
    orders: List[int] = []
    for result in results:
        representatives += result.states
        result_covered = getattr(result, "covered_states", None)
        covered += result_covered if result_covered is not None else result.states
        order = getattr(result, "symmetry_group_order", None)
        orders.append(order if order is not None else 1)
        result_skipped = getattr(result, "recanonicalizations_skipped", None)
        skipped += result_skipped if result_skipped is not None else 0
    return SymmetryStatistics(
        representatives=representatives,
        covered=covered,
        group_orders=orders,
        recanonicalizations_skipped=skipped,
    )
