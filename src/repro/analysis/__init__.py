"""Execution analysis: stable views, the eventual pattern, statistics.

- :mod:`repro.analysis.stable_views` — construction of the stable-view
  graph (Definition 4.3) from certified lassos, and the Theorem 4.8
  checks (DAG, unique source);
- :mod:`repro.analysis.statistics` — step accounting, covering/overwrite
  counters and level traces used by the benchmark harness.
"""

from repro.analysis.stable_views import (
    StableViewGraph,
    stable_view_graph_from_lasso,
    stable_views_of_lasso,
)
from repro.analysis.consensus_livelock import (
    LivelockCertificate,
    analyze_undecided_region,
)
from repro.analysis.statistics import (
    ExecutionStatistics,
    PORStatistics,
    ServiceStatistics,
    StoreStatistics,
    SymmetryStatistics,
    WorkerStatistics,
    aggregate_por_statistics,
    aggregate_service_statistics,
    aggregate_store_statistics,
    aggregate_symmetry_statistics,
    collect_statistics,
    level_trace,
    overwrite_counts,
)
from repro.analysis.timeline import (
    erasure_summary,
    render_lanes,
    render_register_history,
)

__all__ = [
    "StableViewGraph",
    "stable_views_of_lasso",
    "stable_view_graph_from_lasso",
    "ExecutionStatistics",
    "collect_statistics",
    "overwrite_counts",
    "level_trace",
    "SymmetryStatistics",
    "aggregate_symmetry_statistics",
    "PORStatistics",
    "aggregate_por_statistics",
    "StoreStatistics",
    "aggregate_store_statistics",
    "ServiceStatistics",
    "WorkerStatistics",
    "aggregate_service_statistics",
    "render_lanes",
    "render_register_history",
    "erasure_summary",
    "LivelockCertificate",
    "analyze_undecided_region",
]
