"""Stable views and the eventual pattern (Section 4).

Definitions from the paper:

- a processor is *live* if it takes infinitely many steps (Def. 4.1's
  setting); the *global stabilization time* GST is the earliest time
  after which all views are stable, non-live processors have taken
  their last step, and their writes have been overwritten;
- a *stable view* (Def. 4.2) is the view of a live processor after GST;
- the *stable-view graph* (Def. 4.3) has the stable views as vertices
  and an edge ``V1 -> V2`` whenever ``V1 ⊂ V2``;
- **Theorem 4.8**: the stable-view graph is a DAG with a unique source.

On a *certified lasso* (a finite prefix reaching a state that recurs —
see :class:`repro.sim.runner.Lasso`) these notions are exact, not
approximate: the infinite execution repeats the cycle forever, the live
processors are exactly those scheduled within the cycle, views are
constant throughout the cycle (they are monotone and the state recurs),
and GST is at most the start of the cycle.

The graph is represented natively and can be exported to a
:mod:`networkx` digraph for the benchmark harness's structural surveys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.views import View
from repro.sim.runner import ExecutionResult, Lasso


@dataclass(frozen=True)
class StableViewGraph:
    """The stable-view graph of an infinite execution."""

    vertices: FrozenSet[View]
    #: Edges ``(V1, V2)`` with ``V1`` a strict subset of ``V2``.
    edges: FrozenSet[Tuple[View, View]]
    #: Stable view per live processor.
    views_by_pid: Dict[int, View]

    def sources(self) -> List[View]:
        """Vertices with no incoming edge."""
        targets = {edge[1] for edge in self.edges}
        return sorted(
            (vertex for vertex in self.vertices if vertex not in targets),
            key=lambda v: (len(v), sorted(map(repr, v))),
        )

    def is_dag(self) -> bool:
        """Always true by construction (strict containment is a strict
        partial order); kept as an executable sanity check."""
        # Kahn's algorithm; cycles would leave vertices unprocessed.
        incoming = {vertex: 0 for vertex in self.vertices}
        for _, target in self.edges:
            incoming[target] += 1
        frontier = [v for v, degree in incoming.items() if degree == 0]
        processed = 0
        adjacency: Dict[View, List[View]] = {v: [] for v in self.vertices}
        for source, target in self.edges:
            adjacency[source].append(target)
        while frontier:
            vertex = frontier.pop()
            processed += 1
            for target in adjacency[vertex]:
                incoming[target] -= 1
                if incoming[target] == 0:
                    frontier.append(target)
        return processed == len(self.vertices)

    def has_unique_source(self) -> bool:
        """The Theorem 4.8 property."""
        return len(self.sources()) == 1

    def to_networkx(self):
        """Export to a networkx DiGraph (nodes are sorted-tuple views)."""
        import networkx as nx

        graph = nx.DiGraph()
        for vertex in self.vertices:
            graph.add_node(tuple(sorted(vertex, key=repr)))
        for source, target in self.edges:
            graph.add_edge(
                tuple(sorted(source, key=repr)), tuple(sorted(target, key=repr))
            )
        return graph

    def describe(self) -> str:
        def fmt(v: View) -> str:
            return "{" + ",".join(str(x) for x in sorted(v, key=repr)) + "}"

        vertex_text = ", ".join(fmt(v) for v in sorted(
            self.vertices, key=lambda v: (len(v), sorted(map(repr, v)))
        ))
        edge_text = ", ".join(
            f"{fmt(a)}->{fmt(b)}"
            for a, b in sorted(
                self.edges, key=lambda e: (len(e[0]), len(e[1]), repr(e))
            )
        )
        return (
            f"vertices: [{vertex_text}]  edges: [{edge_text}]"
            f"  sources: {[fmt(s) for s in self.sources()]}"
        )


def stable_views_of_lasso(result: ExecutionResult) -> Dict[int, View]:
    """Stable view per live processor, from a lasso-certified run.

    The live processors are those taking steps within the cycle; their
    views at the end of the run (a state on the cycle) are their stable
    views, because views are monotone and the cycle returns to the same
    state — so they cannot change anywhere on the cycle.
    """
    if result.lasso is None:
        raise ValueError("execution result carries no certified lasso")
    views: Dict[int, View] = {}
    for pid in result.lasso.cycle_pids:
        state = result.final_states[pid]
        view = getattr(state, "view", None)
        if view is None:
            raise TypeError(f"process {pid} state has no view: {state!r}")
        views[pid] = view
    return views


def stable_view_graph_from_lasso(result: ExecutionResult) -> StableViewGraph:
    """Build the Definition 4.3 graph from a lasso-certified run."""
    views_by_pid = stable_views_of_lasso(result)
    vertices = frozenset(views_by_pid.values())
    edges = frozenset(
        (first, second)
        for first in vertices
        for second in vertices
        if first < second
    )
    return StableViewGraph(
        vertices=vertices, edges=edges, views_by_pid=views_by_pid
    )


def approximate_stable_view_graph(
    views_over_time: Sequence[Dict[int, View]],
    stable_fraction: float = 0.5,
) -> Optional[StableViewGraph]:
    """Finite-prefix approximation for runs without a certified lasso.

    Takes periodic samples of all views; if every view is constant over
    the trailing ``stable_fraction`` of the samples, treats those as
    stable and builds the graph, otherwise returns ``None`` (the run has
    visibly not stabilized — callers should run longer).
    """
    if not views_over_time:
        return None
    cutoff = int(len(views_over_time) * (1 - stable_fraction))
    tail = views_over_time[cutoff:]
    reference = tail[-1]
    for sample in tail:
        if sample != reference:
            return None
    vertices = frozenset(reference.values())
    edges = frozenset(
        (first, second)
        for first in vertices
        for second in vertices
        if first < second
    )
    return StableViewGraph(
        vertices=vertices, edges=edges, views_by_pid=dict(reference)
    )
