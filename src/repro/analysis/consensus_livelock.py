"""Certifying that the consensus algorithm is not wait-free.

The Figure 5 consensus algorithm is obstruction-free; classic
impossibility results (registers have consensus number 1) say it cannot
be wait-free, i.e. *some* execution keeps processors stepping forever
without a decision.  Exhibiting that execution is subtle — naive
adversaries (lockstep, 1-step decision avoidance) get cornered and a
decision happens.

This module certifies non-wait-freedom mechanically by exhaustive BFS
of the *undecided region* (all reachable states in which nobody has
decided): if the frontier is non-empty at every explored depth ``D``,
undecided executions of length ``D`` exist for every explored ``D``.
Since the transition system is finitely branching, König's lemma turns
"undecided prefixes of unbounded length" into an infinite undecided
execution; the exploration certifies the premise up to the chosen
horizon, and the consensus-number-1 impossibility (registers cannot
solve wait-free consensus) guarantees it continues beyond.

Note the undecided region genuinely grows without bound: views
accumulate one timestamped record per completed snapshot invocation and
never shrink, so there is no finite quotient to close off — even modulo
shifting all timestamps (the normalization below), old low-timestamp
records persist while new ones climb, and the normalized region is
still infinite.  :func:`normalize_timestamps` is nevertheless useful to
*observe* the periodic structure of the region (frontier sizes repeat
with a fixed period once normalized), which the E8 benchmark reports.

The check runs in benchmark E8 and the consensus tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Set

from repro.checker.system import GlobalState, SystemSpec
from repro.core.consensus import ConsensusState, TimestampedValue
from repro.core.views import RegisterRecord


def _shift_view(view, delta: int):
    return frozenset(
        TimestampedValue(record.value, record.timestamp - delta)
        if isinstance(record, TimestampedValue)
        else record
        for record in view
    )


def _min_timestamp_of_state(state: GlobalState) -> int:
    timestamps: List[int] = []
    for register in state.registers:
        if isinstance(register, RegisterRecord):
            for record in register.view:
                if isinstance(record, TimestampedValue):
                    timestamps.append(record.timestamp)
    for local in state.locals:
        if isinstance(local, ConsensusState):
            timestamps.append(local.timestamp)
            for record in local.inner.view:
                if isinstance(record, TimestampedValue):
                    timestamps.append(record.timestamp)
    return min(timestamps, default=0)


def normalize_timestamps(state: GlobalState) -> GlobalState:
    """Shift all timestamps so the smallest one becomes 0.

    The consensus transition relation commutes with a uniform timestamp
    shift (timestamps are only compared and incremented), so normalized
    states are representatives of shift-equivalence classes.
    """
    delta = _min_timestamp_of_state(state)
    if delta == 0:
        return state
    registers = tuple(
        RegisterRecord(view=_shift_view(reg.view, delta), level=reg.level)
        if isinstance(reg, RegisterRecord)
        else reg
        for reg in state.registers
    )
    locals_: List = []
    for local in state.locals:
        if isinstance(local, ConsensusState):
            inner = replace(local.inner, view=_shift_view(local.inner.view, delta))
            locals_.append(
                ConsensusState(
                    inner=inner,
                    preference=local.preference,
                    timestamp=local.timestamp - delta,
                    decision=local.decision,
                )
            )
        else:  # pragma: no cover - defensive
            locals_.append(local)
    return GlobalState(registers=registers, locals=tuple(locals_))


@dataclass
class LivelockCertificate:
    """Result of the undecided-region analysis."""

    #: Depth explored by the frontier sweep.
    depth: int
    #: Frontier sizes per depth (1-indexed).
    frontier_sizes: List[int]
    #: Total distinct undecided states seen by the sweep.
    states_seen: int
    #: Period of the normalized frontier-size sequence, if one shows up
    #: within the sweep (structure observation, not part of the proof).
    observed_period: Optional[int] = None

    @property
    def unbounded_prefixes(self) -> bool:
        """Frontier non-empty at every explored depth."""
        return len(self.frontier_sizes) == self.depth and all(
            size > 0 for size in self.frontier_sizes
        )


def analyze_undecided_region(
    spec: SystemSpec, max_depth: int = 120
) -> LivelockCertificate:
    """Sweep the undecided region to ``max_depth``; see module docstring."""
    frontier: Set[GlobalState] = {spec.initial_state()}
    seen: Set[GlobalState] = set(frontier)
    frontier_sizes: List[int] = []
    for _ in range(max_depth):
        next_frontier: Set[GlobalState] = set()
        for state in frontier:
            for _, successor in spec.successors(state):
                if spec.outputs(successor):
                    continue  # a decision leaves the undecided region
                if successor not in seen:
                    seen.add(successor)
                    next_frontier.add(successor)
        frontier = next_frontier
        frontier_sizes.append(len(frontier))
        if not frontier:
            break

    return LivelockCertificate(
        depth=max_depth,
        frontier_sizes=frontier_sizes,
        states_seen=len(seen),
        observed_period=_detect_period(frontier_sizes),
    )


def _detect_period(sizes: Sequence[int]) -> Optional[int]:
    """Smallest period of the tail of the frontier-size sequence.

    A repeating tail is the visible footprint of the region's
    shift-periodic structure; purely an observation aid.
    """
    n = len(sizes)
    for period in range(1, n // 2 + 1):
        tail = sizes[n - 2 * period :]
        if tail[:period] == tail[period:]:
            return period
    return None
