"""repro — the fully-anonymous shared-memory model, reproduced.

A production-quality reproduction of Losa & Gafni, *"Understanding
Read-Write Wait-Free Coverings in the Fully-Anonymous Shared-Memory
Model"* (PODC 2024): the model, the write-scan loop and its
eventual-pattern theory (stable-view DAGs), the wait-free snapshot-task
algorithm, adaptive renaming, obstruction-free consensus, group
solvability, an explicit-state model checker standing in for TLC, the
paper's adversarial constructions, and baselines from the related-work
lineage.

Quick start
-----------
>>> from repro import run_snapshot
>>> result = run_snapshot(inputs=["a", "b", "c"], seed=7)
>>> all(len(view) >= 1 for view in result.outputs.values())
True

Packages
--------
- :mod:`repro.memory` — anonymous registers, wirings, traces
- :mod:`repro.sim` — processes, schedulers, runner, scripted executions
- :mod:`repro.core` — the paper's algorithms (write-scan, snapshot,
  long-lived snapshot, renaming, consensus)
- :mod:`repro.tasks` — tasks and group solvability
- :mod:`repro.checker` — explicit-state model checking
- :mod:`repro.analysis` — stable views, statistics
- :mod:`repro.baselines` — double-collect, Guerraoui–Ruppert, naive rules
"""

from repro.api import (
    build_runner,
    run_consensus,
    run_renaming,
    run_snapshot,
    run_write_scan,
)
from repro.core import (
    ConsensusMachine,
    LongLivedSnapshotMachine,
    RenamingMachine,
    SnapshotMachine,
    WriteScanMachine,
)
from repro.memory import AnonymousMemory, Wiring, WiringAssignment
from repro.sim import Runner

__version__ = "1.0.0"

__all__ = [
    "run_snapshot",
    "run_renaming",
    "run_consensus",
    "run_write_scan",
    "build_runner",
    "SnapshotMachine",
    "WriteScanMachine",
    "LongLivedSnapshotMachine",
    "RenamingMachine",
    "ConsensusMachine",
    "AnonymousMemory",
    "Wiring",
    "WiringAssignment",
    "Runner",
    "__version__",
]
