"""High-level convenience API.

Most users want: "run the paper's snapshot / renaming / consensus
algorithm with these inputs under this schedule and give me the
outputs".  The functions here assemble the machine, wiring, memory,
processes and runner in one call, with seeded randomness for
reproducibility.  Everything they build is the ordinary public
machinery of :mod:`repro.core`, :mod:`repro.memory` and
:mod:`repro.sim`, so graduating from the convenience layer to explicit
construction is a refactor, not a rewrite.

Example
-------
>>> from repro.api import run_snapshot
>>> result = run_snapshot(inputs=["a", "b", "c"], seed=42)
>>> sorted(sorted(v) for v in result.outputs.values())  # doctest: +SKIP
[['a', 'b', 'c'], ['a', 'b', 'c'], ['a', 'b', 'c']]
"""

from __future__ import annotations

import random
from typing import Hashable, Optional, Sequence

from repro.core.consensus import ConsensusMachine
from repro.core.renaming import RenamingMachine
from repro.core.snapshot import SnapshotMachine
from repro.core.write_scan import WriteScanMachine
from repro.memory.memory import AnonymousMemory
from repro.memory.wiring import WiringAssignment
from repro.sim.machine import AlgorithmMachine, FIRST_ENABLED, RandomPolicy
from repro.sim.process import MachineProcess
from repro.sim.runner import ExecutionResult, Runner
from repro.sim.schedulers import RandomScheduler, Scheduler


def build_runner(
    machine: AlgorithmMachine,
    inputs: Sequence[Hashable],
    seed: Optional[int] = 0,
    wiring: Optional[WiringAssignment] = None,
    scheduler: Optional[Scheduler] = None,
    n_registers: Optional[int] = None,
    detect_lasso: bool = False,
) -> Runner:
    """Assemble a runner for ``len(inputs)`` anonymous processors.

    With ``seed`` given (the default), the wiring, the scheduler and the
    resolution of the algorithms' internal nondeterminism are all drawn
    from one seeded RNG — runs are exactly reproducible.  Pass
    ``seed=None`` for deterministic first-enabled behaviour with a
    round-robin-free random-free setup only if ``wiring`` and
    ``scheduler`` are supplied explicitly.
    """
    n_processors = len(inputs)
    registers = (
        n_registers
        if n_registers is not None
        else getattr(machine, "n_registers", n_processors)
    )
    if seed is None:
        if wiring is None or scheduler is None:
            raise ValueError("seed=None requires explicit wiring and scheduler")
        policy = FIRST_ENABLED
    else:
        rng = random.Random(seed)
        if wiring is None:
            wiring = WiringAssignment.random(n_processors, registers, rng)
        if scheduler is None:
            scheduler = RandomScheduler(rng)
        policy = RandomPolicy(rng)
    memory = AnonymousMemory(wiring, machine.register_initial_value())
    processes = [
        MachineProcess(pid, machine, inputs[pid], policy)
        for pid in range(n_processors)
    ]
    return Runner(memory, processes, scheduler, detect_lasso=detect_lasso)


def run_snapshot(
    inputs: Sequence[Hashable],
    seed: Optional[int] = 0,
    wiring: Optional[WiringAssignment] = None,
    scheduler: Optional[Scheduler] = None,
    n_registers: Optional[int] = None,
    level_target: Optional[int] = None,
    max_steps: int = 1_000_000,
) -> ExecutionResult:
    """Run the wait-free snapshot algorithm (Figure 3) to completion.

    Returns the :class:`~repro.sim.runner.ExecutionResult`; the
    snapshots are ``result.outputs`` (pid -> frozenset of inputs).
    """
    machine = SnapshotMachine(
        len(inputs), n_registers=n_registers, level_target=level_target
    )
    runner = build_runner(machine, inputs, seed, wiring, scheduler, n_registers)
    return runner.run(max_steps)


def run_renaming(
    group_ids: Sequence[Hashable],
    seed: Optional[int] = 0,
    wiring: Optional[WiringAssignment] = None,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 1_000_000,
) -> ExecutionResult:
    """Run adaptive renaming (Figure 4); names are ``result.outputs``."""
    machine = RenamingMachine(len(group_ids))
    runner = build_runner(machine, group_ids, seed, wiring, scheduler)
    return runner.run(max_steps)


def run_consensus(
    proposals: Sequence[Hashable],
    seed: Optional[int] = 0,
    wiring: Optional[WiringAssignment] = None,
    scheduler: Optional[Scheduler] = None,
    max_steps: int = 2_000_000,
) -> ExecutionResult:
    """Run obstruction-free consensus (Figure 5).

    Under a random scheduler decisions are overwhelmingly likely but not
    guaranteed (the algorithm is obstruction-free, not wait-free);
    ``result.outputs`` holds the decisions of the processors that
    decided within ``max_steps``.
    """
    machine = ConsensusMachine(len(proposals))
    runner = build_runner(machine, proposals, seed, wiring, scheduler)
    return runner.run(max_steps)


def submit_campaign(
    state_dir,
    n: int = 2,
    budget: int = 0,
    wait: bool = True,
    timeout: Optional[float] = None,
    **spec_kwargs,
):
    """Submit a checking campaign to a local coordinator and (by
    default) wait for its verdicts.

    The coordinator is discovered through ``state_dir`` (the directory
    ``repro serve --state-dir`` runs on).  ``spec_kwargs`` are the
    remaining :class:`~repro.service.jobs.JobSpec` fields (``symmetry``,
    ``por``, ``engine``, ``shards``, ...).  Returns the finished
    :class:`~repro.service.jobs.JobRecord` when ``wait`` is true, else
    the job id; results are bit-identical to a local
    :func:`~repro.checker.parallel.check_snapshot_classes` run of the
    same configuration.
    """
    from repro.service.jobs import JobSpec
    from repro.service.transport import ServiceClient

    spec = JobSpec(n=n, budget=budget, **spec_kwargs)
    spec.validate()
    with ServiceClient.for_state_dir(state_dir) as client:
        job_id = client.submit(spec)
        if not wait:
            return job_id
        return client.wait(job_id, timeout=timeout)


def run_write_scan(
    inputs: Sequence[Hashable],
    steps: int,
    seed: Optional[int] = 0,
    wiring: Optional[WiringAssignment] = None,
    scheduler: Optional[Scheduler] = None,
    n_registers: Optional[int] = None,
    detect_lasso: bool = False,
) -> ExecutionResult:
    """Run the (non-terminating) write-scan loop for ``steps`` steps."""
    registers = n_registers if n_registers is not None else len(inputs)
    machine = WriteScanMachine(registers)
    runner = build_runner(
        machine, inputs, seed, wiring, scheduler, registers,
        detect_lasso=detect_lasso,
    )
    return runner.run(steps)
