"""The anonlint engine: AST traversal, suppressions, rule dispatch.

Rules are small objects with a ``rule_id`` and a ``check(ctx)``
generator; the engine owns everything around them — parsing, the
parent map over the AST (so rules can ask "what encloses this node and
through which field"), role derivation (machine vs harness code),
suppression comments, and finding collection.

Roles
-----
Every linted module has a *role*:

- ``machine`` — algorithm code that runs inside the paper's model:
  anything under ``core/`` or ``baselines/``.  The ANON/WIRE/WF rule
  families apply only here: a branch on processor identity in harness
  code is just bookkeeping, in machine code it breaks anonymity.
- ``harness`` — everything else (checker, sim, analysis, CLI).

The path-derived role can be overridden with a marker comment anywhere
in the file (fixtures use this)::

    # anonlint: role=<machine|harness>

(spelled with the literal role name — the placeholder above keeps this
module from marking *itself*)

Suppressions
------------
A finding is suppressed when its line (or the line above, with the
``-next-line`` form) carries a matching marker::

    risky_line()  # anonlint: disable=ANON001
    # anonlint: disable-next-line=WF001,ANON001
    risky_line()

Suppressed findings are still produced (with ``suppressed=True``) so
reporters can count them; they never fail a run.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

#: Module role: algorithm code subject to the model's discipline.
ROLE_MACHINE = "machine"
#: Module role: checker/sim/analysis code outside the model.
ROLE_HARNESS = "harness"

#: Path components that make a module machine-role by default.
_MACHINE_PATH_PARTS = frozenset({"core", "baselines"})

# Rule tokens: ANON001-style, with an optional versioned suffix
# (INVAR002v2).
_RULE_TOKEN = r"[A-Z]+[0-9]*(?:v[0-9]+)?"
_SUPPRESS_RE = re.compile(
    r"#\s*anonlint:\s*disable(?P<next>-next-line)?="
    rf"(?P<rules>{_RULE_TOKEN}(?:\s*,\s*{_RULE_TOKEN})*)"
)
_ROLE_RE = re.compile(r"#\s*anonlint:\s*role=(?P<role>machine|harness)")


@dataclass(frozen=True)
class Finding:
    """One rule hit at one source location."""

    rule: str
    path: str
    line: int
    col: int
    symbol: str
    message: str
    suppressed: bool = False

    @property
    def key(self) -> Tuple[str, str, str, str]:
        """Baseline identity: location-free, so findings survive edits
        that only move lines (same contract as the bench schema's
        refusal to key on volatile fields)."""
        return (self.rule, self.path, self.symbol, self.message)

    def format(self) -> str:
        mark = " [suppressed]" if self.suppressed else ""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.rule}"
            f" [{self.symbol}] {self.message}{mark}"
        )


class ModuleContext:
    """Everything a rule needs to inspect one module."""

    def __init__(
        self,
        path: str,
        source: str,
        role: Optional[str] = None,
    ) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.lines = source.splitlines()
        self.role = role or derive_role(path, source)
        self.suppressions = parse_suppressions(self.lines)
        self.parents: Dict[ast.AST, ast.AST] = {}
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node

    @property
    def is_machine(self) -> bool:
        return self.role == ROLE_MACHINE

    # -- AST navigation -------------------------------------------------
    def ancestry(self, node: ast.AST) -> Iterator[Tuple[ast.AST, ast.AST]]:
        """``(parent, child)`` pairs walking from ``node`` to the root.

        ``child`` is the immediate child of ``parent`` on the path, so a
        rule can ask *through which field* the node is reached — e.g.
        ``child is parent.test`` means the node sits in a condition.
        """
        child = node
        parent = self.parents.get(child)
        while parent is not None:
            yield parent, child
            child = parent
            parent = self.parents.get(child)

    def symbol_for(self, node: ast.AST) -> str:
        """Dotted name of the enclosing defs/classes, or ``<module>``."""
        names: List[str] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(
                current,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                names.append(current.name)
            current = self.parents.get(current)
        return ".".join(reversed(names)) if names else "<module>"

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None

    def finding(
        self, rule: str, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule,
            path=self.path,
            line=line,
            col=col,
            symbol=self.symbol_for(node),
            message=message,
        )

    def is_suppressed(self, finding: Finding) -> bool:
        rules = self.suppressions.get(finding.line)
        return rules is not None and finding.rule in rules

    def in_fstring(self, node: ast.AST) -> bool:
        """True when ``node`` sits inside an f-string interpolation
        (within its own statement) — the repo-wide diagnostics
        exemption shared by the taint rules."""
        for parent, _child in self.ancestry(node):
            if isinstance(parent, ast.FormattedValue):
                return True
            if isinstance(parent, ast.stmt):
                return False
        return False


def derive_role(path: str, source: str) -> str:
    """Role from an explicit marker, else from the path."""
    match = _ROLE_RE.search(source)
    if match:
        return match.group("role")
    parts = Path(path).parts
    if _MACHINE_PATH_PARTS & set(parts):
        return ROLE_MACHINE
    return ROLE_HARNESS


def parse_suppressions(lines: Sequence[str]) -> Dict[int, Set[str]]:
    """line number (1-based) -> rule ids suppressed on that line."""
    table: Dict[int, Set[str]] = {}
    for number, text in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        rules = {token.strip() for token in match.group("rules").split(",")}
        target = number + 1 if match.group("next") else number
        table.setdefault(target, set()).update(rules)
    return table


class Rule:
    """Base class: subclasses set ``rule_id``/``summary``, yield findings."""

    rule_id: str = ""
    summary: str = ""

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError


def default_rules() -> List[Rule]:
    """The shipped rule families (import cycle kept out of load time).

    The v2 taint rules *replace* their v1 name-heuristic counterparts:
    ANON002 subsumes ANON001 and INVAR002v2 subsumes INVAR002.
    """
    from repro.lint.anon import IdentityFlowRule
    from repro.lint.invar import EquivarianceTaintRule, InvariantDeclarationRule
    from repro.lint.por import FootprintInferenceRule, VisibilityFootprintRule
    from repro.lint.wf import LoopVariantRule, WaitFreedomRule
    from repro.lint.wire import WiringDisciplineRule

    return [
        IdentityFlowRule(),
        WiringDisciplineRule(),
        InvariantDeclarationRule(),
        EquivarianceTaintRule(),
        WaitFreedomRule(),
        LoopVariantRule(),
        VisibilityFootprintRule(),
        FootprintInferenceRule(),
    ]


def rule_catalog() -> Dict[str, Rule]:
    """Shipped rules keyed by id (for ``--only`` / ``--explain``)."""
    return {rule.rule_id: rule for rule in default_rules()}


def select_rules(only: Iterable[str]) -> List[Rule]:
    """The subset of shipped rules named in ``only``.

    Raises ``ValueError`` naming the unknown ids, so the CLI can turn
    it into a usage error.
    """
    catalog = rule_catalog()
    wanted = list(only)
    unknown = sorted(set(wanted) - set(catalog))
    if unknown:
        known = ", ".join(sorted(catalog))
        raise ValueError(
            f"unknown rule id(s): {', '.join(unknown)} (known: {known})"
        )
    return [catalog[rule_id] for rule_id in wanted]


@dataclass
class LintReport:
    """All findings of one run, split by suppression state."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]


class LintEngine:
    """Run the rule set over sources, files, or directory trees."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules = list(rules) if rules is not None else default_rules()

    def lint_source(
        self, source: str, path: str = "<string>", role: Optional[str] = None
    ) -> List[Finding]:
        ctx = ModuleContext(path, source, role=role)
        findings: List[Finding] = []
        for rule in self.rules:
            for finding in rule.check(ctx):
                if ctx.is_suppressed(finding):
                    finding = replace(finding, suppressed=True)
                findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def lint_file(self, path: Path, root: Optional[Path] = None) -> List[Finding]:
        relative = path
        if root is not None:
            try:
                relative = path.resolve().relative_to(root.resolve())
            except ValueError:
                relative = path
        source = path.read_text(encoding="utf-8")
        return self.lint_source(source, path=relative.as_posix())

    def lint_paths(
        self, paths: Iterable[Path], root: Optional[Path] = None
    ) -> LintReport:
        report = LintReport()
        for path in discover_files(paths):
            report.files_checked += 1
            report.findings.extend(self.lint_file(path, root=root))
        report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return report


def discover_files(paths: Iterable[Path]) -> List[Path]:
    """Expand directories into sorted ``.py`` files (dedup, stable order)."""
    seen: Set[Path] = set()
    result: List[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            result.append(candidate)
    return result
