"""anonlint: model-soundness static analysis for the reproduction.

The paper's results hold in a specific model — fully anonymous
processors, wiring-permuted register access, symmetry-reduced checking
sound only for permutation-invariant properties.  This package
enforces those model obligations mechanically, at lint time:

- **ANON** (:mod:`repro.lint.anon`) — machine code must not act on
  processor identity;
- **WIRE** (:mod:`repro.lint.wire`) — shared-memory access only
  through the wiring permutation;
- **INVAR** (:mod:`repro.lint.invar`) — symmetry-checked properties
  must be declared invariant and avoid non-equivariant constructs;
- **WF** (:mod:`repro.lint.wf`) — unbounded machine loops must name a
  progress guard.

Plus a metamorphic *dynamic* verifier (:mod:`repro.lint.dynamic`) that
tests declared invariance semantically on wiring-stabilizer orbits.

Entry point: ``python -m repro lint`` (see :mod:`repro.cli`);
suppression and baseline workflow in ``docs/linting.md``.
"""

from repro.lint.baseline import (
    Baseline,
    BaselineEntry,
    BaselineMatch,
    git_sha,
    load_baseline,
    match_baseline,
    write_baseline,
)
from repro.lint.dynamic import (
    DynamicVerification,
    builtin_verifications,
    reachable_sample,
    verify_invariant,
)
from repro.lint.engine import (
    Finding,
    LintEngine,
    LintReport,
    ModuleContext,
    Rule,
    default_rules,
    derive_role,
    discover_files,
    parse_suppressions,
)
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineMatch",
    "DynamicVerification",
    "Finding",
    "LintEngine",
    "LintReport",
    "ModuleContext",
    "Rule",
    "builtin_verifications",
    "default_rules",
    "derive_role",
    "discover_files",
    "parse_suppressions",
    "git_sha",
    "load_baseline",
    "match_baseline",
    "reachable_sample",
    "render_json",
    "render_text",
    "verify_invariant",
    "write_baseline",
]
