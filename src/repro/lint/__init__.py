"""anonlint: model-soundness static analysis for the reproduction.

The paper's results hold in a specific model — fully anonymous
processors, wiring-permuted register access, symmetry-reduced checking
sound only for permutation-invariant properties.  This package
enforces those model obligations mechanically, at lint time:

- **ANON** (:mod:`repro.lint.anon`) — machine code must not act on
  processor identity;
- **WIRE** (:mod:`repro.lint.wire`) — shared-memory access only
  through the wiring permutation;
- **INVAR** (:mod:`repro.lint.invar`) — symmetry-checked properties
  must be declared invariant and avoid non-equivariant constructs;
- **WF** (:mod:`repro.lint.wf`) — unbounded machine loops must name a
  progress guard and a derivable variant bound;
- **POR** (:mod:`repro.lint.por`) — declared visibility and machine
  footprints must cover what the code statically reads and writes.

The taint rules (ANON002, INVAR002v2) and the footprint inference
(POR002) run on a per-function dataflow fixpoint
(:mod:`repro.lint.cfg`, :mod:`repro.lint.dataflow`) instead of name
heuristics.  A *dynamic* verifier (:mod:`repro.lint.dynamic`) tests
declared invariance on wiring-stabilizer orbits and cross-checks
declared footprints against runtime-observed behavior.

Entry point: ``python -m repro lint`` (see :mod:`repro.cli`);
suppression and baseline workflow in ``docs/linting.md``.
"""

from repro.lint.baseline import (
    Baseline,
    BaselineEntry,
    BaselineMatch,
    git_sha,
    load_baseline,
    match_baseline,
    write_baseline,
)
from repro.lint.dynamic import (
    DynamicVerification,
    builtin_footprint_verifications,
    builtin_verifications,
    reachable_sample,
    verify_invariant,
    verify_machine_footprint,
    verify_visibility_footprint,
)
from repro.lint.engine import (
    Finding,
    LintEngine,
    LintReport,
    ModuleContext,
    Rule,
    default_rules,
    derive_role,
    discover_files,
    parse_suppressions,
    rule_catalog,
    select_rules,
)
from repro.lint.reporters import render_json, render_text

__all__ = [
    "Baseline",
    "BaselineEntry",
    "BaselineMatch",
    "DynamicVerification",
    "Finding",
    "LintEngine",
    "LintReport",
    "ModuleContext",
    "Rule",
    "builtin_footprint_verifications",
    "builtin_verifications",
    "default_rules",
    "derive_role",
    "discover_files",
    "parse_suppressions",
    "git_sha",
    "load_baseline",
    "match_baseline",
    "reachable_sample",
    "render_json",
    "render_text",
    "rule_catalog",
    "select_rules",
    "verify_invariant",
    "verify_machine_footprint",
    "verify_visibility_footprint",
    "write_baseline",
]
