"""ANON: machine code must not act on processor identity.

The paper's model is *fully anonymous*: processors run identical code,
have no identifiers, and cannot break symmetry by construction — the
Raynal–Taubenfeld line of work makes the same restriction explicit in
its algorithm templates.  In this codebase machine code (``core/``,
``baselines/``) receives a ``pid`` only as harness plumbing (the
simulator's bookkeeping, a single-writer baseline's register name);
the moment an algorithm *branches* on it, *compares* it, or *indexes*
shared state with it outside the wiring permutation, the model — and
the soundness of the symmetry-reduced checker built on it — is gone.

ANON001 fires when a pid-named value is used in machine code as:

- a branch condition (``if pid == 0: ...``),
- an ordering/equality comparison (membership tests are exempt:
  ``pid in outputs`` is trace bookkeeping, not symmetry breaking),
- the register operand of a ``Read``/``Write`` op,
- a subscript index on anything that is not wiring indirection
  (``wiring[pid]``, ``sigma[pid]``, ... are the sanctioned uses).

Diagnostic f-strings are exempt — naming a pid in an error message
does not affect behavior.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import Finding, ModuleContext, Rule

#: Identifiers treated as processor identities.
PID_NAMES = frozenset(
    {"pid", "my_pid", "process_id", "processor_id", "proc_id"}
)

#: Substrings marking a name as wiring indirection — the one place a
#: pid may legitimately flow (selecting the processor's private
#: permutation).
WIRING_HINTS = ("wiring", "sigma", "perm", "phys", "to_local")

_MEMORY_OPS = frozenset({"Read", "Write"})


def _is_pid_node(node: ast.AST) -> bool:
    if isinstance(node, ast.Name):
        return node.id in PID_NAMES and isinstance(node.ctx, ast.Load)
    if isinstance(node, ast.Attribute):
        return node.attr in PID_NAMES and isinstance(node.ctx, ast.Load)
    return False


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _mentions_wiring(node: ast.AST) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    return any(hint in lowered for hint in WIRING_HINTS)


class AnonymityRule(Rule):
    rule_id = "ANON001"
    summary = (
        "machine code must not branch on, compare, or index by"
        " processor identity outside the wiring indirection"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_machine:
            return
        for node in ast.walk(ctx.tree):
            if not _is_pid_node(node):
                continue
            finding = self._classify(ctx, node)
            if finding is not None:
                yield finding

    def _classify(
        self, ctx: ModuleContext, node: ast.AST
    ) -> Optional[Finding]:
        name = _terminal_name(node)
        for parent, child in ctx.ancestry(node):
            # Sanctioned / benign contexts end the walk with no finding.
            if isinstance(parent, ast.FormattedValue):
                return None  # diagnostics may name pids
            if (
                isinstance(parent, ast.Subscript)
                and child is parent.slice
                and _mentions_wiring(parent.value)
            ):
                return None  # wiring[pid]: the one sanctioned indexing
            if (
                isinstance(parent, ast.Call)
                and child is not parent.func
                and _mentions_wiring(parent.func)
            ):
                return None  # to_physical(pid, ...)-style indirection

            # Violating contexts.
            if isinstance(parent, (ast.If, ast.While)) and child is parent.test:
                return ctx.finding(
                    self.rule_id,
                    node,
                    f"machine code branches on processor identity"
                    f" {name!r} — anonymous processors cannot act on who"
                    f" they are",
                )
            if isinstance(parent, ast.Compare) and child is node:
                # Only a *direct* operand is an identity comparison;
                # `d.get(pid) == x` compares the looked-up data.
                ops = parent.ops
                if all(isinstance(op, (ast.In, ast.NotIn)) for op in ops):
                    return None  # membership bookkeeping, not identity use
                return ctx.finding(
                    self.rule_id,
                    node,
                    f"machine code compares processor identity {name!r} —"
                    f" identities are not observable in the model",
                )
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _MEMORY_OPS
                and parent.args
                and child is parent.args[0]
            ):
                return ctx.finding(
                    self.rule_id,
                    node,
                    f"processor identity {name!r} used as a"
                    f" {parent.func.id} register index — register names"
                    f" must come from the private wiring permutation",
                )
            if isinstance(parent, ast.Subscript) and child is parent.slice:
                return ctx.finding(
                    self.rule_id,
                    node,
                    f"machine code indexes {_terminal_name(parent.value)!r}"
                    f" by processor identity {name!r} outside the wiring"
                    f" indirection",
                )
        return None
