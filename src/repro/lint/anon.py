"""ANON: machine code must not act on processor identity.

The paper's model is *fully anonymous*: processors run identical code,
have no identifiers, and cannot break symmetry by construction — the
Raynal–Taubenfeld line of work makes the same restriction explicit in
its algorithm templates.  In this codebase machine code (``core/``,
``baselines/``) receives a ``pid`` only as harness plumbing (the
simulator's bookkeeping, a single-writer baseline's register name);
the moment an algorithm *branches* on it, *compares* it, or *indexes*
shared state with it outside the wiring permutation, the model — and
the soundness of the symmetry-reduced checker built on it — is gone.

ANON002 (which subsumes the name-matching ANON001) tracks pid-derived
*values* with the :mod:`repro.lint.dataflow` engine: identity taint is
seeded on pid-named parameters and bindings, follows assignments,
arithmetic, container construction and value-position mutation
(``acc.append(pid)``), and fires when a tainted value reaches:

- a branch condition (``who = pid; if who: ...``),
- an ordering/equality comparison (membership tests are exempt:
  ``pid in outputs`` is trace bookkeeping, not symmetry breaking),
- the register operand of a ``Read``/``Write`` op,
- a subscript index on anything that is not wiring indirection
  (``wiring[pid]``, ``sigma[pid]``, ... are the sanctioned uses).

Taint is *not* propagated through method calls or subscript loads:
``d.get(pid)`` and ``table[pid]`` yield data merely *keyed* by an
identity, which the model allows code to act on (the lookup itself is
judged at the subscript sink).  Results of wiring-named calls are
clean — ``to_physical(pid, ...)`` is the sanctioned indirection.
Diagnostic f-strings are exempt — naming a pid in an error message
does not affect behavior.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.dataflow import (
    EMPTY,
    Env,
    TaintAnalysis,
    TaintDomain,
    Tags,
    functions,
    own_nodes,
)
from repro.lint.engine import Finding, ModuleContext, Rule

#: Identifiers treated as processor identities.
PID_NAMES = frozenset(
    {"pid", "my_pid", "process_id", "processor_id", "proc_id"}
)

#: Substrings marking a name as wiring indirection — the one place a
#: pid may legitimately flow (selecting the processor's private
#: permutation).
WIRING_HINTS = ("wiring", "sigma", "perm", "phys", "to_local")

_MEMORY_OPS = frozenset({"Read", "Write"})

#: The identity-taint tag.
TAG_PID = "pid"
_PID: Tags = frozenset({TAG_PID})


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _mentions_wiring(node: ast.AST) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    return any(hint in lowered for hint in WIRING_HINTS)


class IdentityTaintDomain(TaintDomain):
    """Where identity taint is born and how it survives expressions."""

    def param_tags(self, func, arg, index):
        return _PID if arg.arg in PID_NAMES else EMPTY

    def name_binding_tags(self, name):
        return _PID if name in PID_NAMES else EMPTY

    def attribute_tags(self, node, base_tags):
        if node.attr in PID_NAMES:
            return base_tags | _PID
        return base_tags

    def subscript_load_tags(self, node, base_tags, index_tags):
        # ``table[pid]`` is data keyed by an identity, not an identity;
        # the lookup is judged at the subscript sink instead.
        return base_tags

    def call_tags(self, node, func_name, arg_tags, func_base_tags):
        if _mentions_wiring(node.func):
            return EMPTY  # sanctioned indirection launders the pid
        if isinstance(node.func, ast.Attribute):
            # ``d.get(pid)`` looks data up *by* an identity; the result
            # is not itself one.
            return EMPTY
        return arg_tags


def _describe(node: ast.AST) -> str:
    name = _terminal_name(node)
    return repr(name) if name is not None else "a pid-derived value"


class IdentityFlowRule(Rule):
    rule_id = "ANON002"
    summary = (
        "machine code must not branch on, compare, or index by"
        " pid-derived values outside the wiring indirection"
        " (taint-tracked)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_machine:
            return
        domain = IdentityTaintDomain()
        for func in functions(ctx.tree):
            analysis = TaintAnalysis(func, domain)
            for stmt, env in analysis.statements():
                yield from self._check_statement(ctx, analysis, stmt, env)

    # ------------------------------------------------------------------
    def _check_statement(
        self,
        ctx: ModuleContext,
        analysis: TaintAnalysis,
        stmt: ast.stmt,
        env: Env,
    ) -> Iterator[Finding]:
        compare_hit_in_test = False
        test = stmt.test if isinstance(stmt, (ast.If, ast.While)) else None
        test_nodes: Set[int] = (
            {id(n) for n in ast.walk(test)} if test is not None else set()
        )

        for node in own_nodes(stmt):
            if ctx.in_fstring(node):
                continue

            if isinstance(node, ast.Compare) and not all(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                for operand in (node.left, *node.comparators):
                    if TAG_PID not in analysis.tags(env, operand):
                        continue
                    if id(node) in test_nodes:
                        compare_hit_in_test = True
                    yield ctx.finding(
                        self.rule_id,
                        operand,
                        f"machine code compares processor identity"
                        f" {_describe(operand)} — identities are not"
                        f" observable in the model",
                    )

            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _MEMORY_OPS
                and node.args
            ):
                reg = node.args[0]
                if TAG_PID in analysis.tags(env, reg):
                    yield ctx.finding(
                        self.rule_id,
                        reg,
                        f"processor identity {_describe(reg)} used as a"
                        f" {node.func.id} register index — register names"
                        f" must come from the private wiring permutation",
                    )

            elif isinstance(node, ast.Subscript):
                if _mentions_wiring(node.value):
                    continue
                if TAG_PID in analysis.tags(env, node.slice):
                    yield ctx.finding(
                        self.rule_id,
                        node.slice,
                        f"machine code indexes"
                        f" {_terminal_name(node.value)!r} by processor"
                        f" identity {_describe(node.slice)} outside the"
                        f" wiring indirection",
                    )

        if (
            test is not None
            and not compare_hit_in_test
            and TAG_PID in analysis.tags(env, test)
        ):
            anchor = self._taint_anchor(analysis, env, test)
            yield ctx.finding(
                self.rule_id,
                anchor,
                f"machine code branches on processor identity"
                f" {_describe(anchor)} — anonymous processors cannot act"
                f" on who they are",
            )

    def _taint_anchor(
        self, analysis: TaintAnalysis, env: Env, test: ast.expr
    ) -> ast.AST:
        """The most specific tainted name inside a tainted test."""
        for node in ast.walk(test):
            if isinstance(node, (ast.Name, ast.Attribute)) and (
                TAG_PID in analysis.tags(env, node)
            ):
                return node
        return test
