"""WIRE: all shared-memory access goes through the wiring permutation.

In the fully-anonymous model a processor does not know physical
register names: it addresses memory through its private permutation
``sigma_p`` (:mod:`repro.memory.wiring`).  Machine code therefore never
touches a register array directly — it yields ``Read``/``Write`` ops on
*local* indices and lets the harness translate
(:class:`repro.memory.memory.AnonymousMemory`,
:meth:`repro.checker.system.SystemSpec.apply`).  A ``memory[...]``
subscript or a direct ``memory.read(...)`` call inside machine code
bypasses that translation and silently re-introduces named memory.

- WIRE001 — subscripting a register-array-named object in machine code.
- WIRE002 — calling ``.read``/``.write`` on a register-array-named
  object in machine code (the harness-side API).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.engine import Finding, ModuleContext, Rule

#: Identifiers treated as a shared register array.
MEMORY_NAMES = frozenset(
    {
        "memory",
        "mem",
        "shared_memory",
        "shared",
        "registers",
        "regs",
        "register_array",
    }
)

_MEMORY_API = frozenset({"read", "write"})


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class WiringDisciplineRule(Rule):
    rule_id = "WIRE001"
    summary = (
        "machine code must not access shared registers directly —"
        " all addressing goes through the wiring permutation"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_machine:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Subscript):
                name = _terminal_name(node.value)
                if name in MEMORY_NAMES:
                    yield ctx.finding(
                        "WIRE001",
                        node,
                        f"direct register access {name!r}[...] bypasses the"
                        f" wiring permutation — machine code must yield"
                        f" Read/Write ops on local indices",
                    )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if (
                    node.func.attr in _MEMORY_API
                    and _terminal_name(node.func.value) in MEMORY_NAMES
                ):
                    owner = _terminal_name(node.func.value)
                    yield ctx.finding(
                        "WIRE002",
                        node,
                        f"direct call {owner!r}.{node.func.attr}(...) from"
                        f" machine code — the memory API is harness-side;"
                        f" machine code must yield ops through the wiring",
                    )
