"""Per-function control-flow graphs for the anonlint dataflow engine.

:mod:`repro.lint.dataflow` runs a forward fixpoint over basic blocks;
this module builds those blocks from a function's AST.  The graph is
deliberately *statement-grained*: a block holds a list of ``ast.stmt``
nodes, and a compound statement (``if``/``while``/``for``/``try``/
``with``) appears in a block as its **header only** — its condition or
iterable is evaluated there, while the nested bodies live in successor
blocks of their own.  Transfer functions therefore never descend into
a compound statement's body (see :func:`own_nodes`).

The graph is conservative where Python control flow is dynamic:

- ``try`` bodies may raise anywhere, so every handler is reachable
  both from the block *entering* the try and from the end of its body;
- loop exit edges exist even for ``while True`` (the dataflow join is
  a union, so a spurious edge only adds conservatism);
- ``match`` statements branch like an ``if`` chain without modelling
  pattern bindings.

Nested function and class definitions are *not* recursed into: they
appear as plain statements (binding a name) and are analyzed as
functions of their own by the rules.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Iteration safety-net multiplier for the dataflow fixpoint.
MAX_PASSES = 64


@dataclass
class BasicBlock:
    """A straight-line statement sequence with successor edges."""

    block_id: int
    stmts: List[ast.stmt] = field(default_factory=list)
    succ: List[int] = field(default_factory=list)


class CFG:
    """Blocks, a distinguished entry, and a synthetic exit block."""

    def __init__(self) -> None:
        self.blocks: Dict[int, BasicBlock] = {}
        self._next_id = 0
        self.entry = self.new_block().block_id
        self.exit = self.new_block().block_id

    def new_block(self) -> BasicBlock:
        block = BasicBlock(self._next_id)
        self._next_id += 1
        self.blocks[block.block_id] = block
        return block

    def add_edge(self, src: int, dst: int) -> None:
        succ = self.blocks[src].succ
        if dst not in succ:
            succ.append(dst)

    def predecessors(self) -> Dict[int, List[int]]:
        preds: Dict[int, List[int]] = {bid: [] for bid in self.blocks}
        for block in self.blocks.values():
            for dst in block.succ:
                preds[dst].append(block.block_id)
        return preds

    def rpo(self) -> List[int]:
        """Reverse post-order from the entry (unreachable blocks last)."""
        seen: Dict[int, bool] = {}
        order: List[int] = []

        def visit(bid: int) -> None:
            if seen.get(bid):
                return
            seen[bid] = True
            for dst in self.blocks[bid].succ:
                visit(dst)
            order.append(bid)

        visit(self.entry)
        for bid in self.blocks:
            visit(bid)
        order.reverse()
        return order


def own_nodes(stmt: ast.stmt) -> Iterator[ast.AST]:
    """The nodes a statement evaluates *itself* — header expressions
    included, nested statement bodies excluded.

    For an ``if`` this yields the test (and its subexpressions) but
    nothing from the branches; for a plain assignment it is equivalent
    to ``ast.walk``.  This is the traversal rules must use when
    pairing nodes with the per-statement environments of
    :class:`repro.lint.dataflow.TaintAnalysis`.
    """
    stack: List[ast.AST] = [stmt]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                continue
            stack.append(child)


class _LoopFrame:
    """Targets for ``break``/``continue`` inside one loop."""

    __slots__ = ("head", "after")

    def __init__(self, head: int, after: int) -> None:
        self.head = head
        self.after = after


class _Builder:
    def __init__(self) -> None:
        self.cfg = CFG()
        self.loops: List[_LoopFrame] = []

    # ------------------------------------------------------------------
    def build(self, func: FunctionNode) -> CFG:
        end = self._sequence(func.body, self.cfg.entry)
        if end is not None:
            self.cfg.add_edge(end, self.cfg.exit)
        return self.cfg

    def _sequence(self, body: Sequence[ast.stmt], current: int) -> int | None:
        """Thread ``body`` through blocks; ``None`` = fell off the CFG
        (the path unconditionally returned/raised/broke)."""
        cursor: int | None = current
        for stmt in body:
            if cursor is None:
                # Unreachable trailing code: give it an orphan block so
                # its statements still exist in the graph (no preds).
                cursor = self.cfg.new_block().block_id
            cursor = self._statement(stmt, cursor)
        return cursor

    # ------------------------------------------------------------------
    def _statement(self, stmt: ast.stmt, current: int) -> int | None:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            cfg.blocks[current].stmts.append(stmt)
            after = cfg.new_block().block_id
            then_entry = cfg.new_block().block_id
            cfg.add_edge(current, then_entry)
            then_end = self._sequence(stmt.body, then_entry)
            if then_end is not None:
                cfg.add_edge(then_end, after)
            if stmt.orelse:
                else_entry = cfg.new_block().block_id
                cfg.add_edge(current, else_entry)
                else_end = self._sequence(stmt.orelse, else_entry)
                if else_end is not None:
                    cfg.add_edge(else_end, after)
            else:
                cfg.add_edge(current, after)
            return after

        if isinstance(stmt, ast.While):
            head = cfg.new_block().block_id
            cfg.add_edge(current, head)
            cfg.blocks[head].stmts.append(stmt)
            after = cfg.new_block().block_id
            body_entry = cfg.new_block().block_id
            cfg.add_edge(head, body_entry)
            cfg.add_edge(head, after)
            self.loops.append(_LoopFrame(head, after))
            body_end = self._sequence(stmt.body, body_entry)
            self.loops.pop()
            if body_end is not None:
                cfg.add_edge(body_end, head)
            if stmt.orelse:
                else_end = self._sequence(stmt.orelse, after)
                return else_end
            return after

        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            head = cfg.new_block().block_id
            cfg.add_edge(current, head)
            cfg.blocks[head].stmts.append(stmt)
            after = cfg.new_block().block_id
            body_entry = cfg.new_block().block_id
            cfg.add_edge(head, body_entry)
            cfg.add_edge(head, after)
            self.loops.append(_LoopFrame(head, after))
            body_end = self._sequence(stmt.body, body_entry)
            self.loops.pop()
            if body_end is not None:
                cfg.add_edge(body_end, head)
            if stmt.orelse:
                return self._sequence(stmt.orelse, after)
            return after

        if isinstance(stmt, ast.Try):
            cfg.blocks[current].stmts.append(stmt)
            after = cfg.new_block().block_id
            body_entry = cfg.new_block().block_id
            cfg.add_edge(current, body_entry)
            body_end = self._sequence(stmt.body, body_entry)
            else_end = body_end
            if stmt.orelse and body_end is not None:
                else_end = self._sequence(stmt.orelse, body_end)
            if else_end is not None:
                cfg.add_edge(else_end, after)
            for handler in stmt.handlers:
                handler_entry = cfg.new_block().block_id
                # A raise may interrupt the body anywhere: the handler
                # sees both the pre-try env and the post-body env.
                cfg.add_edge(current, handler_entry)
                if body_end is not None:
                    cfg.add_edge(body_end, handler_entry)
                handler_end = self._sequence(handler.body, handler_entry)
                if handler_end is not None:
                    cfg.add_edge(handler_end, after)
            if stmt.finalbody:
                return self._sequence(stmt.finalbody, after)
            return after

        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            cfg.blocks[current].stmts.append(stmt)
            return self._sequence(stmt.body, current)

        if isinstance(stmt, ast.Match):
            cfg.blocks[current].stmts.append(stmt)
            after = cfg.new_block().block_id
            cfg.add_edge(current, after)  # no case may match
            for case in stmt.cases:
                case_entry = cfg.new_block().block_id
                cfg.add_edge(current, case_entry)
                case_end = self._sequence(case.body, case_entry)
                if case_end is not None:
                    cfg.add_edge(case_end, after)
            return after

        # Simple statements.
        cfg.blocks[current].stmts.append(stmt)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            cfg.add_edge(current, cfg.exit)
            return None
        if isinstance(stmt, ast.Break):
            if self.loops:
                cfg.add_edge(current, self.loops[-1].after)
            return None
        if isinstance(stmt, ast.Continue):
            if self.loops:
                cfg.add_edge(current, self.loops[-1].head)
            return None
        return current


def build_cfg(func: FunctionNode) -> CFG:
    """The control-flow graph of one function's body."""
    return _Builder().build(func)
