"""POR: declared visibility footprints must cover what verdicts read.

Partial-order reduction (:mod:`repro.checker.por`) prunes steps that
are *invisible* to every checked property — and invisibility is
decided entirely by the property's ``@visibility_footprint``
declaration.  A declaration narrower than what the property's body
actually reads makes the reduction unsound: a pruned interleaving
could have flipped the verdict.  The runtime cannot catch this (it
trusts the declaration by design), so the lint checks the body against
the declaration the same way INVAR002 checks equivariance:

- POR001 — a ``@visibility_footprint`` declaration narrower than the
  property's AST: the body reads the ``.registers`` of a state while
  the declaration lists only specific registers (reads outside a
  constant subscript into the declared set are potentially any
  register), or reads ``.locals`` without declaring ``locals=True``.

Declarations of ``locals=True`` are never flagged (they already force
full visibility, the conservative maximum), and ``registers="all"``
covers every register read.  Properties with *no* declaration are fine
too: undeclared properties default to "all steps visible" at runtime.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set, Tuple

from repro.lint.anon import _terminal_name
from repro.lint.engine import Finding, ModuleContext, Rule

_DECORATOR_NAME = "visibility_footprint"


def _footprint_decorator(node: ast.FunctionDef) -> Optional[ast.Call]:
    for decorator in node.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and _terminal_name(decorator.func) == _DECORATOR_NAME
        ):
            return decorator
    return None


def _declared_footprint(
    call: ast.Call,
) -> Optional[Tuple[bool, object, bool]]:
    """``(outputs, registers, locals)`` from the decorator's keywords.

    ``registers`` is ``"all"``, a set of constant register indices, or
    ``None`` when the expression is not statically evaluable (dynamic
    declarations are given the benefit of the doubt).
    """
    outputs = False
    registers: object = frozenset()
    locals_declared = False
    for keyword in call.keywords:
        if keyword.arg == "outputs":
            if not isinstance(keyword.value, ast.Constant):
                return None
            outputs = bool(keyword.value.value)
        elif keyword.arg == "locals":
            if not isinstance(keyword.value, ast.Constant):
                return None
            locals_declared = bool(keyword.value.value)
        elif keyword.arg == "registers":
            value = keyword.value
            if isinstance(value, ast.Constant) and value.value == "all":
                registers = "all"
            elif isinstance(value, (ast.Tuple, ast.List)):
                if not all(
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, int)
                    for element in value.elts
                ):
                    return None
                registers = frozenset(
                    element.value for element in value.elts
                )
            else:
                return None
        else:
            return None
    return outputs, registers, locals_declared


class VisibilityFootprintRule(Rule):
    rule_id = "POR001"
    summary = (
        "@visibility_footprint declarations must cover every state"
        " component the property's body reads — a narrower footprint"
        " makes partial-order reduction unsound"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            call = _footprint_decorator(node)
            if call is None:
                continue
            declared = _declared_footprint(call)
            if declared is None:  # dynamic declaration: not checkable
                continue
            _outputs, registers, locals_declared = declared
            if locals_declared:
                # locals=True already disables reduction for runs
                # checking this property: nothing can be narrower.
                continue
            yield from self._check_body(ctx, node, registers)

    # ------------------------------------------------------------------
    def _check_body(
        self,
        ctx: ModuleContext,
        function: ast.FunctionDef,
        registers: object,
    ) -> Iterator[Finding]:
        for node in ast.walk(function):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr == "locals":
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"property {function.name!r} reads .locals but its"
                    f" @visibility_footprint does not declare"
                    f" locals=True — steps changing local state could"
                    f" be pruned as invisible while the verdict depends"
                    f" on them",
                )
            elif node.attr == "registers" and registers != "all":
                if self._constant_subscript_in(ctx, node, registers):
                    continue
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"property {function.name!r} reads .registers"
                    f" beyond its declared footprint"
                    f" {sorted(registers) if registers else '()'!r} —"
                    f" declare registers=\"all\" (or the registers"
                    f" actually read) so no verdict-affecting write is"
                    f" pruned as invisible",
                )

    @staticmethod
    def _constant_subscript_in(
        ctx: ModuleContext, node: ast.Attribute, registers: object
    ) -> bool:
        """``state.registers[c]`` with constant ``c`` in the footprint."""
        if not isinstance(registers, frozenset):
            return False
        parent = ctx.parents.get(node)
        return (
            isinstance(parent, ast.Subscript)
            and parent.value is node
            and isinstance(parent.slice, ast.Constant)
            and isinstance(parent.slice.value, int)
            and parent.slice.value in registers
        )


def _declared_registers(node: ast.FunctionDef) -> Optional[Set[int]]:
    """The finite declared register set of a property, if any (tests)."""
    call = _footprint_decorator(node)
    if call is None:
        return None
    declared = _declared_footprint(call)
    if declared is None or declared[1] == "all":
        return None
    registers = declared[1]
    assert isinstance(registers, frozenset)
    return set(registers)
