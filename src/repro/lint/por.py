"""POR: declared visibility footprints must cover what verdicts read.

Partial-order reduction (:mod:`repro.checker.por`) prunes steps that
are *invisible* to every checked property — and invisibility is
decided entirely by the property's ``@visibility_footprint``
declaration.  A declaration narrower than what the property's body
actually reads makes the reduction unsound: a pruned interleaving
could have flipped the verdict.  The runtime cannot catch this (it
trusts the declaration by design), so the lint checks the body against
the declaration the same way INVAR002 checks equivariance:

- POR001 — a ``@visibility_footprint`` declaration narrower than the
  property's AST: the body reads the ``.registers`` of a state while
  the declaration lists only specific registers (reads outside a
  constant subscript into the declared set are potentially any
  register), or reads ``.locals`` without declaring ``locals=True``.
- POR002 — full static *footprint inference* via the dataflow engine
  (:mod:`repro.lint.dataflow`).  For a declared property, the tags
  ``spec``/``state``/``regs``/``locs`` follow aliases (``rs =
  state.registers; rs[0]``) and every use is folded into an inferred
  ``(outputs, registers, locals)`` triple that the declaration must
  cover; ``spec.outputs(state)`` is the one sanctioned escape of the
  whole state (it infers ``outputs=True``), any other escape infers
  the conservative maximum.  For a *machine* class, the write/scan
  footprint of ``enabled_ops`` is abstract-interpreted from its return
  expressions (``Write`` over the ``unwritten`` set, ``Read`` of a
  scan position, or delegation to an inner machine) and reconciled
  with the class-level ``por_footprint`` declaration::

      class MyMachine:
          por_footprint = {"writes": "unwritten", "reads": "all"}
          # or: por_footprint = "delegate"

  ``repro lint --infer-footprints`` prints both sides of every
  reconciliation; the ``--dynamic`` cross-check replays declarations
  against runtime-observed footprints on BFS-sampled states
  (:mod:`repro.lint.dynamic`).

Declarations of ``locals=True`` are never flagged (they already force
full visibility, the conservative maximum), and ``registers="all"``
covers every register read.  Properties with *no* declaration are fine
too: undeclared properties default to "all steps visible" at runtime.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.anon import _terminal_name
from repro.lint.dataflow import (
    EMPTY,
    TaintAnalysis,
    TaintDomain,
    Tags,
    functions,
    own_nodes,
)
from repro.lint.engine import Finding, ModuleContext, Rule

_DECORATOR_NAME = "visibility_footprint"


def _footprint_decorator(node: ast.FunctionDef) -> Optional[ast.Call]:
    for decorator in node.decorator_list:
        if (
            isinstance(decorator, ast.Call)
            and _terminal_name(decorator.func) == _DECORATOR_NAME
        ):
            return decorator
    return None


def _declared_footprint(
    call: ast.Call,
) -> Optional[Tuple[bool, object, bool]]:
    """``(outputs, registers, locals)`` from the decorator's keywords.

    ``registers`` is ``"all"``, a set of constant register indices, or
    ``None`` when the expression is not statically evaluable (dynamic
    declarations are given the benefit of the doubt).
    """
    outputs = False
    registers: object = frozenset()
    locals_declared = False
    for keyword in call.keywords:
        if keyword.arg == "outputs":
            if not isinstance(keyword.value, ast.Constant):
                return None
            outputs = bool(keyword.value.value)
        elif keyword.arg == "locals":
            if not isinstance(keyword.value, ast.Constant):
                return None
            locals_declared = bool(keyword.value.value)
        elif keyword.arg == "registers":
            value = keyword.value
            if isinstance(value, ast.Constant) and value.value == "all":
                registers = "all"
            elif isinstance(value, (ast.Tuple, ast.List)):
                if not all(
                    isinstance(element, ast.Constant)
                    and isinstance(element.value, int)
                    for element in value.elts
                ):
                    return None
                registers = frozenset(
                    element.value for element in value.elts
                )
            else:
                return None
        else:
            return None
    return outputs, registers, locals_declared


class VisibilityFootprintRule(Rule):
    rule_id = "POR001"
    summary = (
        "@visibility_footprint declarations must cover every state"
        " component the property's body reads — a narrower footprint"
        " makes partial-order reduction unsound"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            call = _footprint_decorator(node)
            if call is None:
                continue
            declared = _declared_footprint(call)
            if declared is None:  # dynamic declaration: not checkable
                continue
            _outputs, registers, locals_declared = declared
            if locals_declared:
                # locals=True already disables reduction for runs
                # checking this property: nothing can be narrower.
                continue
            yield from self._check_body(ctx, node, registers)

    # ------------------------------------------------------------------
    def _check_body(
        self,
        ctx: ModuleContext,
        function: ast.FunctionDef,
        registers: object,
    ) -> Iterator[Finding]:
        for node in ast.walk(function):
            if not isinstance(node, ast.Attribute):
                continue
            if node.attr == "locals":
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"property {function.name!r} reads .locals but its"
                    f" @visibility_footprint does not declare"
                    f" locals=True — steps changing local state could"
                    f" be pruned as invisible while the verdict depends"
                    f" on them",
                )
            elif node.attr == "registers" and registers != "all":
                if self._constant_subscript_in(ctx, node, registers):
                    continue
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"property {function.name!r} reads .registers"
                    f" beyond its declared footprint"
                    f" {sorted(registers) if registers else '()'!r} —"
                    f" declare registers=\"all\" (or the registers"
                    f" actually read) so no verdict-affecting write is"
                    f" pruned as invisible",
                )

    @staticmethod
    def _constant_subscript_in(
        ctx: ModuleContext, node: ast.Attribute, registers: object
    ) -> bool:
        """``state.registers[c]`` with constant ``c`` in the footprint."""
        if not isinstance(registers, frozenset):
            return False
        parent = ctx.parents.get(node)
        return (
            isinstance(parent, ast.Subscript)
            and parent.value is node
            and isinstance(parent.slice, ast.Constant)
            and isinstance(parent.slice.value, int)
            and parent.slice.value in registers
        )


def _declared_registers(node: ast.FunctionDef) -> Optional[Set[int]]:
    """The finite declared register set of a property, if any (tests)."""
    call = _footprint_decorator(node)
    if call is None:
        return None
    declared = _declared_footprint(call)
    if declared is None or declared[1] == "all":
        return None
    registers = declared[1]
    assert isinstance(registers, frozenset)
    return set(registers)


# ----------------------------------------------------------------------
# POR002: static footprint inference (dataflow).

TAG_SPEC = "spec"
TAG_STATE = "state"
TAG_REGS = "regs"
TAG_LOCS = "locs"

_SPEC: Tags = frozenset({TAG_SPEC})
_STATE: Tags = frozenset({TAG_STATE})
_REGS: Tags = frozenset({TAG_REGS})
_LOCS: Tags = frozenset({TAG_LOCS})


class StateAccessDomain(TaintDomain):
    """Track the spec/state arguments of a property and the state's
    two components (``registers`` tuple, ``locals`` tuple) through
    aliases.  Elements *of* the components carry no tags: reading them
    is recorded at the access site by the inference walk."""

    def param_tags(self, func, arg, index):
        if arg.arg == "spec" or index == 0:
            return _SPEC
        if arg.arg == "state" or index == 1:
            return _STATE
        return EMPTY

    def attribute_tags(self, node, base_tags):
        if TAG_STATE in base_tags:
            if node.attr == "registers":
                return _REGS
            if node.attr == "locals":
                return _LOCS
        return EMPTY

    def subscript_load_tags(self, node, base_tags, index_tags):
        return EMPTY

    def call_tags(self, node, func_name, arg_tags, func_base_tags):
        return EMPTY


@dataclass
class PropertyFootprint:
    """Declared vs inferred visibility footprint of one property."""

    name: str
    line: int
    node: ast.FunctionDef
    #: ``(outputs, registers, locals)`` or ``None`` for a dynamic
    #: (statically unevaluable) declaration.
    declared: Optional[Tuple[bool, object, bool]]
    outputs: bool
    registers: object  # "all" | frozenset[int]
    locals_read: bool

    def uncovered(self) -> List[str]:
        """Inferred reads the declaration does not cover."""
        if self.declared is None:
            return []
        outputs, registers, locals_declared = self.declared
        if locals_declared:
            # locals=True forces full visibility at runtime: the
            # conservative maximum covers everything.
            return []
        problems: List[str] = []
        if self.locals_read:
            problems.append(".locals (declare locals=True)")
        if self.outputs and not outputs:
            problems.append("outputs (declare outputs=True)")
        if registers != "all":
            assert isinstance(registers, frozenset)
            if self.registers == "all":
                problems.append('.registers (declare registers="all")')
            else:
                assert isinstance(self.registers, frozenset)
                extra = self.registers - registers
                if extra:
                    problems.append(
                        f"registers {sorted(extra)} beyond declared"
                        f" {sorted(registers)}"
                    )
        return problems

    def format_inferred(self) -> str:
        registers = (
            '"all"'
            if self.registers == "all"
            else str(tuple(sorted(self.registers)))  # type: ignore[arg-type]
        )
        return (
            f"outputs={self.outputs} registers={registers}"
            f" locals={self.locals_read}"
        )

    def format_declared(self) -> str:
        if self.declared is None:
            return "<dynamic>"
        outputs, registers, locals_declared = self.declared
        formatted = (
            '"all"'
            if registers == "all"
            else str(tuple(sorted(registers)))  # type: ignore[arg-type]
        )
        return (
            f"outputs={outputs} registers={formatted}"
            f" locals={locals_declared}"
        )


def infer_property_footprints(ctx: ModuleContext) -> List[PropertyFootprint]:
    """Inferred read footprints of every ``@visibility_footprint``-
    decorated property in the module."""
    results: List[PropertyFootprint] = []
    domain = StateAccessDomain()
    for func in functions(ctx.tree):
        if not isinstance(func, ast.FunctionDef):
            continue
        call = _footprint_decorator(func)
        if call is None:
            continue
        outputs, registers, locals_read = _infer_property(ctx, func, domain)
        results.append(
            PropertyFootprint(
                name=func.name,
                line=func.lineno,
                node=func,
                declared=_declared_footprint(call),
                outputs=outputs,
                registers=registers,
                locals_read=locals_read,
            )
        )
    return results


def _infer_property(
    ctx: ModuleContext, func: ast.FunctionDef, domain: StateAccessDomain
) -> Tuple[bool, object, bool]:
    analysis = TaintAnalysis(func, domain)
    outputs = False
    locals_read = False
    registers: Set[int] = set()
    registers_all = False
    for stmt, env in analysis.statements():
        for node in own_nodes(stmt):
            if not isinstance(node, (ast.Name, ast.Attribute)):
                continue
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                continue
            tags = analysis.tags(env, node)
            parent = ctx.parents.get(node)
            if _is_alias_binding(parent, node):
                continue  # the alias's own uses are walked instead
            if TAG_REGS in tags:
                if (
                    isinstance(parent, ast.Subscript)
                    and parent.value is node
                ):
                    if isinstance(parent.slice, ast.Constant) and isinstance(
                        parent.slice.value, int
                    ):
                        registers.add(parent.slice.value)
                    else:
                        registers_all = True
                else:
                    # Iterated, passed to a call, measured, compared:
                    # potentially every register.
                    registers_all = True
            elif TAG_LOCS in tags:
                locals_read = True
            elif TAG_STATE in tags:
                if isinstance(parent, ast.Attribute) and parent.value is node:
                    continue  # component access, judged via its tags
                if _is_outputs_call_arg(analysis, env, parent, node):
                    outputs = True
                    continue
                # The whole state escaped somewhere we cannot follow:
                # assume everything is read.
                outputs = True
                locals_read = True
                registers_all = True
    inferred_registers: object = (
        "all" if registers_all else frozenset(registers)
    )
    return outputs, inferred_registers, locals_read


def _is_alias_binding(parent: Optional[ast.AST], node: ast.AST) -> bool:
    if isinstance(parent, ast.Assign) and parent.value is node:
        return True
    if isinstance(parent, ast.AnnAssign) and parent.value is node:
        return True
    return False


def _is_outputs_call_arg(
    analysis: TaintAnalysis,
    env: "dict[str, Tags]",
    parent: Optional[ast.AST],
    node: ast.AST,
) -> bool:
    """``spec.outputs(state)``: the one sanctioned whole-state escape."""
    return (
        isinstance(parent, ast.Call)
        and node in parent.args
        and isinstance(parent.func, ast.Attribute)
        and parent.func.attr == "outputs"
        and TAG_SPEC in analysis.tags(env, parent.func.value)
    )


# -- machine-side inference --------------------------------------------

#: Coarse write-footprint lattice: none < unwritten < all.
_W_ORDER = {"none": 0, "unwritten": 1, "all": 2}


@dataclass
class MachineFootprint:
    """Declared vs inferred write/scan footprint of one machine class."""

    class_name: str
    line: int
    #: ``{"writes": ..., "reads": ...}`` | ``"delegate"`` | ``None``
    #: (no declaration) | ``"dynamic"`` (unparseable declaration).
    declared: object
    #: ``{"writes": ..., "reads": ...}`` | ``"delegate"`` | ``None``
    #: (``enabled_ops`` never returns ops).
    inferred: object

    def mismatch(self) -> Optional[str]:
        """Why the declaration fails to cover the inference, if it does."""
        if self.declared == "dynamic" or self.inferred is None:
            return None
        if self.declared is None:
            if isinstance(self.inferred, dict):
                return (
                    f"machine class {self.class_name!r} exposes its own"
                    f" ops but declares no por_footprint — declare"
                    f" por_footprint = {self.inferred!r} so the POR"
                    f" footprint tables can be certified"
                )
            return None  # pure delegation is self-describing
        if self.declared == "delegate":
            if self.inferred == "delegate":
                return None
            return (
                f"machine class {self.class_name!r} declares"
                f" por_footprint = \"delegate\" but enabled_ops emits its"
                f" own ops (inferred {self.inferred!r})"
            )
        if isinstance(self.declared, dict):
            if self.inferred == "delegate":
                return (
                    f"machine class {self.class_name!r} declares"
                    f" por_footprint = {self.declared!r} but enabled_ops"
                    f" only delegates — declare \"delegate\" instead"
                )
            assert isinstance(self.inferred, dict)
            declared_w = str(self.declared.get("writes", "all"))
            declared_r = str(self.declared.get("reads", "all"))
            inferred_w = str(self.inferred.get("writes", "none"))
            inferred_r = str(self.inferred.get("reads", "none"))
            if _W_ORDER.get(declared_w, 2) < _W_ORDER.get(inferred_w, 2) or (
                _W_ORDER.get(declared_r, 2) < _W_ORDER.get(inferred_r, 2)
            ):
                return (
                    f"machine class {self.class_name!r} declares"
                    f" por_footprint = {self.declared!r} but its"
                    f" enabled_ops has the wider inferred footprint"
                    f" {self.inferred!r} — a too-narrow declaration makes"
                    f" the reduction unsound"
                )
            return None
        return None


def infer_machine_footprints(ctx: ModuleContext) -> List[MachineFootprint]:
    """Declared-vs-inferred footprints of every class with an
    ``enabled_ops`` method in the module."""
    results: List[MachineFootprint] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        enabled = next(
            (
                item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
                and item.name == "enabled_ops"
            ),
            None,
        )
        if enabled is None:
            continue
        results.append(
            MachineFootprint(
                class_name=node.name,
                line=node.lineno,
                declared=_parse_declared_machine(node),
                inferred=_infer_enabled_ops(enabled),
            )
        )
    return results


def _parse_declared_machine(classdef: ast.ClassDef) -> object:
    for item in classdef.body:
        if not isinstance(item, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "por_footprint"
            for t in item.targets
        ):
            continue
        value = item.value
        if isinstance(value, ast.Constant) and value.value == "delegate":
            return "delegate"
        if isinstance(value, ast.Dict):
            parsed = {}
            for key, val in zip(value.keys, value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and isinstance(val, ast.Constant)
                    and isinstance(val.value, str)
                ):
                    return "dynamic"
                parsed[key.value] = val.value
            return parsed
        return "dynamic"
    return None


def _infer_enabled_ops(enabled: ast.FunctionDef) -> object:
    writes = "none"
    reads = "none"
    delegates = False
    own_ops = False
    for ret in ast.walk(enabled):
        if not isinstance(ret, ast.Return) or ret.value is None:
            continue
        expr = ret.value
        unwritten_targets = _unwritten_comprehension_targets(expr)
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "enabled_ops"
            ):
                delegates = True
            elif isinstance(node.func, ast.Name) and node.func.id == "Write":
                own_ops = True
                reg = node.args[0] if node.args else None
                if (
                    isinstance(reg, ast.Name)
                    and reg.id in unwritten_targets
                ) or (reg is not None and _mentions_unwritten(reg)):
                    if _W_ORDER[writes] < _W_ORDER["unwritten"]:
                        writes = "unwritten"
                else:
                    writes = "all"
            elif isinstance(node.func, ast.Name) and node.func.id == "Read":
                own_ops = True
                reads = "all"
    if not own_ops:
        return "delegate" if delegates else None
    if delegates:
        # Mixed own ops + delegation: nothing narrower is certifiable.
        return {"writes": "all", "reads": "all"}
    return {"writes": writes, "reads": reads}


def _unwritten_comprehension_targets(expr: ast.expr) -> Set[str]:
    targets: Set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for gen in node.generators:
                if isinstance(gen.target, ast.Name) and _mentions_unwritten(
                    gen.iter
                ):
                    targets.add(gen.target.id)
    return targets


def _mentions_unwritten(node: ast.AST) -> bool:
    return any(
        isinstance(inner, ast.Attribute) and inner.attr == "unwritten"
        for inner in ast.walk(node)
    )


class FootprintInferenceRule(Rule):
    rule_id = "POR002"
    summary = (
        "declared @visibility_footprint / por_footprint must cover the"
        " statically inferred read/write sets (dataflow + abstract"
        " interpretation of enabled_ops)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for prop in infer_property_footprints(ctx):
            problems = prop.uncovered()
            if problems:
                yield ctx.finding(
                    self.rule_id,
                    prop.node,
                    f"property {prop.name!r} declares"
                    f" [{prop.format_declared()}] but its body reads"
                    f" {'; '.join(problems)} — inferred footprint is"
                    f" [{prop.format_inferred()}]",
                )
        if not ctx.is_machine:
            return
        for machine in infer_machine_footprints(ctx):
            message = machine.mismatch()
            if message is not None:
                yield ctx.finding(
                    self.rule_id,
                    _class_node(ctx, machine),
                    message,
                )


def _class_node(ctx: ModuleContext, machine: MachineFootprint) -> ast.AST:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef) and node.name == machine.class_name:
            return node
    return ctx.tree
