"""Text and JSON rendering of a lint run."""

from __future__ import annotations

import json
from typing import List, Optional, Sequence

from repro.lint.baseline import BaselineEntry, BaselineMatch
from repro.lint.engine import Finding, LintReport

REPORT_SCHEMA = "anonlint-report/1"


def render_text(
    report: LintReport,
    match: BaselineMatch,
    dynamic: Optional[Sequence] = None,
    baseline_sha: Optional[str] = None,
    current_sha: Optional[str] = None,
) -> str:
    """Human-readable report: new findings first, then bookkeeping."""
    lines: List[str] = []
    for finding in match.new:
        lines.append(finding.format())
    for finding in match.baselined:
        lines.append(f"{finding.format()} [baselined]")
    for entry in match.stale:
        lines.append(
            f"stale baseline entry: {entry.rule} [{entry.symbol}]"
            f" in {entry.path} no longer matches any finding"
        )
    if (
        match.stale
        and baseline_sha
        and current_sha
        and baseline_sha != current_sha
    ):
        lines.append(
            f"note: baseline was written at {baseline_sha}, tree is at"
            f" {current_sha} — the stale entries above may just need a"
            f" --write-baseline refresh"
        )
    for entry in match.unjustified:
        lines.append(
            f"unjustified baseline entry: {entry.rule} [{entry.symbol}]"
            f" in {entry.path} has no justification — document why it"
            f" is accepted"
        )
    if dynamic:
        for verification in dynamic:
            status = "ok" if verification.ok else "MISMATCH"
            if getattr(verification, "kind", "orbit") == "footprint":
                scope = (
                    f"({verification.states_checked} states,"
                    f" {verification.elements} steps)"
                )
            else:
                scope = (
                    f"({verification.states_checked} states x"
                    f" {verification.elements} orbit elements)"
                )
            lines.append(
                f"dynamic {verification.property_name}: {status} {scope}"
            )
            lines.extend(f"  {item}" for item in verification.mismatches[:3])
    suppressed = len(report.suppressed)
    dynamic_bad = sum(1 for v in dynamic or [] if not v.ok)
    lines.append(
        f"anonlint: {report.files_checked} files,"
        f" {len(match.new)} new finding(s),"
        f" {len(match.baselined)} baselined,"
        f" {suppressed} suppressed,"
        f" {len(match.stale)} stale baseline entr(ies)"
        + (f", {dynamic_bad} dynamic failure(s)" if dynamic else "")
    )
    return "\n".join(lines)


def render_json(
    report: LintReport,
    match: BaselineMatch,
    dynamic: Optional[Sequence] = None,
    baseline_sha: Optional[str] = None,
    current_sha: Optional[str] = None,
) -> str:
    def finding_dict(finding: Finding, status: str) -> dict:
        return {
            "rule": finding.rule,
            "path": finding.path,
            "line": finding.line,
            "col": finding.col,
            "symbol": finding.symbol,
            "message": finding.message,
            "status": status,
        }

    def entry_dict(entry: BaselineEntry) -> dict:
        return {
            "rule": entry.rule,
            "path": entry.path,
            "symbol": entry.symbol,
            "message": entry.message,
        }

    payload = {
        "schema": REPORT_SCHEMA,
        "files_checked": report.files_checked,
        "findings": (
            [finding_dict(f, "new") for f in match.new]
            + [finding_dict(f, "baselined") for f in match.baselined]
            + [finding_dict(f, "suppressed") for f in report.suppressed]
        ),
        "stale_baseline_entries": [entry_dict(e) for e in match.stale],
        "unjustified_baseline_entries": [
            entry_dict(e) for e in match.unjustified
        ],
        "baseline_git_sha": baseline_sha,
        "git_sha": current_sha,
    }
    if dynamic is not None:
        payload["dynamic"] = [
            {
                "property": verification.property_name,
                "system": verification.system,
                "kind": getattr(verification, "kind", "orbit"),
                "states_checked": verification.states_checked,
                "orbit_elements": verification.elements,
                "ok": verification.ok,
                "mismatches": list(verification.mismatches),
            }
            for verification in dynamic
        ]
    return json.dumps(payload, indent=2)
