"""Metamorphic orbit-invariance verification (``repro lint --dynamic``).

The static INVAR rules inspect syntax; a ``@permutation_invariant``
declaration can still *lie* in ways no AST scan sees.  This module
checks the declaration's semantic content directly, as a metamorphic
test: for a property ``P``, a system ``spec``, and every non-identity
element ``g`` of the wiring-stabilizer group
(:class:`repro.checker.symmetry.StateCanonicalizer`), verdicts must
agree on orbit mates::

    P(spec, s) is None  <=>  P(spec, g . s)    for every sampled s

Samples come from a bounded BFS of the real reachable graph, so every
exercised state is one the symmetry-reduced explorer could actually
meet.  A single mismatch is a counterexample to the soundness of
checking ``P`` under ``--symmetry``.

The built-in battery covers all seven shipped properties on their
natural systems; each system is chosen so the stabilizer group is
non-trivial (equal consensus proposals, for instance — with distinct
proposals the input-preserving subgroup is trivial and the test would
be vacuous).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.checker.symmetry import StateCanonicalizer
from repro.checker.system import GlobalState, SystemSpec

Invariant = Callable[[SystemSpec, GlobalState], Optional[str]]

#: Default bounded-BFS sample size per system.
DEFAULT_MAX_STATES = 250


@dataclass
class DynamicVerification:
    """Outcome of one property x system orbit-invariance check."""

    property_name: str
    system: str
    states_checked: int
    elements: int
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches


def reachable_sample(spec: SystemSpec, max_states: int) -> List[GlobalState]:
    """The first ``max_states`` reachable states in BFS order."""
    initial = spec.initial_state()
    seen = {initial}
    frontier = [initial]
    states = [initial]
    while frontier and len(states) < max_states:
        next_frontier: List[GlobalState] = []
        for state in frontier:
            for _action, successor in spec.successors(state):
                if successor in seen:
                    continue
                seen.add(successor)
                states.append(successor)
                next_frontier.append(successor)
                if len(states) >= max_states:
                    return states
        frontier = next_frontier
    return states


def verify_invariant(
    invariant: Invariant,
    spec: SystemSpec,
    system: str = "",
    max_states: int = DEFAULT_MAX_STATES,
) -> DynamicVerification:
    """Metamorphic check of one property on one system."""
    canonicalizer = StateCanonicalizer(spec)
    states = reachable_sample(spec, max_states)
    return _verify(invariant, spec, system, states, canonicalizer)


def _verify(
    invariant: Invariant,
    spec: SystemSpec,
    system: str,
    states: Sequence[GlobalState],
    canonicalizer: StateCanonicalizer,
) -> DynamicVerification:
    name = getattr(invariant, "__name__", repr(invariant))
    elements = [
        element for element in canonicalizer.elements if not element.is_identity
    ]
    verification = DynamicVerification(
        property_name=name,
        system=system,
        states_checked=len(states),
        elements=len(elements),
    )
    if not getattr(invariant, "permutation_invariant", False):
        verification.mismatches.append(
            f"{name} is not declared @permutation_invariant — nothing to"
            f" verify, and the symmetry explorer would refuse it"
        )
        return verification
    if not elements:
        verification.mismatches.append(
            f"stabilizer group of {system or 'the system'} is trivial —"
            f" the orbit check is vacuous; pick a symmetric configuration"
        )
        return verification
    for state in states:
        holds = invariant(spec, state) is None
        for element in elements:
            image = canonicalizer.apply(element, state)
            if (invariant(spec, image) is None) != holds:
                verification.mismatches.append(
                    f"verdict differs across orbit: {name} is"
                    f" {'satisfied' if holds else 'violated'} on a state"
                    f" but not on its image under pi={element.pi},"
                    f" rho={element.rho}, tau={element.tau}"
                )
                if len(verification.mismatches) >= 5:
                    return verification
    return verification


def builtin_verifications(
    max_states: int = DEFAULT_MAX_STATES,
) -> List[DynamicVerification]:
    """Verify all seven shipped properties on their natural systems.

    Systems are built lazily here (not at import) so ``repro lint``
    without ``--dynamic`` never pays for them.
    """
    from repro.checker.properties import (
        SNAPSHOT_SAFETY,
        consensus_agreement_and_validity,
        renaming_names_valid,
    )
    from repro.core.consensus import ConsensusMachine
    from repro.core.renaming import RenamingMachine
    from repro.core.snapshot import SnapshotMachine
    from repro.memory.wiring import WiringAssignment

    batteries: List[Tuple[str, SystemSpec, Sequence[Invariant]]] = [
        (
            "SnapshotMachine(2), inputs (1, 2), identity wiring",
            SystemSpec(
                SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
            ),
            SNAPSHOT_SAFETY,
        ),
        (
            "ConsensusMachine(2), equal proposals ('a', 'a'), identity wiring",
            SystemSpec(
                ConsensusMachine(2), ["a", "a"], WiringAssignment.identity(2, 2)
            ),
            [consensus_agreement_and_validity],
        ),
        (
            "RenamingMachine(2), groups (1, 2), identity wiring",
            SystemSpec(
                RenamingMachine(2), [1, 2], WiringAssignment.identity(2, 2)
            ),
            [renaming_names_valid],
        ),
    ]
    results: List[DynamicVerification] = []
    for system, spec, invariants in batteries:
        canonicalizer = StateCanonicalizer(spec)
        states = reachable_sample(spec, max_states)
        for invariant in invariants:
            results.append(
                _verify(invariant, spec, system, states, canonicalizer)
            )
    return results
