"""Dynamic verification of lint declarations (``repro lint --dynamic``).

The static rules inspect syntax; a declaration can still *lie* in ways
no AST scan sees.  This module checks two kinds of declaration
semantically, on a bounded BFS sample of the real reachable graph:

**Orbit invariance** (``kind="orbit"``) — for a
``@permutation_invariant`` property ``P``, a system ``spec``, and
every non-identity element ``g`` of the wiring-stabilizer group
(:class:`repro.checker.symmetry.StateCanonicalizer`), verdicts must
agree on orbit mates::

    P(spec, s) is None  <=>  P(spec, g . s)    for every sampled s

A single mismatch is a counterexample to the soundness of checking
``P`` under ``--symmetry``.

**Footprints** (``kind="footprint"``) — the runtime half of POR002's
cross-check.  A property's ``@visibility_footprint`` promises which
steps can flip its verdict: on every sampled state, every successor
step the declaration classifies *invisible* must leave the verdict
unchanged.  A machine's ``por_footprint`` promises the shape of its
enabled operations: on every sampled state, every enabled op must stay
inside the declared write/read discipline (resolved through
``"delegate"`` chains by
:func:`repro.checker.por.declared_machine_footprint`).

The built-in battery covers all seven shipped properties on their
natural systems; each system is chosen so the stabilizer group is
non-trivial (equal consensus proposals, for instance — with distinct
proposals the input-preserving subgroup is trivial and the test would
be vacuous).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.checker.symmetry import StateCanonicalizer
from repro.checker.system import GlobalState, SystemSpec

Invariant = Callable[[SystemSpec, GlobalState], Optional[str]]

#: Default bounded-BFS sample size per system.
DEFAULT_MAX_STATES = 250


@dataclass
class DynamicVerification:
    """Outcome of one declaration x system dynamic check.

    ``kind`` distinguishes the two checks: for ``"orbit"`` results
    ``elements`` counts group elements, for ``"footprint"`` results it
    counts the individual steps (or enabled ops) examined.
    """

    property_name: str
    system: str
    states_checked: int
    elements: int
    mismatches: List[str] = field(default_factory=list)
    kind: str = "orbit"

    @property
    def ok(self) -> bool:
        return not self.mismatches


def reachable_sample(spec: SystemSpec, max_states: int) -> List[GlobalState]:
    """The first ``max_states`` reachable states in BFS order."""
    initial = spec.initial_state()
    seen = {initial}
    frontier = [initial]
    states = [initial]
    while frontier and len(states) < max_states:
        next_frontier: List[GlobalState] = []
        for state in frontier:
            for _action, successor in spec.successors(state):
                if successor in seen:
                    continue
                seen.add(successor)
                states.append(successor)
                next_frontier.append(successor)
                if len(states) >= max_states:
                    return states
        frontier = next_frontier
    return states


def verify_invariant(
    invariant: Invariant,
    spec: SystemSpec,
    system: str = "",
    max_states: int = DEFAULT_MAX_STATES,
) -> DynamicVerification:
    """Metamorphic check of one property on one system."""
    canonicalizer = StateCanonicalizer(spec)
    states = reachable_sample(spec, max_states)
    return _verify(invariant, spec, system, states, canonicalizer)


def _verify(
    invariant: Invariant,
    spec: SystemSpec,
    system: str,
    states: Sequence[GlobalState],
    canonicalizer: StateCanonicalizer,
) -> DynamicVerification:
    name = getattr(invariant, "__name__", repr(invariant))
    elements = [
        element for element in canonicalizer.elements if not element.is_identity
    ]
    verification = DynamicVerification(
        property_name=name,
        system=system,
        states_checked=len(states),
        elements=len(elements),
    )
    if not getattr(invariant, "permutation_invariant", False):
        verification.mismatches.append(
            f"{name} is not declared @permutation_invariant — nothing to"
            f" verify, and the symmetry explorer would refuse it"
        )
        return verification
    if not elements:
        verification.mismatches.append(
            f"stabilizer group of {system or 'the system'} is trivial —"
            f" the orbit check is vacuous; pick a symmetric configuration"
        )
        return verification
    for state in states:
        holds = invariant(spec, state) is None
        for element in elements:
            image = canonicalizer.apply(element, state)
            if (invariant(spec, image) is None) != holds:
                verification.mismatches.append(
                    f"verdict differs across orbit: {name} is"
                    f" {'satisfied' if holds else 'violated'} on a state"
                    f" but not on its image under pi={element.pi},"
                    f" rho={element.rho}, tau={element.tau}"
                )
                if len(verification.mismatches) >= 5:
                    return verification
    return verification


def verify_visibility_footprint(
    invariant: Invariant,
    spec: SystemSpec,
    system: str = "",
    max_states: int = DEFAULT_MAX_STATES,
) -> DynamicVerification:
    """Check a ``@visibility_footprint`` declaration against reality.

    For every sampled state and every successor step, classify the
    step as visible or invisible under the declaration (the same
    aggregation POR's C2 uses); an invisible step that changes the
    property's verdict is a counterexample — POR could prune it and
    miss a violation.  Properties with no declaration (or
    ``locals=True``) make every step visible, so there is nothing to
    refute and the check passes vacuously.
    """
    from repro.checker.por import aggregate_visibility
    from repro.sim.ops import Write

    name = getattr(invariant, "__name__", repr(invariant))
    verification = DynamicVerification(
        property_name=name,
        system=system,
        states_checked=0,
        elements=0,
        kind="footprint",
    )
    visibility = aggregate_visibility([invariant], spec.n_registers)
    if visibility.all_steps:
        return verification
    machine = spec.machine
    states = reachable_sample(spec, max_states)
    verification.states_checked = len(states)
    steps = 0
    for state in states:
        holds = invariant(spec, state) is None
        for pid in range(spec.n_processors):
            before = machine.output(state.locals[pid])
            for op in machine.enabled_ops(state.locals[pid]):
                steps += 1
                _action, successor = spec.apply(state, pid, op)
                visible = False
                if isinstance(op, Write):
                    physical = spec._physical[pid][op.reg]
                    if (1 << physical) & visibility.register_mask:
                        visible = True
                if not visible and visibility.outputs:
                    if machine.output(successor.locals[pid]) != before:
                        visible = True
                if visible:
                    continue
                if (invariant(spec, successor) is None) != holds:
                    verification.mismatches.append(
                        f"step pid={pid} op={op!r} is invisible under the"
                        f" declared footprint but flips {name} from"
                        f" {'satisfied' if holds else 'violated'} — the"
                        f" declaration is narrower than the verdict's"
                        f" real dependencies"
                    )
                    if len(verification.mismatches) >= 5:
                        verification.elements = steps
                        return verification
    verification.elements = steps
    return verification


def verify_machine_footprint(
    spec: SystemSpec,
    system: str = "",
    max_states: int = DEFAULT_MAX_STATES,
) -> DynamicVerification:
    """Check a machine's ``por_footprint`` declaration against reality.

    Resolves the declaration (following ``"delegate"`` chains) and
    then, on every sampled state and pid, demands every enabled op
    respect it: ``writes="none"``/``reads="none"`` forbid the op kind
    outright, ``writes="unwritten"`` requires every write's local
    register to be in the declaring machine's ``unwritten`` field
    (reached through the same number of ``.inner`` hops as the
    delegation took).  Machines with no resolvable declaration pass
    vacuously — static inference is then the only certificate.
    """
    from repro.checker.por import declared_machine_footprint
    from repro.sim.ops import Write

    machine = spec.machine
    name = f"{type(machine).__name__}.por_footprint"
    verification = DynamicVerification(
        property_name=name,
        system=system,
        states_checked=0,
        elements=0,
        kind="footprint",
    )
    resolved = declared_machine_footprint(machine)
    if resolved is None:
        return verification
    footprint, depth = resolved
    writes = footprint.get("writes", "all")
    reads = footprint.get("reads", "all")
    states = reachable_sample(spec, max_states)
    verification.states_checked = len(states)
    ops_seen = 0
    for state in states:
        for pid in range(spec.n_processors):
            local = state.locals[pid]
            inner = local
            for _ in range(depth):
                inner = inner.inner
            for op in machine.enabled_ops(local):
                ops_seen += 1
                problem: Optional[str] = None
                if isinstance(op, Write):
                    if writes == "none":
                        problem = "a write, but writes='none' is declared"
                    elif writes == "unwritten" and op.reg not in inner.unwritten:
                        problem = (
                            f"a write to local register {op.reg} outside"
                            f" the declared 'unwritten' footprint"
                            f" {sorted(inner.unwritten)}"
                        )
                elif reads == "none":
                    problem = "a read, but reads='none' is declared"
                if problem is not None:
                    verification.mismatches.append(
                        f"pid={pid} offers {problem} on a reachable state"
                    )
                    if len(verification.mismatches) >= 5:
                        verification.elements = ops_seen
                        return verification
    verification.elements = ops_seen
    return verification


def _builtin_batteries() -> List[Tuple[str, SystemSpec, Sequence[Invariant]]]:
    """The shipped property batteries on their natural systems.

    Built lazily (not at import) so ``repro lint`` without
    ``--dynamic`` never pays for them.
    """
    from repro.checker.properties import (
        SNAPSHOT_SAFETY,
        consensus_agreement_and_validity,
        renaming_names_valid,
    )
    from repro.core.consensus import ConsensusMachine
    from repro.core.renaming import RenamingMachine
    from repro.core.snapshot import SnapshotMachine
    from repro.memory.wiring import WiringAssignment

    return [
        (
            "SnapshotMachine(2), inputs (1, 2), identity wiring",
            SystemSpec(
                SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
            ),
            SNAPSHOT_SAFETY,
        ),
        (
            "ConsensusMachine(2), equal proposals ('a', 'a'), identity wiring",
            SystemSpec(
                ConsensusMachine(2), ["a", "a"], WiringAssignment.identity(2, 2)
            ),
            [consensus_agreement_and_validity],
        ),
        (
            "RenamingMachine(2), groups (1, 2), identity wiring",
            SystemSpec(
                RenamingMachine(2), [1, 2], WiringAssignment.identity(2, 2)
            ),
            [renaming_names_valid],
        ),
    ]


def builtin_verifications(
    max_states: int = DEFAULT_MAX_STATES,
) -> List[DynamicVerification]:
    """Orbit-verify all seven shipped properties on their natural systems."""
    results: List[DynamicVerification] = []
    for system, spec, invariants in _builtin_batteries():
        canonicalizer = StateCanonicalizer(spec)
        states = reachable_sample(spec, max_states)
        for invariant in invariants:
            results.append(
                _verify(invariant, spec, system, states, canonicalizer)
            )
    return results


def builtin_footprint_verifications(
    max_states: int = DEFAULT_MAX_STATES,
) -> List[DynamicVerification]:
    """Footprint-verify the shipped declarations on the same systems.

    One entry per (property, system) pair for ``@visibility_footprint``
    declarations plus one per system for the machine's
    ``por_footprint`` — kept separate from
    :func:`builtin_verifications` so the orbit battery's shape stays
    stable; the CLI merges both lists under ``--dynamic``.
    """
    results: List[DynamicVerification] = []
    for system, spec, invariants in _builtin_batteries():
        for invariant in invariants:
            results.append(
                verify_visibility_footprint(
                    invariant, spec, system, max_states=max_states
                )
            )
        results.append(
            verify_machine_footprint(spec, system, max_states=max_states)
        )
    return results
