"""Forward taint dataflow for anonlint's v2 rules.

The v1 rules matched *names* (``pid``, ``sorted(..., key=repr)``); the
v2 rules track *values*.  This module is the shared engine: a forward
fixpoint over the per-function CFG of :mod:`repro.lint.cfg`, computing
for every program point an environment mapping local variable names to
a finite set of **tags** (``frozenset[str]``).  Rules plug in a
:class:`TaintDomain` that decides where tags are born (sources) and
how they survive calls, attribute access, and subscripts; the rules
themselves then walk statements with :func:`repro.lint.cfg.own_nodes`
and test sink positions against :meth:`TaintAnalysis.tags`.

Lattice: environments ordered pointwise by tag-set inclusion.  Joins
are unions, transfer functions are monotone (assignment is a strong
update computed from the in-environment), and the tag universe is
finite, so the fixpoint terminates; ``MAX_PASSES`` is a safety net
only.

Baked-in propagation policy (shared by every domain because it encodes
repo-wide exemptions the v1 rules already granted):

- a :class:`ast.Compare` whose operators are all membership tests
  (``in``/``not in``) produces **no** tags — presence queries launder
  identity (``pid in outputs`` is anonymity-preserving);
- f-strings (``JoinedStr``/``FormattedValue``) produce no tags —
  diagnostics may mention anything;
- subscripting a tainted *index* does not taint the looked-up value
  (data keyed by an identity is not itself an identity) — the
  subscript node is a *sink*, judged by the rules, not a propagator.

Everything else defaults to conservative union propagation.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .cfg import MAX_PASSES, CFG, FunctionNode, build_cfg, own_nodes

Tags = FrozenSet[str]
Env = Dict[str, Tags]

EMPTY: Tags = frozenset()

__all__ = [
    "EMPTY",
    "Env",
    "Tags",
    "TaintAnalysis",
    "TaintDomain",
    "functions",
    "own_nodes",
]


def functions(tree: ast.AST) -> Iterator[FunctionNode]:
    """Every function (nested included) in a module, in source order."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _union(parts: Sequence[Tags]) -> Tags:
    out = EMPTY
    for part in parts:
        out |= part
    return out


class TaintDomain:
    """Source/propagation policy; subclass per rule.

    The default implementations propagate conservatively and introduce
    no tags, so an unmodified domain computes the everywhere-empty
    fixpoint.
    """

    # -- sources -------------------------------------------------------
    def param_tags(self, func: FunctionNode, arg: ast.arg, index: int) -> Tags:
        """Tags seeded on a parameter at function entry."""
        return EMPTY

    def name_binding_tags(self, name: str) -> Tags:
        """Tags a *name* carries wherever it is bound (loop targets,
        comprehension variables, globals never assigned locally)."""
        return EMPTY

    def enumerate_index_tags(self) -> Tags:
        """Tags for the index half of an ``enumerate()`` unpacking."""
        return EMPTY

    # -- propagation ---------------------------------------------------
    def attribute_tags(self, node: ast.Attribute, base_tags: Tags) -> Tags:
        return base_tags

    def subscript_load_tags(
        self, node: ast.Subscript, base_tags: Tags, index_tags: Tags
    ) -> Tags:
        # Container tags flow to elements; index tags do not (see the
        # module docstring).
        return base_tags

    def call_tags(
        self,
        node: ast.Call,
        func_name: Optional[str],
        arg_tags: Tags,
        func_base_tags: Tags,
    ) -> Tags:
        return arg_tags | func_base_tags

    def mutation_arg_tags(
        self, node: ast.Call, method: str, arg_tags: List[Tags]
    ) -> Tags:
        """Tags a mutating method call absorbs into its receiver.

        Value-position mutators absorb their stored values; key
        positions (``setdefault``'s first argument, ``insert``'s
        index) are excluded — a container keyed by identities does not
        *contain* identities.
        """
        if method in ("append", "add", "extend", "update", "appendleft"):
            return _union(arg_tags)
        if method in ("insert", "setdefault"):
            return _union(arg_tags[1:])
        return EMPTY


class TaintAnalysis:
    """Fixpoint taint environments for one function under one domain."""

    def __init__(self, func: FunctionNode, domain: TaintDomain) -> None:
        self.func = func
        self.domain = domain
        self.cfg: CFG = build_cfg(func)
        self._block_in: Dict[int, Env] = {}
        self._stmt_env: Dict[ast.stmt, Env] = {}
        self._run()

    # -- public query API ----------------------------------------------
    def statements(self) -> Iterator[Tuple[ast.stmt, Env]]:
        """Every block-level statement with its *pre*-statement
        environment (compound statements appear once, as headers)."""
        for bid in self.cfg.rpo():
            for stmt in self.cfg.blocks[bid].stmts:
                yield stmt, self._stmt_env[stmt]

    def tags(self, env: Env, node: ast.AST) -> Tags:
        """The tag set an expression evaluates to under ``env``."""
        return self._eval(env, node)

    # -- fixpoint ------------------------------------------------------
    def _seed(self) -> Env:
        env: Env = {}
        args = self.func.args
        all_args: List[ast.arg] = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        if args.vararg is not None:
            all_args.append(args.vararg)
        if args.kwarg is not None:
            all_args.append(args.kwarg)
        for index, arg in enumerate(all_args):
            tags = self.domain.param_tags(self.func, arg, index)
            tags |= self.domain.name_binding_tags(arg.arg)
            env[arg.arg] = tags
        return env

    def _run(self) -> None:
        cfg = self.cfg
        preds = cfg.predecessors()
        order = cfg.rpo()
        seed = self._seed()
        self._block_in = {bid: {} for bid in cfg.blocks}
        self._block_in[cfg.entry] = dict(seed)
        block_out: Dict[int, Env] = {bid: {} for bid in cfg.blocks}
        for _ in range(MAX_PASSES):
            changed = False
            for bid in order:
                in_env: Env = dict(seed) if bid == cfg.entry else {}
                for pred in preds[bid]:
                    in_env = _join(in_env, block_out[pred])
                if in_env != self._block_in[bid]:
                    self._block_in[bid] = in_env
                    changed = True
                env = dict(in_env)
                for stmt in cfg.blocks[bid].stmts:
                    env = self._transfer(env, stmt)
                if env != block_out[bid]:
                    block_out[bid] = env
                    changed = True
            if not changed:
                break
        # Record the stable pre-statement environments.
        for bid in order:
            env = dict(self._block_in[bid])
            for stmt in cfg.blocks[bid].stmts:
                self._stmt_env[stmt] = dict(env)
                env = self._transfer(env, stmt)

    # -- transfer ------------------------------------------------------
    def _transfer(self, env: Env, stmt: ast.stmt) -> Env:
        env = dict(env)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                self._bind_target(env, target, stmt.value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._bind_target(env, stmt.target, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value_tags = self._eval(env, stmt.value)
            target = stmt.target
            if isinstance(target, ast.Name):
                existing = env.get(
                    target.id, self.domain.name_binding_tags(target.id)
                )
                env[target.id] = existing | value_tags
            else:
                self._absorb_into_base(env, target, value_tags)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._bind_iteration(env, stmt.target, stmt.iter)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if item.optional_vars is not None:
                    self._bind_target(
                        env, item.optional_vars, item.context_expr
                    )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            env[stmt.name] = self.domain.name_binding_tags(stmt.name)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    env.pop(target.id, None)
        # Receiver mutation (``acc.append(pid)``) and walrus bindings
        # can hide in any statement's expressions.
        for node in own_nodes(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
            ):
                arg_tags = [self._eval(env, a) for a in node.args]
                absorbed = self.domain.mutation_arg_tags(
                    node, node.func.attr, arg_tags
                )
                if absorbed:
                    base = node.func.value.id
                    env[base] = env.get(base, EMPTY) | absorbed
            elif isinstance(node, ast.NamedExpr) and isinstance(
                node.target, ast.Name
            ):
                tags = self._eval(env, node.value)
                tags |= self.domain.name_binding_tags(node.target.id)
                env[node.target.id] = env.get(node.target.id, EMPTY) | tags
        return env

    def _absorb_into_base(
        self, env: Env, target: ast.expr, value_tags: Tags
    ) -> None:
        """``d[k] = v`` / ``o.a = v``: the container/object absorbs the
        stored value's tags (not the key's)."""
        node = target
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            node = node.value
        if isinstance(node, ast.Name) and value_tags:
            env[node.id] = env.get(node.id, EMPTY) | value_tags

    def _bind_target(
        self, env: Env, target: ast.expr, value: ast.expr
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            parts = self._unpacked_tags(env, target.elts, value)
            for elt, tags in zip(target.elts, parts):
                self._bind_name(env, elt, tags)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            self._absorb_into_base(env, target, self._eval(env, value))
            return
        self._bind_name(env, target, self._eval(env, value))

    def _bind_name(self, env: Env, target: ast.expr, tags: Tags) -> None:
        if isinstance(target, ast.Starred):
            target = target.value
        if isinstance(target, ast.Name):
            env[target.id] = tags | self.domain.name_binding_tags(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind_name(env, elt, tags)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            self._absorb_into_base(env, target, tags)

    def _unpacked_tags(
        self, env: Env, targets: Sequence[ast.expr], value: ast.expr
    ) -> List[Tags]:
        """Per-element tags when unpacking ``value`` into ``targets``."""
        n = len(targets)
        if (
            isinstance(value, (ast.Tuple, ast.List))
            and len(value.elts) == n
            and not any(isinstance(e, ast.Starred) for e in value.elts)
        ):
            return [self._eval(env, elt) for elt in value.elts]
        if _is_enumerate(value) and n >= 1:
            call = value
            assert isinstance(call, ast.Call)
            inner = (
                self._eval(env, call.args[0]) if call.args else EMPTY
            )
            return [self.domain.enumerate_index_tags()] + [inner] * (n - 1)
        tags = self._eval(env, value)
        return [tags] * n

    def _bind_iteration(
        self, env: Env, target: ast.expr, iterable: ast.expr
    ) -> None:
        """``for target in iterable``: bind loop variables to the
        element tags of the iterable."""
        if isinstance(target, (ast.Tuple, ast.List)):
            parts = self._unpacked_tags(env, target.elts, iterable)
            for elt, tags in zip(target.elts, parts):
                self._bind_name(env, elt, tags)
            return
        if _is_enumerate(iterable):
            # A single name bound to the (index, item) pairs.
            assert isinstance(iterable, ast.Call)
            tags = self.domain.enumerate_index_tags()
            if iterable.args:
                tags |= self._eval(env, iterable.args[0])
            self._bind_name(env, target, tags)
            return
        self._bind_name(env, target, self._eval(env, iterable))

    # -- expression evaluation -----------------------------------------
    def _eval(self, env: Env, node: ast.AST) -> Tags:
        domain = self.domain
        if isinstance(node, ast.Name):
            if node.id in env:
                return env[node.id]
            return domain.name_binding_tags(node.id)
        if isinstance(node, ast.Attribute):
            return domain.attribute_tags(node, self._eval(env, node.value))
        if isinstance(node, ast.Subscript):
            return domain.subscript_load_tags(
                node,
                self._eval(env, node.value),
                self._eval(env, node.slice),
            )
        if isinstance(node, ast.Call):
            return self._eval_call(env, node)
        if isinstance(node, ast.BoolOp):
            return _union([self._eval(env, v) for v in node.values])
        if isinstance(node, ast.BinOp):
            return self._eval(env, node.left) | self._eval(env, node.right)
        if isinstance(node, ast.UnaryOp):
            return self._eval(env, node.operand)
        if isinstance(node, ast.Compare):
            if all(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
                return EMPTY
            parts = [self._eval(env, node.left)]
            parts.extend(self._eval(env, c) for c in node.comparators)
            return _union(parts)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return _union([self._eval(env, e) for e in node.elts])
        if isinstance(node, ast.Dict):
            parts = [self._eval(env, k) for k in node.keys if k is not None]
            parts.extend(self._eval(env, v) for v in node.values)
            return _union(parts)
        if isinstance(node, ast.IfExp):
            return self._eval(env, node.body) | self._eval(env, node.orelse)
        if isinstance(node, ast.Starred):
            return self._eval(env, node.value)
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            return EMPTY
        if isinstance(node, ast.NamedExpr):
            return self._eval(env, node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            inner = self._comprehension_env(env, node.generators)
            return self._eval(inner, node.elt)
        if isinstance(node, ast.DictComp):
            inner = self._comprehension_env(env, node.generators)
            return self._eval(inner, node.key) | self._eval(inner, node.value)
        if isinstance(node, ast.Slice):
            parts = [
                self._eval(env, part)
                for part in (node.lower, node.upper, node.step)
                if part is not None
            ]
            return _union(parts)
        if isinstance(node, ast.Await):
            return self._eval(env, node.value)
        return EMPTY

    def _comprehension_env(
        self, env: Env, generators: Sequence[ast.comprehension]
    ) -> Env:
        inner = dict(env)
        for gen in generators:
            self._bind_iteration(inner, gen.target, gen.iter)
        return inner

    def _eval_call(self, env: Env, node: ast.Call) -> Tags:
        func_name: Optional[str] = None
        func_base_tags = EMPTY
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            func_name = node.func.attr
            func_base_tags = self._eval(env, node.func.value)
        parts = [self._eval(env, a) for a in node.args]
        parts.extend(
            self._eval(env, kw.value) for kw in node.keywords
        )
        return self.domain.call_tags(
            node, func_name, _union(parts), func_base_tags
        )


def _is_enumerate(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "enumerate"
    )


def _join(left: Env, right: Env) -> Env:
    out = dict(left)
    for name, tags in right.items():
        out[name] = out.get(name, EMPTY) | tags
    return out
