"""Committed baselines: known findings that gate only on regression.

Mirrors the benchmark harness's provenance discipline
(``benchmarks/_bench_utils.py`` stamps ``BENCH_checker.json`` with the
git SHA it was produced at): the baseline file records *which commit
accepted which findings*, with a justification per entry, and the CLI
exits zero exactly when every active finding matches a baseline entry.

Entries are keyed on ``(rule, path, symbol, message)`` — never on line
numbers, so unrelated edits that shift code do not invalidate the
baseline.  Matching is multiset-aware: two identical findings need two
entries.  Entries that no longer match anything are reported as
*stale* (a prompt to clean up, not a failure).
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lint.engine import Finding

BASELINE_SCHEMA = "anonlint-baseline/1"

_Key = Tuple[str, str, str, str]


def git_sha(cwd: Optional[Path] = None) -> Optional[str]:
    """Current short commit SHA, or ``None`` outside a work tree.

    Same provenance stamp the benchmark harness writes into
    ``BENCH_checker.json``.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=str(cwd) if cwd else None,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


@dataclass
class BaselineEntry:
    rule: str
    path: str
    symbol: str
    message: str
    justification: str = ""

    @property
    def key(self) -> _Key:
        return (self.rule, self.path, self.symbol, self.message)


@dataclass
class Baseline:
    entries: List[BaselineEntry] = field(default_factory=list)
    git_sha: Optional[str] = None
    schema: str = BASELINE_SCHEMA


@dataclass
class BaselineMatch:
    """Active findings partitioned against a baseline.

    ``unjustified`` lists the *matched* entries whose justification is
    empty — accepted findings nobody has documented the *why* for.
    They never fail a run; reporters surface them as a prompt.
    """

    new: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale: List[BaselineEntry] = field(default_factory=list)
    unjustified: List[BaselineEntry] = field(default_factory=list)


def load_baseline(path: Path) -> Baseline:
    if not path.exists():
        return Baseline()
    data = json.loads(path.read_text(encoding="utf-8"))
    entries = [
        BaselineEntry(
            rule=item["rule"],
            path=item["path"],
            symbol=item["symbol"],
            message=item["message"],
            justification=item.get("justification", ""),
        )
        for item in data.get("findings", [])
    ]
    return Baseline(
        entries=entries,
        git_sha=data.get("git_sha"),
        schema=data.get("schema", BASELINE_SCHEMA),
    )


def write_baseline(
    path: Path,
    findings: Sequence[Finding],
    previous: Optional[Baseline] = None,
    sha: Optional[str] = None,
) -> Baseline:
    """Write the active findings as the new baseline.

    Justifications from a previous baseline carry over to entries with
    the same key, so regenerating does not erase the documented *why*.
    """
    carried: Dict[_Key, str] = {}
    if previous is not None:
        for entry in previous.entries:
            if entry.justification:
                carried.setdefault(entry.key, entry.justification)
    entries = [
        BaselineEntry(
            rule=finding.rule,
            path=finding.path,
            symbol=finding.symbol,
            message=finding.message,
            justification=carried.get(finding.key, ""),
        )
        for finding in findings
    ]
    baseline = Baseline(entries=entries, git_sha=sha or git_sha(path.parent))
    payload = {
        "schema": baseline.schema,
        "git_sha": baseline.git_sha,
        "findings": [
            {
                "rule": entry.rule,
                "path": entry.path,
                "symbol": entry.symbol,
                "message": entry.message,
                "justification": entry.justification,
            }
            for entry in baseline.entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return baseline


def match_baseline(
    findings: Sequence[Finding], baseline: Baseline
) -> BaselineMatch:
    """Partition active findings into new vs baselined (multiset match)."""
    budget: Dict[_Key, List[BaselineEntry]] = {}
    for entry in baseline.entries:
        budget.setdefault(entry.key, []).append(entry)
    match = BaselineMatch()
    for finding in findings:
        remaining = budget.get(finding.key)
        if remaining:
            entry = remaining.pop()
            match.baselined.append(finding)
            if not entry.justification.strip():
                match.unjustified.append(entry)
        else:
            match.new.append(finding)
    for remaining in budget.values():
        match.stale.extend(remaining)
    return match
