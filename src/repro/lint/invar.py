"""INVAR: properties used under symmetry must really be invariant.

The symmetry-reduced explorer checks invariants on orbit
representatives only; that is sound exactly when the verdict is
unchanged by processor permutation, register relabelling, and
bijective input renaming (:mod:`repro.checker.symmetry`).  The runtime
gate (:func:`~repro.checker.symmetry.assert_permutation_invariant`)
only checks the *declaration*; these rules check that the declaration
exists and that declared bodies avoid the constructs that break
equivariance in practice:

- INVAR001 — a property exported in an ``*_SAFETY`` / ``*_PROPERTIES``
  / ``*_INVARIANTS`` tuple is not declared ``@permutation_invariant``;
  the symmetry explorer would refuse it at runtime, but the lint
  catches it before anything runs.
- INVAR002 — a non-equivariant construct inside a declared-invariant
  body or inside machine code: a *verdict-affecting* ``repr``/``str``
  tie-break (the sorted result is selected from, not merely printed),
  an ordering comparison on processor identities, or an ``enumerate``
  index used asymmetrically (ordering or sorting on the position).

Diagnostic-only ``sorted(..., key=repr)`` calls — feeding f-strings,
never indexed — are deliberately exempt: the invariant contract only
requires the *verdict* to be invariant, messages may name concrete
values.  Presentation helpers (``__repr__``, ``summary``, ...) are
exempt entirely.

The canonical true positive in this repository is the consensus
tie-break (:func:`repro.core.consensus.decide_or_adopt`): ``leaders =
sorted(..., key=repr); leaders[0]`` makes the machine deliberately
non-equivariant under input renaming, which is why it ships baselined
rather than suppressed — the finding is *correct* and documented.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Set

from repro.lint.anon import PID_NAMES, _terminal_name
from repro.lint.engine import Finding, ModuleContext, Rule

_INVARIANT_TUPLE_RE = re.compile(
    r"^[A-Z][A-Z0-9_]*(_SAFETY|_PROPERTIES|_INVARIANTS)$"
)
_DECORATOR_NAME = "permutation_invariant"
_SORT_BUILTINS = frozenset({"sorted", "min", "max"})
_REPR_KEYS = frozenset({"repr", "str"})
#: Presentation helpers whose output never feeds a verdict.
_PRESENTATION_NAMES = frozenset({"__repr__", "__str__", "summary", "describe"})
_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)


def _decorated_invariant(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if _terminal_name(target) == _DECORATOR_NAME:
            return True
    return False


class InvariantDeclarationRule(Rule):
    rule_id = "INVAR001"
    summary = (
        "properties exported for symmetry-reduced checking must be"
        " declared @permutation_invariant"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        functions = {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                target.id
                for target in node.targets
                if isinstance(target, ast.Name)
            ]
            if not any(_INVARIANT_TUPLE_RE.match(name) for name in targets):
                continue
            if not isinstance(node.value, (ast.Tuple, ast.List)):
                continue
            tuple_name = targets[0]
            for element in node.value.elts:
                if not isinstance(element, ast.Name):
                    continue
                function = functions.get(element.id)
                if function is None or _decorated_invariant(function):
                    continue
                yield ctx.finding(
                    self.rule_id,
                    function,
                    f"property {element.id!r} is exported in {tuple_name}"
                    f" but not declared @permutation_invariant — the"
                    f" symmetry-reduced explorer will refuse it",
                )


class InvariantEquivarianceRule(Rule):
    rule_id = "INVAR002"
    summary = (
        "declared-invariant bodies and machine code must avoid"
        " non-equivariant constructs (repr tie-breaks, pid ordering,"
        " positional asymmetry)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.FunctionDef):
                continue
            if node.name in _PRESENTATION_NAMES or node.name.startswith("_fmt"):
                continue
            if not (_decorated_invariant(node) or ctx.is_machine):
                continue
            yield from self._check_body(ctx, node)

    # ------------------------------------------------------------------
    def _check_body(
        self, ctx: ModuleContext, function: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(function):
            finding = self._repr_tie_break(ctx, function, node)
            if finding is None:
                finding = self._pid_ordering(ctx, node)
            if finding is None:
                finding = self._enumerate_asymmetry(ctx, node)
            if finding is not None:
                yield finding

    def _repr_tie_break(
        self, ctx: ModuleContext, function: ast.FunctionDef, node: ast.AST
    ) -> Optional[Finding]:
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _SORT_BUILTINS
        ):
            return None
        if not any(
            keyword.arg == "key"
            and isinstance(keyword.value, ast.Name)
            and keyword.value.id in _REPR_KEYS
            for keyword in node.keywords
        ):
            return None
        if not self._verdict_affecting(ctx, function, node):
            return None
        return ctx.finding(
            self.rule_id,
            node,
            f"{node.func.id}(..., key=repr) tie-break affects the verdict"
            f" (its result is selected from) — repr order is not"
            f" preserved by input renaming, so the construct is not"
            f" permutation-invariant",
        )

    def _verdict_affecting(
        self, ctx: ModuleContext, function: ast.FunctionDef, call: ast.Call
    ) -> bool:
        """True when the sorted result is *selected from*, not printed.

        Two shapes count: the call is subscripted directly
        (``sorted(...)[0]``), or it is assigned to a name that is later
        subscripted inside the same function (``leaders = sorted(...);
        leaders[0]``).  Everything else — joins, f-strings, equality —
        only shapes diagnostics.
        """
        for parent, child in ctx.ancestry(call):
            if isinstance(parent, ast.Subscript) and child is parent.value:
                return True
            if isinstance(parent, ast.Assign) and child is call:
                names = {
                    target.id
                    for target in parent.targets
                    if isinstance(target, ast.Name)
                }
                return bool(names) and _names_subscripted(function, names)
            if not isinstance(parent, (ast.Subscript, ast.Assign)):
                break
        return False

    def _pid_ordering(
        self, ctx: ModuleContext, node: ast.AST
    ) -> Optional[Finding]:
        if not isinstance(node, ast.Compare):
            return None
        if not any(isinstance(op, _ORDERING_OPS) for op in node.ops):
            return None
        operands = [node.left, *node.comparators]
        for operand in operands:
            name = _terminal_name(operand)
            if name in PID_NAMES:
                return ctx.finding(
                    self.rule_id,
                    node,
                    f"ordering comparison on processor identity {name!r} —"
                    f" pid order is not preserved by processor"
                    f" permutation, so the verdict is not invariant",
                )
        return None

    def _enumerate_asymmetry(
        self, ctx: ModuleContext, node: ast.AST
    ) -> Optional[Finding]:
        if not (
            isinstance(node, ast.For)
            and isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "enumerate"
        ):
            return None
        target = node.target
        if isinstance(target, ast.Tuple) and target.elts:
            target = target.elts[0]
        if not isinstance(target, ast.Name):
            return None
        index_name = target.id
        for inner in ast.walk(node):
            if isinstance(inner, ast.Compare) and any(
                isinstance(op, _ORDERING_OPS) for op in inner.ops
            ):
                operands = [inner.left, *inner.comparators]
                if any(
                    isinstance(operand, ast.Name)
                    and operand.id == index_name
                    for operand in operands
                ):
                    return ctx.finding(
                        self.rule_id,
                        inner,
                        f"enumerate index {index_name!r} used in an"
                        f" ordering comparison — positional asymmetry"
                        f" breaks permutation invariance",
                    )
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id in _SORT_BUILTINS
                and any(
                    isinstance(argument, ast.Name)
                    and argument.id == index_name
                    for argument in inner.args
                )
            ):
                return ctx.finding(
                    self.rule_id,
                    inner,
                    f"enumerate index {index_name!r} fed to"
                    f" {inner.func.id}(...) — positional asymmetry"
                    f" breaks permutation invariance",
                )
        return None


def _names_subscripted(function: ast.FunctionDef, names: Set[str]) -> bool:
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in names
        ):
            return True
    return False


def invariant_tuple_names(tree: ast.Module) -> List[str]:
    """Module-level invariant-tuple names (shared with the docs/tests)."""
    return [
        target.id
        for node in tree.body
        if isinstance(node, ast.Assign)
        for target in node.targets
        if isinstance(target, ast.Name)
        and _INVARIANT_TUPLE_RE.match(target.id)
    ]
