"""INVAR: properties used under symmetry must really be invariant.

The symmetry-reduced explorer checks invariants on orbit
representatives only; that is sound exactly when the verdict is
unchanged by processor permutation, register relabelling, and
bijective input renaming (:mod:`repro.checker.symmetry`).  The runtime
gate (:func:`~repro.checker.symmetry.assert_permutation_invariant`)
only checks the *declaration*; these rules check that the declaration
exists and that declared bodies avoid the constructs that break
equivariance in practice:

- INVAR001 — a property exported in an ``*_SAFETY`` / ``*_PROPERTIES``
  / ``*_INVARIANTS`` tuple is not declared ``@permutation_invariant``;
  the symmetry explorer would refuse it at runtime, but the lint
  catches it before anything runs.
- INVAR002v2 — a non-equivariant construct inside a declared-invariant
  body or inside machine code, found by *dataflow* rather than name
  heuristics (:mod:`repro.lint.dataflow`): values produced by
  ``sorted/min/max(..., key=repr)`` carry a ``reprorder`` tag through
  assignments, aliases, calls and container ops, and *selecting* from
  such a value (subscripting it, ``next()``, ``.pop()``) fires wherever
  the tainted value ends up — ``ranked = sorted(..., key=repr); chosen
  = ranked; chosen[0]`` is caught even though the alias is never
  mentioned near the sort.  Ordering comparisons on pid-tainted values
  and ordering/sorting on ``enumerate``-index-tainted values fire the
  same way.

Re-sorting launders the tag (``sorted(leaders)`` imposes value order,
which *is* renaming-equivariant), as do ``min``/``max`` by value.
Diagnostic f-strings are exempt: the invariant contract only requires
the *verdict* to be invariant, messages may name concrete values.
Presentation helpers (``__repr__``, ``summary``, ...) are exempt
entirely.

The canonical true positive in this repository is the consensus
tie-break (:func:`repro.core.consensus.decide_or_adopt`): ``leaders =
sorted(..., key=repr); leaders[0]`` makes the machine deliberately
non-equivariant under input renaming, which is why it ships baselined
rather than suppressed — the finding is *correct* and documented.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional

from repro.lint.anon import PID_NAMES, _terminal_name
from repro.lint.dataflow import (
    EMPTY,
    Env,
    TaintAnalysis,
    TaintDomain,
    Tags,
    functions,
    own_nodes,
)
from repro.lint.engine import Finding, ModuleContext, Rule

_INVARIANT_TUPLE_RE = re.compile(
    r"^[A-Z][A-Z0-9_]*(_SAFETY|_PROPERTIES|_INVARIANTS)$"
)
_DECORATOR_NAME = "permutation_invariant"
_SORT_BUILTINS = frozenset({"sorted", "min", "max"})
_REPR_KEYS = frozenset({"repr", "str"})
#: Presentation helpers whose output never feeds a verdict.
_PRESENTATION_NAMES = frozenset({"__repr__", "__str__", "summary", "describe"})
_ORDERING_OPS = (ast.Lt, ast.LtE, ast.Gt, ast.GtE)

#: Taint tags tracked by the equivariance pass.
TAG_REPRORDER = "reprorder"
TAG_PID = "pid"
TAG_POSITION = "position"

_REPRORDER: Tags = frozenset({TAG_REPRORDER})
_PID: Tags = frozenset({TAG_PID})
_POSITION: Tags = frozenset({TAG_POSITION})


def _decorated_invariant(node: ast.FunctionDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if _terminal_name(target) == _DECORATOR_NAME:
            return True
    return False


class InvariantDeclarationRule(Rule):
    rule_id = "INVAR001"
    summary = (
        "properties exported for symmetry-reduced checking must be"
        " declared @permutation_invariant"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        functions = {
            node.name: node
            for node in ctx.tree.body
            if isinstance(node, ast.FunctionDef)
        }
        for node in ctx.tree.body:
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                target.id
                for target in node.targets
                if isinstance(target, ast.Name)
            ]
            if not any(_INVARIANT_TUPLE_RE.match(name) for name in targets):
                continue
            if not isinstance(node.value, (ast.Tuple, ast.List)):
                continue
            tuple_name = targets[0]
            for element in node.value.elts:
                if not isinstance(element, ast.Name):
                    continue
                function = functions.get(element.id)
                if function is None or _decorated_invariant(function):
                    continue
                yield ctx.finding(
                    self.rule_id,
                    function,
                    f"property {element.id!r} is exported in {tuple_name}"
                    f" but not declared @permutation_invariant — the"
                    f" symmetry-reduced explorer will refuse it",
                )


class EquivarianceTaintDomain(TaintDomain):
    """repr-order, identity, and position taint for INVAR002v2."""

    def param_tags(self, func, arg, index):
        return _PID if arg.arg in PID_NAMES else EMPTY

    def name_binding_tags(self, name):
        return _PID if name in PID_NAMES else EMPTY

    def enumerate_index_tags(self):
        return _POSITION

    def attribute_tags(self, node, base_tags):
        if node.attr in PID_NAMES:
            return base_tags | _PID
        return base_tags

    def subscript_load_tags(self, node, base_tags, index_tags):
        if isinstance(node.slice, ast.Slice):
            # A slice of a repr-ordered sequence is still repr-ordered.
            return base_tags
        # Selecting one element collapses the ordering; the selection
        # itself is the sink, judged by the rule.
        return base_tags - _REPRORDER

    def call_tags(self, node, func_name, arg_tags, func_base_tags):
        if func_name in _SORT_BUILTINS:
            if _has_repr_key(node):
                return arg_tags | func_base_tags | _REPRORDER
            # Re-sorting by value order launders repr order (value
            # order *is* preserved by bijective renaming).
            return (arg_tags | func_base_tags) - _REPRORDER
        return arg_tags | func_base_tags


def _has_repr_key(node: ast.Call) -> bool:
    return any(
        keyword.arg == "key"
        and isinstance(keyword.value, ast.Name)
        and keyword.value.id in _REPR_KEYS
        for keyword in node.keywords
    )


def _describe(node: ast.AST, fallback: str) -> str:
    name = _terminal_name(node)
    return repr(name) if name is not None else fallback


class EquivarianceTaintRule(Rule):
    rule_id = "INVAR002v2"
    summary = (
        "declared-invariant bodies and machine code must avoid"
        " non-equivariant constructs (repr tie-breaks, pid ordering,"
        " positional asymmetry), tracked by dataflow"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        domain = EquivarianceTaintDomain()
        for func in functions(ctx.tree):
            if not isinstance(func, ast.FunctionDef):
                continue
            if func.name in _PRESENTATION_NAMES or func.name.startswith("_fmt"):
                continue
            if not self._in_scope(ctx, func):
                continue
            analysis = TaintAnalysis(func, domain)
            for stmt, env in analysis.statements():
                yield from self._check_statement(ctx, analysis, stmt, env)

    def _in_scope(self, ctx: ModuleContext, func: ast.FunctionDef) -> bool:
        if ctx.is_machine or _decorated_invariant(func):
            return True
        # Helpers nested inside a declared invariant inherit its scope.
        for parent, _child in ctx.ancestry(func):
            if isinstance(parent, ast.FunctionDef) and _decorated_invariant(
                parent
            ):
                return True
        return False

    # ------------------------------------------------------------------
    def _check_statement(
        self,
        ctx: ModuleContext,
        analysis: TaintAnalysis,
        stmt: ast.stmt,
        env: Env,
    ) -> Iterator[Finding]:
        for node in own_nodes(stmt):
            if ctx.in_fstring(node):
                continue

            if isinstance(node, ast.Subscript) and not isinstance(
                node.slice, ast.Slice
            ):
                base_tags = analysis.tags(env, node.value)
                if TAG_REPRORDER in base_tags:
                    yield self._selection_finding(ctx, node, node.value)

            elif isinstance(node, ast.Call):
                finding = self._call_sink(ctx, analysis, env, node)
                if finding is not None:
                    yield finding

            elif isinstance(node, ast.Compare) and any(
                isinstance(op, _ORDERING_OPS) for op in node.ops
            ):
                yield from self._ordering_sink(ctx, analysis, env, node)

    def _selection_finding(
        self, ctx: ModuleContext, node: ast.AST, value: ast.AST
    ) -> Finding:
        name = _terminal_name(value)
        desc = (
            f"repr-ordered value {name!r}"
            if name is not None
            else "a repr-ordered value"
        )
        return ctx.finding(
            self.rule_id,
            node,
            f"selection from {desc} affects the"
            f" verdict — sorted(..., key=repr) order is not preserved"
            f" by input renaming, so the construct is not"
            f" permutation-invariant",
        )

    def _call_sink(
        self,
        ctx: ModuleContext,
        analysis: TaintAnalysis,
        env: Env,
        node: ast.Call,
    ) -> Optional[Finding]:
        # next(ranked_iter) / ranked.pop(): selection from repr order.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "next"
            and node.args
            and TAG_REPRORDER in analysis.tags(env, node.args[0])
        ):
            return self._selection_finding(ctx, node, node.args[0])
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and TAG_REPRORDER in analysis.tags(env, node.func.value)
        ):
            return self._selection_finding(ctx, node, node.func.value)
        # sorted/min/max over a position-derived value.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in _SORT_BUILTINS
        ):
            for argument in node.args:
                if TAG_POSITION in analysis.tags(env, argument):
                    desc = _describe(argument, "a position-derived value")
                    return ctx.finding(
                        self.rule_id,
                        node,
                        f"enumerate index {desc} fed to"
                        f" {node.func.id}(...) — positional asymmetry"
                        f" breaks permutation invariance",
                    )
        return None

    def _ordering_sink(
        self,
        ctx: ModuleContext,
        analysis: TaintAnalysis,
        env: Env,
        node: ast.Compare,
    ) -> Iterator[Finding]:
        for operand in (node.left, *node.comparators):
            tags = analysis.tags(env, operand)
            if TAG_PID in tags:
                desc = _describe(operand, "a pid-derived value")
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"ordering comparison on processor identity {desc} —"
                    f" pid order is not preserved by processor"
                    f" permutation, so the verdict is not invariant",
                )
                return
            if TAG_POSITION in tags:
                desc = _describe(operand, "a position-derived value")
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"enumerate index {desc} used in an ordering"
                    f" comparison — positional asymmetry breaks"
                    f" permutation invariance",
                )
                return


def invariant_tuple_names(tree: ast.Module) -> List[str]:
    """Module-level invariant-tuple names (shared with the docs/tests)."""
    return [
        target.id
        for node in tree.body
        if isinstance(node, ast.Assign)
        for target in node.targets
        if isinstance(target, ast.Name)
        and _INVARIANT_TUPLE_RE.match(target.id)
    ]
