"""WF: wait-freedom hygiene for machine code.

The paper's snapshot algorithm is wait-free by a *level* argument:
every scan either observes progress (levels only climb, bounded by the
target) or terminates.  An unbounded ``while True:`` loop whose only
exits are equality checks against a previous collect has no such
argument — it is the classic lock-free double collect, where a scanner
starves while writers keep moving.

WF001 fires on a ``while True:`` loop in machine code unless at least
one of its exits is guarded by a condition mentioning a progress-
bounded quantity (level, scan, target, bound, ...).  The static check
is necessarily a heuristic: it cannot prove wait-freedom, only demand
that the loop *names* its progress argument.  Loops that are
deliberately not wait-free (the lock-free and obstruction-free
baselines) carry a suppression stating so — which is exactly the
documentation the rule exists to force.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set

from repro.lint.anon import _terminal_name
from repro.lint.engine import Finding, ModuleContext, Rule

#: A guard mentioning any of these is accepted as a progress argument.
_PROGRESS_RE = re.compile(
    r"level|scan|target|bound|budget|max|limit|step|retr|phase|done",
    re.IGNORECASE,
)


def _is_constant_true(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and bool(node.value) is True


def _guard_names(ctx: ModuleContext, exit_node: ast.AST, loop: ast.While) -> Set[str]:
    """Names mentioned in conditions between an exit and its loop."""
    names: Set[str] = set()
    for parent, _child in ctx.ancestry(exit_node):
        if parent is loop:
            break
        if isinstance(parent, (ast.If, ast.While)):
            for node in ast.walk(parent.test):
                name = _terminal_name(node)
                if name is not None:
                    names.add(name)
    return names


def _loop_exits(ctx: ModuleContext, loop: ast.While) -> List[ast.AST]:
    """``return``/``break`` statements that leave this loop.

    Nested function bodies are skipped (their returns do not exit the
    loop); a ``break`` counts only when this loop is its nearest
    enclosing loop.
    """
    exits: List[ast.AST] = []
    for node in ast.walk(loop):
        if node is loop:
            continue
        if isinstance(node, ast.Return):
            if _nearest(ctx, node, (ast.FunctionDef, ast.AsyncFunctionDef),
                        stop=loop) is None:
                exits.append(node)
        elif isinstance(node, ast.Break):
            if _nearest(ctx, node, (ast.While, ast.For), stop=loop) is None:
                exits.append(node)
    return exits


def _nearest(ctx: ModuleContext, node: ast.AST, kinds, stop: ast.AST):
    """The nearest ancestor of ``node`` of the given kinds below ``stop``."""
    for parent, _child in ctx.ancestry(node):
        if parent is stop:
            return None
        if isinstance(parent, kinds):
            return parent
    return None


class WaitFreedomRule(Rule):
    rule_id = "WF001"
    summary = (
        "unbounded while-True loops in machine code must name a"
        " level/scan progress guard (or suppress with a justification)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_machine:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            if not _is_constant_true(node.test):
                continue
            exits = _loop_exits(ctx, node)
            if not exits:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "unbounded `while True` loop with no exit — machine"
                    " code must terminate on every wait-free schedule",
                )
                continue
            if any(
                _PROGRESS_RE.search(name)
                for exit_node in exits
                for name in _guard_names(ctx, exit_node, node)
            ):
                continue
            yield ctx.finding(
                self.rule_id,
                node,
                "unbounded `while True` loop without a level/scan"
                " progress guard — no exit condition names a bounded"
                " progress quantity, so the loop has no visible"
                " wait-freedom argument",
            )
