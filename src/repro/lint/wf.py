"""WF: wait-freedom hygiene for machine code.

The paper's snapshot algorithm is wait-free by a *level* argument:
every scan either observes progress (levels only climb, bounded by the
target) or terminates.  An unbounded ``while True:`` loop whose only
exits are equality checks against a previous collect has no such
argument — it is the classic lock-free double collect, where a scanner
starves while writers keep moving.

WF001 fires on a ``while True:`` loop in machine code unless at least
one of its exits is guarded by a condition mentioning a progress-
bounded quantity (level, scan, target, bound, ...).  The static check
is necessarily a heuristic: it cannot prove wait-freedom, only demand
that the loop *names* its progress argument.  Loops that are
deliberately not wait-free (the lock-free and obstruction-free
baselines) carry a suppression stating so — which is exactly the
documentation the rule exists to force.

WF002 covers the complementary shape: a ``while`` loop with a *real*
test (``while x < cap:``).  Such a loop is wait-free exactly when it
has a variant — a quantity the body strictly advances toward a bound —
and the bound is an actual constant of the algorithm.  The rule
derives the variant from the test (a single comparison whose operand
the body increments/decrements the right way) and then demands the
bound be *derivable from a declared wait-freedom budget*: a literal
constant, a ``len(...)``, or a name listed in a module-level
``WAIT_FREE_BOUNDS = ("level_target", ...)`` tuple (or a class-level
``wait_free_bounds``).  A loop with no derivable variant, a variant
moving away from its bound, or an undeclared bound fires; declaring
the budget is one line and documents the wait-freedom argument.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Set, Tuple

from repro.lint.anon import _terminal_name
from repro.lint.engine import Finding, ModuleContext, Rule

#: A guard mentioning any of these is accepted as a progress argument.
_PROGRESS_RE = re.compile(
    r"level|scan|target|bound|budget|max|limit|step|retr|phase|done",
    re.IGNORECASE,
)


def _is_constant_true(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and bool(node.value) is True


def _guard_names(ctx: ModuleContext, exit_node: ast.AST, loop: ast.While) -> Set[str]:
    """Names mentioned in conditions between an exit and its loop."""
    names: Set[str] = set()
    for parent, _child in ctx.ancestry(exit_node):
        if parent is loop:
            break
        if isinstance(parent, (ast.If, ast.While)):
            for node in ast.walk(parent.test):
                name = _terminal_name(node)
                if name is not None:
                    names.add(name)
    return names


def _loop_exits(ctx: ModuleContext, loop: ast.While) -> List[ast.AST]:
    """``return``/``break`` statements that leave this loop.

    Nested function bodies are skipped (their returns do not exit the
    loop); a ``break`` counts only when this loop is its nearest
    enclosing loop.
    """
    exits: List[ast.AST] = []
    for node in ast.walk(loop):
        if node is loop:
            continue
        if isinstance(node, ast.Return):
            if _nearest(ctx, node, (ast.FunctionDef, ast.AsyncFunctionDef),
                        stop=loop) is None:
                exits.append(node)
        elif isinstance(node, ast.Break):
            if _nearest(ctx, node, (ast.While, ast.For), stop=loop) is None:
                exits.append(node)
    return exits


def _nearest(ctx: ModuleContext, node: ast.AST, kinds, stop: ast.AST):
    """The nearest ancestor of ``node`` of the given kinds below ``stop``."""
    for parent, _child in ctx.ancestry(node):
        if parent is stop:
            return None
        if isinstance(parent, kinds):
            return parent
    return None


class WaitFreedomRule(Rule):
    rule_id = "WF001"
    summary = (
        "unbounded while-True loops in machine code must name a"
        " level/scan progress guard (or suppress with a justification)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_machine:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            if not _is_constant_true(node.test):
                continue
            exits = _loop_exits(ctx, node)
            if not exits:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "unbounded `while True` loop with no exit — machine"
                    " code must terminate on every wait-free schedule",
                )
                continue
            if any(
                _PROGRESS_RE.search(name)
                for exit_node in exits
                for name in _guard_names(ctx, exit_node, node)
            ):
                continue
            yield ctx.finding(
                self.rule_id,
                node,
                "unbounded `while True` loop without a level/scan"
                " progress guard — no exit condition names a bounded"
                " progress quantity, so the loop has no visible"
                " wait-freedom argument",
            )


#: Budget declaration names recognized at module / class level.
_BUDGET_TUPLE_NAMES = frozenset({"WAIT_FREE_BOUNDS", "wait_free_bounds"})

#: Variant direction: +1 climbs toward the bound, -1 descends, 0 any.
_UP, _DOWN, _ANY = 1, -1, 0


def declared_budget_names(ctx: ModuleContext, loop: ast.While) -> Set[str]:
    """Budget names visible to ``loop``: module-level
    ``WAIT_FREE_BOUNDS`` plus any enclosing class's
    ``wait_free_bounds`` (tuples of string constants)."""
    scopes: List[ast.AST] = [ctx.tree]
    for parent, _child in ctx.ancestry(loop):
        if isinstance(parent, ast.ClassDef):
            scopes.append(parent)
    names: Set[str] = set()
    for scope in scopes:
        body = scope.body if isinstance(scope, (ast.Module, ast.ClassDef)) else []
        for node in body:
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id in _BUDGET_TUPLE_NAMES
                for t in node.targets
            ):
                continue
            if isinstance(node.value, (ast.Tuple, ast.List)):
                for element in node.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        names.add(element.value)
    return names


def _variant_candidates(
    test: ast.expr,
) -> List[Tuple[str, int, ast.expr]]:
    """``(variant_name, direction, bound_expr)`` triples derivable from
    a loop test."""
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and len(test.comparators) == 1
    ):
        return []
    op = test.ops[0]
    left, right = test.left, test.comparators[0]
    out: List[Tuple[str, int, ast.expr]] = []
    if isinstance(op, (ast.Lt, ast.LtE)):
        if isinstance(left, ast.Name):
            out.append((left.id, _UP, right))
        if isinstance(right, ast.Name):
            out.append((right.id, _DOWN, left))
    elif isinstance(op, (ast.Gt, ast.GtE)):
        if isinstance(left, ast.Name):
            out.append((left.id, _DOWN, right))
        if isinstance(right, ast.Name):
            out.append((right.id, _UP, left))
    elif isinstance(op, (ast.NotEq, ast.Eq)):
        if isinstance(left, ast.Name):
            out.append((left.id, _ANY, right))
        if isinstance(right, ast.Name):
            out.append((right.id, _ANY, left))
    return out


def _advances(loop: ast.While, name: str, direction: int) -> bool:
    """Does the loop body move ``name`` in ``direction``?"""
    for node in ast.walk(loop):
        if node is loop:
            continue
        step: int
        if (
            isinstance(node, ast.AugAssign)
            and isinstance(node.target, ast.Name)
            and node.target.id == name
        ):
            if isinstance(node.op, ast.Add):
                step = _UP
            elif isinstance(node.op, ast.Sub):
                step = _DOWN
            else:
                continue
        elif (
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == name
                for t in node.targets
            )
            and isinstance(node.value, ast.BinOp)
            and any(
                isinstance(part, ast.Name) and part.id == name
                for part in (node.value.left, node.value.right)
            )
        ):
            if isinstance(node.value.op, ast.Add):
                step = _UP
            elif isinstance(node.value.op, ast.Sub):
                step = _DOWN
            else:
                continue
        else:
            continue
        if direction == _ANY or step == direction:
            return True
    return False


def _bound_derivable(bound: ast.expr, budgets: Set[str]) -> bool:
    if isinstance(bound, ast.Constant):
        return True
    if (
        isinstance(bound, ast.Call)
        and isinstance(bound.func, ast.Name)
        and bound.func.id == "len"
    ):
        return True  # lengths of collected data are schedule-bounded
    name = _terminal_name(bound)
    return name is not None and name in budgets


class LoopVariantRule(Rule):
    rule_id = "WF002"
    summary = (
        "machine while-loops must have a derivable variant whose bound"
        " comes from a declared wait-freedom budget"
        " (WAIT_FREE_BOUNDS / wait_free_bounds)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if not ctx.is_machine:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.While):
                continue
            if _is_constant_true(node.test):
                continue  # WF001's domain
            yield from self._check_loop(ctx, node)

    def _check_loop(
        self, ctx: ModuleContext, loop: ast.While
    ) -> Iterator[Finding]:
        candidates = _variant_candidates(loop.test)
        if not candidates:
            yield ctx.finding(
                self.rule_id,
                loop,
                "loop has no derivable variant — the test is not a"
                " comparison the body can advance, so the loop carries"
                " no wait-freedom argument",
            )
            return
        advancing = [
            (name, bound)
            for name, direction, bound in candidates
            if _advances(loop, name, direction)
        ]
        if not advancing:
            names = ", ".join(sorted({name for name, _, _ in candidates}))
            yield ctx.finding(
                self.rule_id,
                loop,
                f"loop test compares {names} but the body never advances"
                f" it toward the bound — no derivable loop variant, so"
                f" the loop carries no wait-freedom argument",
            )
            return
        budgets = declared_budget_names(ctx, loop)
        if any(
            _bound_derivable(bound, budgets) for _name, bound in advancing
        ):
            return
        bounds = ", ".join(
            sorted(
                {
                    _terminal_name(bound) or "<expr>"
                    for _name, bound in advancing
                }
            )
        )
        yield ctx.finding(
            self.rule_id,
            loop,
            f"loop bound {bounds!r} is not derivable from a declared"
            f" wait-freedom budget — add it to WAIT_FREE_BOUNDS (module)"
            f" or wait_free_bounds (class) to document the bound, or"
            f" suppress with a justification",
        )
