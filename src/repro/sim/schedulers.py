"""Schedulers: the adversary that picks which processor steps next.

A scheduler is asked, at each global step, to pick one processor among
those still enabled.  Different schedulers realize the different
quantifications the paper makes over executions:

- :class:`RoundRobinScheduler` — the fair, benign baseline;
- :class:`RandomScheduler` — seeded uniform interleavings, the workhorse
  of the statistical experiments;
- :class:`SoloScheduler` — one processor runs alone (obstruction-free
  termination, Section 7, and the lower-bound construction of §2.1);
- :class:`ScriptScheduler` — an exact, finite schedule (used to replay
  Figure 2 and counterexample traces found by the model checker);
- :class:`PeriodicScheduler` — repeats a finite pattern forever; with
  deterministic op policies this eventually drives the system into a
  lasso, certifying an *infinite* execution (Section 4's stable views).
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Protocol, Sequence


class Scheduler(Protocol):
    """Picks the processor to step next."""

    def choose(self, step_index: int, enabled: Sequence[int]) -> Optional[int]:
        """Return the pid to schedule, or ``None`` to stop the execution.

        ``enabled`` is the (non-empty) list of pids that can still take
        a step, in increasing pid order.
        """


class RoundRobinScheduler:
    """Cycle fairly over the enabled processors."""

    def __init__(self) -> None:
        self._next = 0

    def choose(self, step_index: int, enabled: Sequence[int]) -> Optional[int]:
        for candidate in range(self._next, self._next + max(enabled) + 1):
            if candidate % (max(enabled) + 1) in enabled:
                pick = candidate % (max(enabled) + 1)
                self._next = pick + 1
                return pick
        return enabled[0]


class RandomScheduler:
    """Uniformly random (seeded) choice among enabled processors."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def choose(self, step_index: int, enabled: Sequence[int]) -> Optional[int]:
        return self._rng.choice(list(enabled))


class SoloScheduler:
    """Run one processor exclusively; optionally fall back to the rest.

    With ``then_others=False`` (default) the execution stops when the
    solo processor terminates.  With ``then_others=True`` the remaining
    processors are scheduled round-robin afterwards — the shape used by
    the §2.1 lower-bound construction ("let p run solo until it produces
    an output; finally let all the members of Q write").
    """

    def __init__(self, solo_pid: int, then_others: bool = False) -> None:
        self._solo = solo_pid
        self._then_others = then_others
        self._rr_next = 0

    def choose(self, step_index: int, enabled: Sequence[int]) -> Optional[int]:
        if self._solo in enabled:
            return self._solo
        if not self._then_others:
            return None
        others = [pid for pid in enabled if pid != self._solo]
        if not others:
            return None
        pick = others[self._rr_next % len(others)]
        self._rr_next += 1
        return pick


class ScriptScheduler:
    """Follow an exact, finite schedule of pids, then stop.

    Raises if the scripted pid is not enabled — a script that desyncs
    from the algorithms is a bug in the experiment, not a tolerable
    condition.
    """

    def __init__(self, script: Iterable[int]) -> None:
        self._script: List[int] = list(script)

    def choose(self, step_index: int, enabled: Sequence[int]) -> Optional[int]:
        if step_index >= len(self._script):
            return None
        pick = self._script[step_index]
        if pick not in enabled:
            raise RuntimeError(
                f"scripted pid {pick} not enabled at step {step_index}"
                f" (enabled: {list(enabled)})"
            )
        return pick

    def __len__(self) -> int:
        return len(self._script)


class PeriodicScheduler:
    """Repeat a finite pid pattern forever (skipping terminated pids).

    The pattern together with deterministic op policies yields an
    eventually-periodic execution; the runner's lasso detection then
    certifies the corresponding *infinite* execution, giving exact
    stable views (Definition 4.2) instead of finite-prefix
    approximations.
    """

    def __init__(self, pattern: Sequence[int]) -> None:
        if not pattern:
            raise ValueError("periodic pattern must be non-empty")
        self._pattern = list(pattern)
        self._cursor = 0

    def choose(self, step_index: int, enabled: Sequence[int]) -> Optional[int]:
        enabled_set = set(enabled)
        for _ in range(len(self._pattern)):
            pick = self._pattern[self._cursor % len(self._pattern)]
            self._cursor += 1
            if pick in enabled_set:
                return pick
        # No pid in the pattern is still enabled.
        return None
