"""Algorithms as pure state machines.

Every algorithm from the paper is implemented once, as an
:class:`AlgorithmMachine`: a pure transition system over immutable,
hashable local states.  Both the simulator (:mod:`repro.sim.runner`) and
the model checker (:mod:`repro.checker`) consume this single
implementation, so whatever the checker certifies is literally the code
the benchmarks run.

Anonymity is structural: a machine is constructed from the system
parameters ``(n_processors, n_registers)`` only, and an initial local
state is derived from the processor's *input* alone.  No processor id
ever reaches algorithm code.

Nondeterminism: ``enabled_ops`` returns *all* operations the algorithm
permits next (e.g. the snapshot algorithm may pick any register not yet
written in the current round-robin cycle).  The model checker branches
over all of them; the simulator resolves the choice with an
:data:`OpPolicy` (deterministic first-enabled by default, or seeded
random).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Hashable, Optional, Protocol, Sequence, Tuple

from repro.sim.ops import Op


class AlgorithmMachine(Protocol):
    """Protocol for one (anonymous) processor's algorithm.

    Local states must be immutable and hashable; this is what makes
    lasso detection and exhaustive model checking possible.
    """

    def initial_state(self, my_input: Hashable) -> Any:
        """The designated initial local state, given the private input."""

    def enabled_ops(self, state: Any) -> Tuple[Op, ...]:
        """All operations the algorithm allows next.

        Returns the empty tuple iff the processor has terminated.
        """

    def apply(self, state: Any, op: Op, result: Any) -> Any:
        """The new local state after executing ``op``.

        ``result`` is the value read for a :class:`~repro.sim.ops.Read`
        and ``None`` for a :class:`~repro.sim.ops.Write`.
        """

    def output(self, state: Any) -> Optional[Any]:
        """The write-once output, or ``None`` if not terminated."""

    def register_initial_value(self) -> Hashable:
        """The known default value all shared registers start with."""


OpPolicy = Callable[[Sequence[Op]], Op]
"""Resolves the algorithm's internal nondeterminism in simulation."""


def FIRST_ENABLED(ops: Sequence[Op]) -> Op:
    """The canonical deterministic policy: take the first enabled op."""
    return ops[0]


class RandomPolicy:
    """Seeded random resolution of internal nondeterminism."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def __call__(self, ops: Sequence[Op]) -> Op:
        return self._rng.choice(list(ops))
