"""Adversarial constructions from the paper.

The centerpiece is the *covering adversary* of Section 2.1: with only
``N-1`` registers, the adversary

1. runs all processors of ``Q = P \\ {p}`` until each is poised to
   perform its first write, having arranged the wiring so that the
   ``N-1`` poised writes cover ``N-1`` *distinct* registers;
2. lets ``p`` run solo until it produces an output (or for a step
   budget, for non-terminating loops);
3. releases the poised writes, erasing every trace of ``p`` from the
   shared memory.

The resulting execution is indistinguishable, to the members of ``Q``,
from one in which ``p`` had a different input (and vice versa), which
is the paper's argument that no non-trivial read-write coordination is
possible below ``N`` registers.  :func:`run_covering_execution` builds
the execution; :func:`demonstrate_erasure` additionally runs the twin
execution with a different input for ``p`` and checks bit-for-bit
equality of everything ``Q`` can ever observe.

The construction needs each member of ``Q`` to be *about to write* a
distinct register.  For the paper's algorithms each processor's very
first operation is a write to its local register 0, so wiring processor
``q`` (for ``q`` in ``Q``) with a rotation placing its local 0 on a
distinct physical register realizes the covering exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, List, Optional, Sequence, Tuple

from repro.memory.memory import AnonymousMemory
from repro.memory.wiring import Wiring, WiringAssignment
from repro.sim.machine import AlgorithmMachine, FIRST_ENABLED
from repro.sim.ops import Write
from repro.sim.process import MachineProcess, ProcessStatus
from repro.sim.runner import Runner


def covering_wiring(n_processors: int, n_registers: int) -> WiringAssignment:
    """A wiring in which processor ``q >= 1`` has local register 0 on
    physical register ``q - 1``.

    With ``n_registers = n_processors - 1`` the processors ``1..N-1``
    then cover all registers with their first writes; processor 0 plays
    the role of ``p`` (identity wiring).
    """
    wirings = [Wiring.identity(n_registers)]
    for q in range(1, n_processors):
        wirings.append(Wiring.rotation(n_registers, (q - 1) % n_registers))
    return WiringAssignment(wirings)


@dataclass
class CoveringOutcome:
    """What the covering execution produced."""

    #: Output of the solo processor p (None if it did not terminate
    #: within the budget).
    solo_output: Optional[Any]
    #: Memory contents after p's solo run (p's information is present).
    memory_after_solo: Tuple[Any, ...]
    #: Memory contents after the poised writes land (p's information is
    #: gone).
    memory_after_covering: Tuple[Any, ...]
    #: Physical registers covered by the poised writes.
    covered_registers: Tuple[int, ...]
    #: Everything Q observed before its poised writes: each member's
    #: local state fingerprint at the moment of poising.
    q_observations: Tuple[Any, ...]
    steps: int


def run_covering_execution(
    machine: AlgorithmMachine,
    inputs: Sequence[Hashable],
    n_registers: Optional[int] = None,
    solo_budget: int = 50_000,
) -> CoveringOutcome:
    """Execute the Section 2.1 construction against ``machine``.

    ``inputs[0]`` is the solo processor ``p``; the rest form ``Q``.
    ``n_registers`` defaults to ``N - 1`` (the lower-bound regime).
    """
    n_processors = len(inputs)
    if n_processors < 2:
        raise ValueError("the construction needs at least two processors")
    registers = n_registers if n_registers is not None else n_processors - 1
    wiring = covering_wiring(n_processors, registers)
    memory = AnonymousMemory(wiring, machine.register_initial_value())
    processes = [
        MachineProcess(pid, machine, inputs[pid], FIRST_ENABLED)
        for pid in range(n_processors)
    ]
    runner = Runner(memory, processes, scheduler=_NullScheduler())

    # Phase 1: run each member of Q until poised to write (the paper's
    # algorithms write first, so their initial op already is a write;
    # the loop tolerates algorithms that read before writing).
    poised_targets: List[int] = []
    for process in processes[1:]:
        guard = 0
        while not isinstance(process.next_op(), Write):
            runner.step_process(process.pid)
            guard += 1
            if guard > solo_budget:
                raise RuntimeError(
                    f"processor {process.pid} never became poised to write"
                )
        op = process.next_op()
        poised_targets.append(wiring[process.pid].to_physical(op.reg))
    if len(set(poised_targets)) != min(registers, n_processors - 1):
        raise RuntimeError(
            f"covering failed: poised targets {poised_targets} do not cover"
            f" {registers} registers"
        )
    q_observations = tuple(process.state for process in processes[1:])

    # Phase 2: p runs solo.
    solo = processes[0]
    for _ in range(solo_budget):
        if solo.status is not ProcessStatus.RUNNING:
            break
        runner.step_process(0)
    memory_after_solo = memory.snapshot()

    # Phase 3: release the poised writes, erasing p's traces.
    for process in processes[1:]:
        runner.step_process(process.pid)
    memory_after_covering = memory.snapshot()

    return CoveringOutcome(
        solo_output=solo.output,
        memory_after_solo=memory_after_solo,
        memory_after_covering=memory_after_covering,
        covered_registers=tuple(sorted(set(poised_targets))),
        q_observations=q_observations,
        steps=len(runner.result().schedule),
    )


@dataclass
class ErasureDemonstration:
    """Twin covering executions differing only in p's input."""

    first: CoveringOutcome
    second: CoveringOutcome
    #: Whether memory after covering is identical in both executions —
    #: i.e. Q cannot distinguish the two inputs of p.
    memory_indistinguishable: bool
    #: Whether Q's pre-covering observations are identical in both.
    q_indistinguishable: bool

    @property
    def erasure_complete(self) -> bool:
        return self.memory_indistinguishable and self.q_indistinguishable


def demonstrate_erasure(
    machine_factory,
    inputs: Sequence[Hashable],
    alternate_input: Hashable,
    n_registers: Optional[int] = None,
    solo_budget: int = 50_000,
) -> ErasureDemonstration:
    """Run the construction twice, changing only p's input.

    ``machine_factory()`` must build a fresh machine (machines are
    stateless, but this keeps configurations honest).  The demonstration
    checks that everything ``Q`` can ever observe — its own pre-covering
    states and the post-covering memory — is identical across the twin
    executions, which is the paper's indistinguishability argument made
    executable.
    """
    first = run_covering_execution(
        machine_factory(), inputs, n_registers, solo_budget
    )
    twin_inputs = [alternate_input, *inputs[1:]]
    second = run_covering_execution(
        machine_factory(), twin_inputs, n_registers, solo_budget
    )
    return ErasureDemonstration(
        first=first,
        second=second,
        memory_indistinguishable=(
            first.memory_after_covering == second.memory_after_covering
        ),
        q_indistinguishable=(first.q_observations == second.q_observations),
    )


class _NullScheduler:
    """Placeholder scheduler; the construction drives steps manually."""

    def choose(self, step_index: int, enabled: Sequence[int]) -> Optional[int]:
        return None
