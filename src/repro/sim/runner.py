"""The execution runner: drives processes under a scheduler.

The runner realizes the paper's execution model (Section 2): an
execution is a sequence of atomic steps of individual processors, each
step being a read or write of one register (plus the terminal output
step).  The runner:

- asks the scheduler which enabled processor steps next,
- lets that processor choose its operation (resolving internal
  nondeterminism via its op policy),
- executes the operation against the :class:`AnonymousMemory` (which
  applies the wiring and records the trace),
- feeds the result back into the processor's state machine.

When every participating process is a :class:`MachineProcess`, the runner
can fingerprint the *global* state (register contents + all local
states) after every step.  A repeated fingerprint under a deterministic
scheduler+policy certifies a *lasso*: the finite prefix extends to a
genuine infinite execution that repeats the cycle forever.  That is how
the Section 4 experiments obtain exact stable views rather than
finite-prefix approximations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.memory.memory import AnonymousMemory
from repro.memory.trace import Trace
from repro.sim.ops import Read, Write
from repro.sim.process import MachineProcess, ProcessStatus, all_machine_processes
from repro.sim.schedulers import Scheduler


@dataclass(frozen=True)
class Lasso:
    """A certified eventually-periodic execution.

    ``prefix_length`` steps lead to a state that recurs after another
    ``cycle_length`` steps; ``cycle_pids`` lists the processors taking
    steps within the cycle (the *live* processors of Definition 4.1).
    """

    prefix_length: int
    cycle_length: int
    cycle_pids: Tuple[int, ...]


@dataclass
class ExecutionResult:
    """Everything observable about a finished (finite) run."""

    outputs: Dict[int, Any]
    trace: Trace
    steps: int
    statuses: Dict[int, ProcessStatus]
    schedule: List[int] = field(default_factory=list)
    lasso: Optional[Lasso] = None
    #: Local state of every machine process at the end of the run.
    final_states: Dict[int, Any] = field(default_factory=dict)

    @property
    def all_terminated(self) -> bool:
        return all(status is ProcessStatus.DONE for status in self.statuses.values())

    def participants(self) -> Tuple[int, ...]:
        return self.trace.participants()


class Runner:
    """Drives a set of processes over an anonymous memory.

    Parameters
    ----------
    memory:
        The shared memory (with its wiring fixed at construction).
    processes:
        The processors, indexed by their meta-level pid (which must be
        ``0..len(processes)-1`` and match each process's ``pid``).
    scheduler:
        The adversary choosing interleavings.
    detect_lasso:
        Fingerprint global states and stop as soon as a state repeats.
        Requires all processes to be machine processes.
    """

    def __init__(
        self,
        memory: AnonymousMemory,
        processes: Sequence[Any],
        scheduler: Scheduler,
        detect_lasso: bool = False,
    ) -> None:
        for index, process in enumerate(processes):
            if process.pid != index:
                raise ValueError(
                    f"process at position {index} has pid {process.pid};"
                    " pids must be 0..N-1 in order"
                )
        if len(processes) != memory.n_processors:
            raise ValueError(
                f"{len(processes)} processes but memory wired for"
                f" {memory.n_processors}"
            )
        if detect_lasso and not all_machine_processes(processes):
            raise TypeError("lasso detection requires machine processes only")
        self.memory = memory
        self.processes = list(processes)
        self.scheduler = scheduler
        self.detect_lasso = detect_lasso
        self._schedule: List[int] = []
        self._seen_states: Dict[Hashable, int] = {}
        self._lasso: Optional[Lasso] = None
        if detect_lasso:
            self._seen_states[self._fingerprint()] = 0

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def enabled_pids(self) -> List[int]:
        return [
            process.pid
            for process in self.processes
            if process.status is ProcessStatus.RUNNING
        ]

    def step_process(self, pid: int) -> None:
        """Execute one atomic step of processor ``pid``."""
        process = self.processes[pid]
        op = process.next_op()
        if isinstance(op, Read):
            result = self.memory.read(pid, op.reg)
        elif isinstance(op, Write):
            self.memory.write(pid, op.reg, op.value)
            result = None
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown operation {op!r}")
        process.apply(op, result)
        self._schedule.append(pid)
        if process.status is ProcessStatus.DONE:
            self.memory.record_output(pid, process.output)

    def run(self, max_steps: int = 100_000) -> ExecutionResult:
        """Run until the scheduler stops, all terminate, a lasso is
        found, or ``max_steps`` elapse."""
        for step_index in range(len(self._schedule), max_steps):
            enabled = self.enabled_pids()
            if not enabled:
                break
            pick = self.scheduler.choose(step_index, enabled)
            if pick is None:
                break
            self.step_process(pick)
            if self.detect_lasso and self._check_lasso():
                break
        return self.result()

    # ------------------------------------------------------------------
    # Lasso detection
    # ------------------------------------------------------------------
    def _fingerprint(self) -> Hashable:
        return (
            self.memory.snapshot(),
            self.memory.last_writers(),
            tuple(process.local_fingerprint() for process in self.processes),
        )

    def _check_lasso(self) -> bool:
        fingerprint = self._fingerprint()
        now = len(self._schedule)
        first_seen = self._seen_states.get(fingerprint)
        if first_seen is not None:
            cycle = self._schedule[first_seen:now]
            self._lasso = Lasso(
                prefix_length=first_seen,
                cycle_length=now - first_seen,
                cycle_pids=tuple(sorted(set(cycle))),
            )
            return True
        self._seen_states[fingerprint] = now
        return False

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def result(self) -> ExecutionResult:
        outputs = {
            process.pid: process.output
            for process in self.processes
            if process.status is ProcessStatus.DONE
        }
        final_states = {
            process.pid: process.state
            for process in self.processes
            if isinstance(process, MachineProcess)
        }
        return ExecutionResult(
            outputs=outputs,
            trace=self.memory.trace,
            steps=len(self._schedule),
            statuses={process.pid: process.status for process in self.processes},
            schedule=list(self._schedule),
            lasso=self._lasso,
            final_states=final_states,
        )
