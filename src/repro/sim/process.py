"""Process wrappers driven by the runner.

Two kinds of processes exist:

- :class:`MachineProcess` wraps an :class:`~repro.sim.machine.AlgorithmMachine`
  and an immutable local state.  This is the primary kind: it supports
  replay, hashing of the global state (lasso detection) and is the same
  code the model checker explores.
- :class:`GeneratorProcess` wraps a free-form Python generator that
  yields :class:`~repro.sim.ops.Read`/:class:`~repro.sim.ops.Write`
  operations and receives read results via ``send``.  Baseline
  algorithms from related work use this form; such processes cannot be
  hashed (their state lives in a Python frame), so lasso detection is
  unavailable when any generator process participates.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Hashable, Optional, Sequence, Tuple

from repro.sim.machine import AlgorithmMachine, FIRST_ENABLED, OpPolicy
from repro.sim.ops import Op, Read, Write


class ProcessStatus(enum.Enum):
    """Lifecycle of a simulated processor."""

    RUNNING = "running"
    DONE = "done"


class MachineProcess:
    """A processor executing an :class:`AlgorithmMachine`.

    Parameters
    ----------
    pid:
        Meta-level identifier used by the scheduler and the trace.  The
        algorithm itself never sees it (processor anonymity).
    machine:
        The algorithm, shared by all processors running the same program.
    my_input:
        The processor's private input (the only thing that may differ
        between processors in the fully-anonymous model).
    policy:
        Resolution of the algorithm's internal nondeterminism.
    """

    def __init__(
        self,
        pid: int,
        machine: AlgorithmMachine,
        my_input: Hashable,
        policy: OpPolicy = FIRST_ENABLED,
    ) -> None:
        self.pid = pid
        self.machine = machine
        self.my_input = my_input
        self.policy = policy
        self.state = machine.initial_state(my_input)
        self.steps_taken = 0

    @property
    def status(self) -> ProcessStatus:
        if self.machine.enabled_ops(self.state):
            return ProcessStatus.RUNNING
        return ProcessStatus.DONE

    @property
    def output(self) -> Optional[Any]:
        return self.machine.output(self.state)

    def next_op(self) -> Op:
        """Choose the next operation (resolving internal nondeterminism)."""
        ops = self.machine.enabled_ops(self.state)
        if not ops:
            raise RuntimeError(f"process {self.pid} has terminated")
        return self.policy(ops)

    def enabled_ops(self) -> Tuple[Op, ...]:
        return self.machine.enabled_ops(self.state)

    def apply(self, op: Op, result: Any) -> None:
        """Advance the local state after the runner executed ``op``."""
        self.state = self.machine.apply(self.state, op, result)
        self.steps_taken += 1

    def local_fingerprint(self) -> Hashable:
        """Hashable view of the local state, for global-state hashing."""
        return self.state


class GeneratorProcess:
    """A processor executing a generator-based algorithm.

    The generator must yield :class:`Read`/:class:`Write` operations;
    ``yield Read(i)`` evaluates to the value read.  Returning from the
    generator terminates the processor; the return value is its output.
    """

    def __init__(
        self,
        pid: int,
        generator: Generator[Op, Any, Any],
        my_input: Hashable = None,
    ) -> None:
        self.pid = pid
        self.my_input = my_input
        self.steps_taken = 0
        self._generator = generator
        self._pending_op: Optional[Op] = None
        self._output: Optional[Any] = None
        self._done = False
        self._prime()

    def _prime(self) -> None:
        try:
            self._pending_op = next(self._generator)
        except StopIteration as stop:
            self._done = True
            self._output = stop.value

    @property
    def status(self) -> ProcessStatus:
        return ProcessStatus.DONE if self._done else ProcessStatus.RUNNING

    @property
    def output(self) -> Optional[Any]:
        return self._output

    def next_op(self) -> Op:
        if self._done or self._pending_op is None:
            raise RuntimeError(f"process {self.pid} has terminated")
        return self._pending_op

    def enabled_ops(self) -> Tuple[Op, ...]:
        if self._done or self._pending_op is None:
            return ()
        return (self._pending_op,)

    def apply(self, op: Op, result: Any) -> None:
        if op is not self._pending_op:
            raise RuntimeError(
                f"process {self.pid}: executed op {op!r} does not match pending"
                f" op {self._pending_op!r}"
            )
        self.steps_taken += 1
        try:
            if isinstance(op, Read):
                self._pending_op = self._generator.send(result)
            else:
                self._pending_op = self._generator.send(None)
        except StopIteration as stop:
            self._done = True
            self._pending_op = None
            self._output = stop.value

    def local_fingerprint(self) -> Hashable:
        raise TypeError(
            "generator processes have opaque state; lasso detection requires"
            " machine processes"
        )


Process = Any  # MachineProcess | GeneratorProcess (duck-typed by the runner)


def all_machine_processes(processes: Sequence[Process]) -> bool:
    """Whether every process supports local-state fingerprinting."""
    return all(isinstance(process, MachineProcess) for process in processes)
