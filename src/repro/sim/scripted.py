"""Scripted executions: Figure 2 and its five-processor extension.

Section 4.1 of the paper exhibits a *pathological infinite execution* of
the write-scan loop in which three processors keep overwriting each
other so that the views ``{1,2}`` and ``{1,3}`` remain incomparable
forever (Figure 2, 13 rows, rows 5-13 repeating), and then extends it
with two more processors ``p`` and ``p'`` that each read a constant set
(``{1,2}`` resp. ``{1,3}``) in *all* registers ad infinitum — defeating
any "saw the same set everywhere" (or double-collect) termination rule.

This module reconstructs both executions exactly:

- **Wirings.**  ``p2`` and ``p3`` are wired identically (identity); ``p1``
  is wired with a rotation by one, so its fair round-robin writes land on
  physical registers 1, 2, 0, ...  That makes ``p1`` overwrite whatever
  ``p3`` just wrote, cycling exactly as the figure's rows do.  The
  extension processors ``p`` and ``p'`` use the same rotation wiring so
  their scans visit physical registers 1, 2, 0 in the order in which the
  churn deposits ``{1,2}`` (resp. ``{1,3}``) there.
- **Schedule.**  Built programmatically, one row at a time (a row is one
  write plus a full three-read scan of the acting processor); the
  extension inserts ``p``/``p'`` steps immediately after the write they
  must observe (or shadow, for their own non-perturbing writes).

The builders return the runner *and* the expected Figure 2 rows so tests
and benchmark E1 can assert cell-by-cell equality with the paper, and
they run with lasso detection on, so the infinite repetition is
certified rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.views import View, view
from repro.core.write_scan import WriteScanMachine
from repro.memory.memory import AnonymousMemory
from repro.memory.wiring import Wiring, WiringAssignment
from repro.sim.machine import FIRST_ENABLED
from repro.sim.process import MachineProcess
from repro.sim.runner import Runner
from repro.sim.schedulers import ScriptScheduler

#: Figure 2 dimensions: processors p1, p2, p3 (pids 0, 1, 2) with inputs
#: 1, 2, 3 over three registers.
FIGURE2_INPUTS = (1, 2, 3)
FIGURE2_N_REGISTERS = 3


def figure2_wiring(n_processors: int = 3) -> WiringAssignment:
    """The wiring realizing Figure 2 (and its extension for ``n > 3``).

    pid 0 (p1) and the extension pids 3 (p), 4 (p') are rotated by one;
    pids 1, 2 (p2, p3) are the identity.
    """
    rotation = Wiring.rotation(FIGURE2_N_REGISTERS, 1)
    identity = Wiring.identity(FIGURE2_N_REGISTERS)
    wirings = [rotation, identity, identity]
    for _ in range(3, n_processors):
        wirings.append(rotation)
    return WiringAssignment(wirings[:n_processors])


@dataclass(frozen=True)
class Figure2Row:
    """One row of the Figure 2 table."""

    index: int
    description: str
    registers: Tuple[View, View, View]
    views: Tuple[View, View, View]


#: The 13 rows of Figure 2, transcribed from the paper.  Registers are
#: listed r1, r2, r3 (physical 0, 1, 2); views are p1, p2, p3.
FIGURE2_EXPECTED_ROWS: Tuple[Figure2Row, ...] = (
    Figure2Row(1, "p1 writes twice and ends with a scan",
               (view(), view(1), view(1)), (view(1), view(2), view(3))),
    Figure2Row(2, "p2 writes then scans",
               (view(2), view(1), view(1)), (view(1), view(1, 2), view(3))),
    Figure2Row(3, "p3 overwrites p2 then scans",
               (view(3), view(1), view(1)), (view(1), view(1, 2), view(1, 3))),
    Figure2Row(4, "p1 overwrites p3 then scans",
               (view(1), view(1), view(1)), (view(1), view(1, 2), view(1, 3))),
    Figure2Row(5, "p2 writes then scans",
               (view(1), view(1, 2), view(1)), (view(1), view(1, 2), view(1, 3))),
    Figure2Row(6, "p3 overwrites p2 then scans",
               (view(1), view(1, 3), view(1)), (view(1), view(1, 2), view(1, 3))),
    Figure2Row(7, "p1 overwrites p3 then scans",
               (view(1), view(1), view(1)), (view(1), view(1, 2), view(1, 3))),
    Figure2Row(8, "p2 writes then scans",
               (view(1), view(1), view(1, 2)), (view(1), view(1, 2), view(1, 3))),
    Figure2Row(9, "p3 overwrites p2 then scans",
               (view(1), view(1), view(1, 3)), (view(1), view(1, 2), view(1, 3))),
    Figure2Row(10, "p1 overwrites p3 then scans",
                (view(1), view(1), view(1)), (view(1), view(1, 2), view(1, 3))),
    Figure2Row(11, "p2 writes then scans",
                (view(1, 2), view(1), view(1)), (view(1), view(1, 2), view(1, 3))),
    Figure2Row(12, "p3 overwrites p2 then scans",
                (view(1, 3), view(1), view(1)), (view(1), view(1, 2), view(1, 3))),
    Figure2Row(13, "p1 overwrites p3 then scans (same as 4)",
                (view(1), view(1), view(1)), (view(1), view(1, 2), view(1, 3))),
)

#: Steps per table row: one write plus a full scan (three reads), except
#: row 1 where p1 goes through two complete write+scan iterations.
_ROW_PIDS: Tuple[Tuple[int, int], ...] = (
    # (acting pid, number of write+scan iterations)
    (0, 2),
    (1, 1), (2, 1), (0, 1),
    (1, 1), (2, 1), (0, 1),
    (1, 1), (2, 1), (0, 1),
    (1, 1), (2, 1), (0, 1),
)


def figure2_schedule(n_cycles: int = 1) -> List[int]:
    """The pid schedule of Figure 2.

    ``n_cycles`` repeats of the rows 5-13 block are appended after the
    initial 13 rows (``n_cycles=1`` is exactly the figure).
    """
    steps_per_iteration = 1 + FIGURE2_N_REGISTERS  # write + full scan
    schedule: List[int] = []
    for pid, iterations in _ROW_PIDS:
        schedule.extend([pid] * (steps_per_iteration * iterations))
    cycle: List[int] = []
    for pid, iterations in _ROW_PIDS[4:]:
        cycle.extend([pid] * (steps_per_iteration * iterations))
    schedule.extend(cycle * max(0, n_cycles - 1))
    return schedule


def build_figure2_runner(
    n_cycles: int = 1, detect_lasso: bool = False, max_cycles_for_lasso: int = 4
) -> Runner:
    """A runner executing Figure 2 under the write-scan loop.

    With ``detect_lasso=True`` the schedule is extended far enough for
    the runner to certify the repetition of rows 5-13.
    """
    wiring = figure2_wiring(3)
    machine = WriteScanMachine(FIGURE2_N_REGISTERS)
    memory = AnonymousMemory(wiring, machine.register_initial_value())
    processes = [
        MachineProcess(pid, machine, FIGURE2_INPUTS[pid], FIRST_ENABLED)
        for pid in range(3)
    ]
    cycles = max(n_cycles, max_cycles_for_lasso) if detect_lasso else n_cycles
    scheduler = ScriptScheduler(figure2_schedule(cycles))
    return Runner(memory, processes, scheduler, detect_lasso=detect_lasso)


def figure2_observed_rows(runner: Optional[Runner] = None) -> List[Figure2Row]:
    """Execute Figure 2 and extract the 13 observed table rows.

    Each row's "post state" is sampled after the acting processor's
    write+scan iteration(s) complete, exactly as in the paper's table.
    """
    runner = runner or build_figure2_runner(n_cycles=1)
    rows: List[Figure2Row] = []
    steps_per_iteration = 1 + FIGURE2_N_REGISTERS
    for row_index, (pid, iterations) in enumerate(_ROW_PIDS, start=1):
        for _ in range(steps_per_iteration * iterations):
            runner.step_process(pid)
        registers = tuple(runner.memory.snapshot())
        views = tuple(process.state.view for process in runner.processes)
        rows.append(
            Figure2Row(
                index=row_index,
                description=FIGURE2_EXPECTED_ROWS[row_index - 1].description,
                registers=registers,  # type: ignore[arg-type]
                views=views,  # type: ignore[arg-type]
            )
        )
    return rows


def format_figure2_table(rows: Sequence[Figure2Row]) -> str:
    """Render rows in the paper's tabular layout."""

    def fmt(values: Tuple[View, ...]) -> str:
        return "  ".join(
            "{" + ",".join(str(v) for v in sorted(entry)) + "}" for entry in values
        )

    lines = [
        f"{'row':>3}  {'r1  r2  r3':<22} {'view[p1]  view[p2]  view[p3]':<30}"
        f"  actions"
    ]
    for row in rows:
        lines.append(
            f"{row.index:>3}  {fmt(row.registers):<22} {fmt(row.views):<30}"
            f"  {row.description}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# The five-processor extension (Section 4.1, second half)
# ----------------------------------------------------------------------

EXTENSION_INPUTS = (1, 2, 3, 1, 1)  # p and p' both have input 1


def _extension_cycle_schedule(cycle_index: int) -> List[int]:
    """One rows-5-to-13 block with the p (pid 3) and p' (pid 4) insertions.

    Within a block, the churners act in the order
    ``row5..row13`` = p2,p3,p1 on phys 1, then phys 2, then phys 0.
    ``p`` piggybacks on p2's writes of ``{1,2}``: on even cycles it scans
    (one read right after each of p2's three writes), on odd cycles it
    performs its single non-perturbing write right after the p2 write to
    the register that is next in p's own round-robin order.  ``p'`` does
    the same one row later, synchronized to p3's writes of ``{1,3}``.

    p's writes rotate phys 1 -> 2 -> 0 across its write-cycles, which is
    exactly its wiring's round-robin order, so the fairness requirement
    of the write-scan loop is met.
    """
    steps = 1 + FIGURE2_N_REGISTERS
    row = {
        5: [1] * steps, 6: [2] * steps, 7: [0] * steps,
        8: [1] * steps, 9: [2] * steps, 10: [0] * steps,
        11: [1] * steps, 12: [2] * steps, 13: [0] * steps,
    }
    # Rows after whose *write step* p (pid 3) must act, per phase.
    scanning = cycle_index % 2 == 0
    write_phase = (cycle_index % 6) in (1, 3, 5)
    # p writes phys2 on cycles =1 mod 6 (after row 8), phys0 on =3 (after
    # row 11), phys1 on =5 (after row 5).
    p_write_row = {1: 8, 3: 11, 5: 5}.get(cycle_index % 6)
    p_prime_write_row = {1: 9, 3: 12, 5: 6}.get(cycle_index % 6)

    schedule: List[int] = []
    for row_number in range(5, 14):
        pids = row[row_number]
        schedule.append(pids[0])  # the churner's write step
        if scanning and row_number in (5, 8, 11):
            schedule.append(3)  # p reads right after the {1,2} write
        if scanning and row_number in (6, 9, 12):
            schedule.append(4)  # p' reads right after the {1,3} write
        if write_phase and p_write_row == row_number:
            schedule.append(3)  # p's non-perturbing write of {1,2}
        if write_phase and p_prime_write_row == row_number:
            schedule.append(4)  # p''s non-perturbing write of {1,3}
        schedule.extend(pids[1:])  # the churner's scan reads
    return schedule


def extension_schedule(n_cycles: int = 12) -> List[int]:
    """Full schedule of the five-processor extension.

    Rows 1-4 as in Figure 2, then the initial non-perturbing writes of
    ``p`` and ``p'`` (both write ``{1}`` over registers already holding
    ``{1}``), then ``n_cycles`` churn blocks with the piggybacked steps.
    """
    steps = 1 + FIGURE2_N_REGISTERS
    schedule: List[int] = []
    for pid, iterations in _ROW_PIDS[:4]:
        schedule.extend([pid] * (steps * iterations))
    schedule.extend([3, 4])  # initial writes of p and p'
    for cycle_index in range(n_cycles):
        schedule.extend(_extension_cycle_schedule(cycle_index))
    return schedule


def build_extension_runner(
    n_cycles: int = 12, detect_lasso: bool = True
) -> Runner:
    """A runner executing the five-processor extension."""
    wiring = figure2_wiring(5)
    machine = WriteScanMachine(FIGURE2_N_REGISTERS)
    memory = AnonymousMemory(wiring, machine.register_initial_value())
    processes = [
        MachineProcess(pid, machine, EXTENSION_INPUTS[pid], FIRST_ENABLED)
        for pid in range(5)
    ]
    scheduler = ScriptScheduler(extension_schedule(n_cycles))
    return Runner(memory, processes, scheduler, detect_lasso=detect_lasso)
