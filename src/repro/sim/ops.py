"""Atomic operations processors can issue.

Each operation corresponds to exactly one atomic step of the paper's
model: a read step or a write step of a single register.  Register
indices are always *local* (private to the issuing processor); the
memory substrate translates them through the processor's wiring.

Local computation steps have no shared effect and are merged into the
adjacent shared step, which preserves the set of reachable interleavings
(standard reduction; see DESIGN.md, "Step-granularity fidelity").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Union


@dataclass(frozen=True)
class Read:
    """Atomically read local register ``reg``; the step yields the value read."""

    reg: int


@dataclass(frozen=True)
class Write:
    """Atomically write ``value`` to local register ``reg``."""

    reg: int
    value: Any


Op = Union[Read, Write]
