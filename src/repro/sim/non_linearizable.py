"""The true core of claim B, constructively: a snapshot output that
never corresponds to the memory contents during the scan that produced
it.

The paper's Section 8 claim is that outputs of the Figure 3 algorithm
need not match the memory contents.  Under the whole-execution reading
("at no point in time") and the union-of-register-views formalization,
our exhaustive analysis (:mod:`repro.checker.claim_b`) shows no such
execution exists for 3 processors.  The *linearizability* form of the
claim, however, is true and is constructed here explicitly: processor B
outputs ``W = {1,2}`` although at every instant of B's final scan (from
its first read to its output) the memory union differs from ``W`` — a
"3-token" is always parked in some register.  The final scan therefore
cannot be linearized as an atomic collect anywhere within its own
interval.

The choreography is a covering dance (the paper's title phenomenon):

1. A and B honestly build view ``W`` and climb to level 2, leaving every
   register at ``(W, 1)`` and A *poised*: its round-robin forces its
   next write to register 1, and its level is 2, so the pending write is
   a ``(W, 2)`` record aimed exactly where the token will sit.
2. B spends one extra cycle planting a ``(W, 2)`` record in register 2
   (its scan still reads a level-1 record, so B stays at level 2).
3. C parks a ``{3}`` token in register 1.
4. B's final cycle: it writes ``(W, 2)`` to register 0 and reads it —
   the token in register 1 keeps the union at ``{1,2,3}`` — then C drops
   a second token into the already-read register 0, A's poised write
   lands on register 1 (erasing token one, token two still alive), and B
   reads registers 1 and 2: all views ``W``, all levels ≥ 2, so B
   reaches level 3 and outputs ``W`` — while the union held a 3
   throughout.

Every step is asserted as it is taken, and the returned record carries
the union at each instant of the final scan for independent
re-verification (tests and benchmark E5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.snapshot import PHASE_WRITE, SnapshotMachine
from repro.core.views import RegisterRecord, View
from repro.memory.memory import AnonymousMemory
from repro.memory.wiring import WiringAssignment
from repro.sim.ops import Write
from repro.sim.process import MachineProcess
from repro.sim.runner import Runner

W = frozenset({1, 2})


class SteerablePolicy:
    """Op policy whose write target can be steered per step."""

    def __init__(self) -> None:
        self._preferred: Optional[int] = None

    def prefer(self, reg: int) -> None:
        self._preferred = reg

    def __call__(self, ops: Sequence) -> object:
        if self._preferred is not None:
            for op in ops:
                if isinstance(op, Write) and op.reg == self._preferred:
                    self._preferred = None
                    return op
            raise RuntimeError(
                f"preferred register {self._preferred} not among enabled"
                f" ops {ops!r}"
            )
        return ops[0]


@dataclass
class NonLinearizableScanDemo:
    """The verified construction."""

    runner: Runner
    #: Output of the witness processor B (pid 1): exactly ``W``.
    output: View
    #: Union of the memory after each global step from B's first
    #: final-scan read to its output (inclusive).
    unions_during_final_scan: List[View]

    @property
    def never_matches(self) -> bool:
        return all(
            union != self.output for union in self.unions_during_final_scan
        )


def memory_union_of(memory: AnonymousMemory) -> View:
    """Union of the views currently stored in the registers."""
    union: frozenset = frozenset()
    for record in memory.snapshot():
        if isinstance(record, RegisterRecord):
            union |= record.view
    return union


class _NullScheduler:
    def choose(self, step_index, enabled):
        return None


def build_non_linearizable_scan_demo() -> NonLinearizableScanDemo:
    """Construct and verify the execution described in the module docs."""
    machine = SnapshotMachine(3)
    wiring = WiringAssignment.identity(3, 3)
    memory = AnonymousMemory(wiring, machine.register_initial_value())
    policies = [SteerablePolicy() for _ in range(3)]
    processes = [
        MachineProcess(pid, machine, pid + 1, policies[pid])
        for pid in range(3)
    ]
    runner = Runner(memory, processes, _NullScheduler())
    proc_a, proc_b, proc_c = processes

    def cycle(process, policy, target):
        """One steered write plus the full three-read scan."""
        policy.prefer(target)
        runner.step_process(process.pid)
        for _ in range(3):
            runner.step_process(process.pid)

    def record(reg):
        return memory.snapshot()[reg]

    # ------------------------------------------------------------------
    # Preparation (steps 1-9 of the module docstring's derivation).
    # ------------------------------------------------------------------
    cycle(proc_a, policies[0], 0)   # 1: A writes {1} to r0, scans
    cycle(proc_b, policies[1], 1)   # 2: B writes {2} to r1, scans; view W
    cycle(proc_a, policies[0], 2)   # 3: A scans past r1={2}; view W
    assert proc_a.state.view == W and proc_b.state.view == W

    cycle(proc_a, policies[0], 1)   # 4: A rewrites r1 with (W,0)
    cycle(proc_a, policies[0], 0)   # 5: r0 := (W,0)
    cycle(proc_a, policies[0], 2)   # 6: r2 := (W,0); clean scan -> level 1
    assert proc_a.state.level == 1

    cycle(proc_a, policies[0], 1)   # 7: r1 := (W,1)
    cycle(proc_a, policies[0], 0)   # 8: r0 := (W,1)
    cycle(proc_a, policies[0], 2)   # 9: r2 := (W,1); min=1 -> level 2
    assert proc_a.state.level == 2
    assert proc_a.state.phase == PHASE_WRITE
    # A's round-robin now forces register 1: the poised write is armed.
    a_choices = {
        op.reg
        for op in machine.enabled_ops(proc_a.state)
        if isinstance(op, Write)
    }
    assert a_choices == {1}, a_choices
    assert all(record(reg) == RegisterRecord(W, 1) for reg in range(3))

    # B climbs to level 2 and plants the third (W,2) record, ending a
    # full round-robin cycle so its *next* write can target register 0.
    cycle(proc_b, policies[1], 0)   # 10: r0 := (W,0); min 0 -> level 1
    assert proc_b.state.level == 1
    cycle(proc_b, policies[1], 2)   # 11: r2 := (W,1); min 0 -> level 1
    cycle(proc_b, policies[1], 0)   # 12: r0 := (W,1); min 1 -> level 2
    assert proc_b.state.level == 2
    cycle(proc_b, policies[1], 2)   # 13: plant r2 := (W,2); min 1 -> lvl 2
    assert proc_b.state.level == 2
    assert record(2) == RegisterRecord(W, 2)
    cycle(proc_b, policies[1], 1)   # 14: r1 := (W,2) completes the cycle
    assert proc_b.state.level == 2
    b_choices = {
        op.reg
        for op in machine.enabled_ops(proc_b.state)
        if isinstance(op, Write)
    }
    assert 0 in b_choices, b_choices

    # ------------------------------------------------------------------
    # The finale (F1-F8).
    # ------------------------------------------------------------------
    unions: List[View] = []

    policies[2].prefer(1)
    runner.step_process(2)          # F1: C parks token {3} in r1
    assert 3 in memory_union_of(memory)

    policies[1].prefer(0)
    runner.step_process(1)          # F2: B writes (W,2) to r0
    runner.step_process(1)          # F3: B reads r0 = (W,2)
    unions.append(memory_union_of(memory))

    for _ in range(3):              # F4: C's scan (harmless reads)
        runner.step_process(2)
    unions.append(memory_union_of(memory))

    policies[2].prefer(0)
    runner.step_process(2)          # F5: second token into read r0
    unions.append(memory_union_of(memory))

    policies[0].prefer(1)
    runner.step_process(0)          # F6: A's poised (W,2) lands on r1
    unions.append(memory_union_of(memory))

    runner.step_process(1)          # F7: B reads r1 = (W,2)
    unions.append(memory_union_of(memory))
    runner.step_process(1)          # F8: B reads r2 = (W,2) -> level 3
    unions.append(memory_union_of(memory))

    output = proc_b.output
    assert output == W, f"B output {output!r}, expected {sorted(W)}"
    demo = NonLinearizableScanDemo(
        runner=runner, output=output, unions_during_final_scan=unions
    )
    assert demo.never_matches, (
        f"union matched the output during the final scan: {unions!r}"
    )
    return demo
