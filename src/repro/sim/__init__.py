"""Asynchronous-execution substrate: processes, schedulers, runner.

The paper's executions (Section 2) are infinite interleavings of atomic
steps chosen by an adversary.  This package provides:

- the atomic operations processors can issue (:mod:`repro.sim.ops`),
- the :class:`~repro.sim.machine.AlgorithmMachine` protocol — algorithms
  as pure state machines over immutable local states, the single source
  of truth shared by the simulator and the model checker,
- process wrappers (:mod:`repro.sim.process`) for both state-machine
  algorithms and free-form generator algorithms (used by baselines),
- schedulers (:mod:`repro.sim.schedulers`): round-robin, seeded random,
  solo runs, scripts, and periodic patterns,
- the :class:`~repro.sim.runner.Runner` that drives everything and
  returns a queryable :class:`~repro.sim.runner.ExecutionResult`,
- scripted executions (:mod:`repro.sim.scripted`) reproducing Figure 2
  and its five-processor extension exactly,
- adversaries (:mod:`repro.sim.adversaries`), including the covering
  adversary of the Section 2.1 lower bound.
"""

from repro.sim.machine import AlgorithmMachine, FIRST_ENABLED, RandomPolicy
from repro.sim.ops import Read, Write
from repro.sim.process import GeneratorProcess, MachineProcess, ProcessStatus
from repro.sim.runner import ExecutionResult, Runner
from repro.sim.schedulers import (
    PeriodicScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    ScriptScheduler,
    SoloScheduler,
)

__all__ = [
    "Read",
    "Write",
    "AlgorithmMachine",
    "FIRST_ENABLED",
    "RandomPolicy",
    "MachineProcess",
    "GeneratorProcess",
    "ProcessStatus",
    "Runner",
    "ExecutionResult",
    "RoundRobinScheduler",
    "RandomScheduler",
    "ScriptScheduler",
    "SoloScheduler",
    "PeriodicScheduler",
]
