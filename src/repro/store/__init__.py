"""Pluggable fingerprint-set storage for the exploration engines.

The checker's scaling wall is the *visited set*: every engine keeps one
entry per distinct reached state, and in-RAM Python sets cap the
exhaustive N=3 runs (~10⁷–10⁸ states per wiring class) well below
commodity-disk sizes.  TLC — the model checker whose fingerprint design
:mod:`repro.checker.fingerprint` already mirrors — solves this by
spilling the fingerprint set to disk; this package gives the
reproduction the same storage layer behind one interface:

- :class:`RamStore` — the existing in-RAM set, extracted unchanged
  (the default; fastest, memory ∝ states);
- :class:`MmapStore` — an mmap'd open-addressing table with a fixed
  byte capacity: memory-mapped file pages instead of Python objects,
  ~8 bytes per state, refuses (rather than degrades) past its load
  limit;
- :class:`SpillStore` — TLC's trade: a bounded in-RAM buffer that
  spills sorted runs to disk, with periodic run merging and a Bloom
  filter short-circuiting lookups of never-seen keys.  RAM stays under
  ``mem_cap`` however many states the run visits.

All three are exact sets (the Bloom filter only short-circuits
*misses*), so every engine reports identical states/transitions/
verdicts whatever the backend — tested exhaustively for N=2.

On top of the durable stores, :mod:`repro.store.checkpoint` persists
BFS runs (frontier + visited dump + counters + configuration metadata)
so a killed exhaustive run resumes exactly where it stopped:
``python -m repro check --resume DIR``.
"""

from repro.store.base import (
    DEFAULT_MEM_CAP,
    BACKENDS,
    FingerprintStore,
    StoreConfig,
    StoreError,
    StoreFullError,
    require_cross_process_stable,
)
from repro.store.checkpoint import (
    CheckpointError,
    CheckpointIncompatible,
    RunCheckpointer,
    SweepCheckpoint,
    load_meta,
    read_u64_file,
    write_u64_file,
)
from repro.store.mmap_table import MmapStore
from repro.store.ram import RamStore
from repro.store.spill import SpillStore

__all__ = [
    "BACKENDS",
    "DEFAULT_MEM_CAP",
    "CheckpointError",
    "CheckpointIncompatible",
    "FingerprintStore",
    "MmapStore",
    "RamStore",
    "RunCheckpointer",
    "SpillStore",
    "StoreConfig",
    "StoreError",
    "StoreFullError",
    "SweepCheckpoint",
    "load_meta",
    "read_u64_file",
    "require_cross_process_stable",
    "write_u64_file",
]
