"""Mmap'd open-addressing table: a fixed-byte-cap visited set.

The table is one memory-mapped file of ``capacity`` unsigned 64-bit
slots (capacity = the largest power of two whose slots fit ``mem_cap``
bytes).  A key is placed by splitmix64 probing with linear scan; slot
value 0 means *empty* (the one key equal to 0 — possible only with
probability 2⁻⁶⁴ for fingerprints, never for reachable packed snapshot
states — is tracked by a side flag).  Python-object overhead per state
is zero: memory is the file's pages, which the OS caches and evicts,
and the byte cap is exact by construction.

The cap is a *contract*, not a hint: once the table passes its load
limit (87.5%, past which linear probing degrades sharply) the store
raises :class:`~repro.store.base.StoreFullError` instead of silently
growing — the spill backend is the right tool for sets that outgrow a
fixed table.
"""

from __future__ import annotations

import mmap
from pathlib import Path
from typing import Dict, Iterator, Optional

from repro.checker.fingerprint import splitmix64
from repro.store.base import FingerprintStore, StoreFullError, require_u64

_SLOT_BYTES = 8
#: Numerator/denominator of the maximum load factor (7/8).
_LOAD_NUM, _LOAD_DEN = 7, 8
_MIN_SLOTS = 1024


def _capacity_for(mem_cap: int) -> int:
    """Largest power-of-two slot count whose table fits ``mem_cap``."""
    slots = max(_MIN_SLOTS, mem_cap // _SLOT_BYTES)
    return 1 << (slots.bit_length() - 1)


class MmapStore(FingerprintStore):
    """Open-addressing u64 table over a memory-mapped file."""

    backend = "mmap"

    def __init__(self, directory: Path, mem_cap: int) -> None:
        self.capacity = _capacity_for(mem_cap)
        self._mask = self.capacity - 1
        self._limit = self.capacity * _LOAD_NUM // _LOAD_DEN
        self.path = Path(directory) / "table.u64"
        size = self.capacity * _SLOT_BYTES
        # A fresh table every run: resume re-populates from the
        # checkpoint dump, so stale slots must not survive.
        with open(self.path, "wb") as handle:
            handle.truncate(size)
        self._file = open(self.path, "r+b")
        self._map: Optional[mmap.mmap] = mmap.mmap(self._file.fileno(), size)
        self._slots = memoryview(self._map).cast("Q")
        self._count = 0
        self._has_zero = False
        self._probes = 0

    # ------------------------------------------------------------------
    def add(self, key: int) -> bool:
        require_u64(key)
        if key == 0:
            if self._has_zero:
                return False
            self._check_room()
            self._has_zero = True
            self._count += 1
            return True
        slots = self._slots
        mask = self._mask
        index = splitmix64(key) & mask
        probes = 1
        while True:
            value = slots[index]
            if value == key:
                self._probes += probes
                return False
            if value == 0:
                self._probes += probes
                self._check_room()
                slots[index] = key
                self._count += 1
                return True
            index = (index + 1) & mask
            probes += 1

    def __contains__(self, key: int) -> bool:
        require_u64(key)
        if key == 0:
            return self._has_zero
        slots = self._slots
        mask = self._mask
        index = splitmix64(key) & mask
        while True:
            value = slots[index]
            if value == key:
                return True
            if value == 0:
                return False
            index = (index + 1) & mask

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[int]:
        if self._has_zero:
            yield 0
        slots = self._slots
        for index in range(self.capacity):
            value = slots[index]
            if value:
                yield value

    # ------------------------------------------------------------------
    def _check_room(self) -> None:
        if self._count >= self._limit:
            raise StoreFullError(
                f"mmap table full: {self._count} keys at its"
                f" {_LOAD_NUM}/{_LOAD_DEN} load limit"
                f" (capacity {self.capacity} slots,"
                f" {self.capacity * _SLOT_BYTES} bytes) — raise --mem-cap"
                f" or switch to the spill backend (--store spill)"
            )

    def file_bytes(self) -> int:
        return self.capacity * _SLOT_BYTES

    def counters(self) -> Dict[str, int]:
        return {
            "entries": self._count,
            "capacity": self.capacity,
            "probes": self._probes,
        }

    def flush(self) -> None:
        if self._map is not None:
            self._map.flush()

    def close(self) -> None:
        if self._map is None:
            return
        self._slots.release()
        self._map.close()
        self._map = None
        self._file.close()
