"""Checkpoint/resume for long exploration runs.

A checkpoint is a *full dump* of the run at a BFS layer / cadence
boundary: the pending frontier, every visited key (streamed out of the
fingerprint store), and a counters snapshot — plus, once per run
directory, a ``meta.json`` recording the configuration the run was
started with (git SHA, wiring class, symmetry mode, budget, backend).
Dumping visited keys uniformly, rather than trusting each backend's
own files, keeps the on-disk format identical across backends and
makes a checkpoint valid even if the process dies halfway through the
*next* one.

Atomicity: a checkpoint is assembled in a ``ckpt-NNNNNN.tmp``
directory, renamed into place, and only then stamped with a ``COMMIT``
marker file; resume considers exclusively stamped directories, so a
SIGKILL at any instant leaves either the previous checkpoint or the
new one — never a torn mix.

Resume refuses incompatible configurations: every semantic ``meta``
field must match the resuming invocation (a run checkpointed with
symmetry reduction cannot be continued without it — the visited set
means something different).  A git-SHA mismatch is reported as a
warning only, since rebuilding state spaces across unrelated commits
is legitimate when the model itself did not change.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import subprocess
import warnings
from array import array
from itertools import chain
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Type, TypeVar

#: Keys buffered per ``tofile`` call when streaming u64 files.
_CHUNK = 4096
_COMMIT = "COMMIT"
_META = "meta.json"
_RESULT = "result.json"
#: Meta fields that may differ between checkpoint and resume without
#: invalidating the visited set (reported, not enforced).
ADVISORY_META_FIELDS = frozenset({"git_sha"})


class CheckpointError(RuntimeError):
    """A checkpoint directory is unusable (missing, torn, unreadable)."""


class CheckpointIncompatible(CheckpointError):
    """Resume was attempted with a configuration the checkpoint's
    visited set is not valid for."""


# ----------------------------------------------------------------------
# u64 array files — the frontier / visited wire format.


def write_u64_file(path: Path, keys: Iterable[int]) -> int:
    """Stream unsigned 64-bit ``keys`` to ``path``; return the count."""
    block = array("Q")
    count = 0
    with open(path, "wb") as handle:
        for key in keys:
            block.append(key)
            count += 1
            if len(block) == _CHUNK:
                block.tofile(handle)
                del block[:]
        if block:
            block.tofile(handle)
    return count


def read_u64_file(path: Path) -> "array[int]":
    """Read a u64 array file written by :func:`write_u64_file`."""
    values: "array[int]" = array("Q")
    size = Path(path).stat().st_size
    if size % 8:
        raise CheckpointError(f"{path} is torn: {size} bytes is not a u64 array")
    with open(path, "rb") as handle:
        values.fromfile(handle, size // 8)
    return values


def _write_json(path: Path, payload: Dict[str, Any]) -> None:
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    os.replace(tmp, path)


# ----------------------------------------------------------------------
# Run metadata.


def git_sha() -> Optional[str]:
    """The current commit, stamped into run metadata (None outside git)."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout.strip() or None


def load_meta(directory: Path) -> Optional[Dict[str, Any]]:
    """The ``meta.json`` of a checkpoint directory, or None if absent."""
    path = Path(directory) / _META
    if not path.exists():
        return None
    loaded = json.loads(path.read_text())
    if not isinstance(loaded, dict):
        raise CheckpointError(f"{path} does not hold a JSON object")
    return loaded


def check_meta_compatible(
    existing: Dict[str, Any], requested: Dict[str, Any]
) -> None:
    """Refuse resume when any semantic configuration field differs.

    The refusal message distinguishes the three ways metas diverge, so
    a cross-version resume reads as exactly that instead of a generic
    mismatch (or, before this existed, a raw ``KeyError``): keys only
    the checkpoint knows (written by a newer schema), keys only this
    invocation knows (the checkpoint predates them), and keys both know
    with different values.
    """
    unknown = sorted(
        field for field in existing
        if field not in requested and field not in ADVISORY_META_FIELDS
    )
    missing = sorted(
        field for field in requested
        if field not in existing and field not in ADVISORY_META_FIELDS
    )
    differing = sorted(
        field
        for field in set(existing) & set(requested)
        if field not in ADVISORY_META_FIELDS
        and existing[field] != requested[field]
    )
    if unknown or missing or differing:
        parts = []
        if unknown:
            parts.append(
                f"unknown keys recorded by the checkpoint (a newer config"
                f" schema?): {', '.join(unknown)}"
            )
        if missing:
            parts.append(
                f"keys this invocation requires that the checkpoint never"
                f" recorded: {', '.join(missing)}"
            )
        if differing:
            parts.append(
                "differing values: " + ", ".join(
                    f"{field}: checkpoint={existing.get(field)!r}"
                    f" requested={requested.get(field)!r}"
                    for field in differing
                )
            )
        raise CheckpointIncompatible(
            f"checkpoint configuration mismatch ({'; '.join(parts)}) — the"
            " stored visited set is only valid for the configuration that"
            " wrote it; start a fresh run directory instead"
        )
    for field in ADVISORY_META_FIELDS:
        if existing.get(field) != requested.get(field):
            warnings.warn(
                f"resuming a checkpoint written at {field}="
                f"{existing.get(field)!r} from {requested.get(field)!r};"
                " results are only comparable if the model is unchanged",
                stacklevel=2,
            )


_ResultT = TypeVar("_ResultT")


def load_result(cls: Type[_ResultT], payload: Dict[str, Any]) -> _ResultT:
    """Rebuild a result dataclass from a recorded dict, refusing drift.

    Recorded results (``result.json``, sweep ``classes.json``) written
    by a *newer* schema may carry fields this version has never heard
    of, and ones written by an *older* schema may lack fields this
    version requires; naively splatting the dict into the dataclass
    turns both into a bare ``TypeError``/``KeyError``.  Validate first
    and raise the documented config-compat refusal instead.  Fields the
    dataclass declares with defaults are optional, so resuming records
    from older (strictly smaller) schemas keeps working.
    """
    declared = {field.name: field for field in dataclasses.fields(cls)}  # type: ignore[arg-type]
    unknown = sorted(key for key in payload if key not in declared)
    missing = sorted(
        name
        for name, field in declared.items()
        if name not in payload
        and field.default is dataclasses.MISSING
        and field.default_factory is dataclasses.MISSING
    )
    if unknown or missing:
        parts = []
        if unknown:
            parts.append(
                f"unknown fields recorded by the checkpoint (a newer"
                f" config schema?): {', '.join(unknown)}"
            )
        if missing:
            parts.append(
                f"required fields the record lacks: {', '.join(missing)}"
            )
        raise CheckpointIncompatible(
            f"recorded {cls.__name__} does not match this version's"
            f" schema ({'; '.join(parts)}) — re-run from a fresh"
            " checkpoint directory (or a matching version) instead"
        )
    return cls(**payload)


# ----------------------------------------------------------------------
# Committed checkpoints.


class Checkpoint:
    """One committed checkpoint directory."""

    def __init__(self, directory: Path, seq: int) -> None:
        self.directory = Path(directory)
        self.seq = seq
        counters_path = self.directory / "counters.json"
        try:
            loaded = json.loads(counters_path.read_text())
        except OSError as exc:
            raise CheckpointError(
                f"checkpoint {self.directory} has no readable counters.json"
            ) from exc
        self.counters: Dict[str, Any] = dict(loaded)

    def counter(self, key: str, default: Optional[int] = None) -> int:
        """One counters.json entry, with the config-compat refusal.

        Resuming a checkpoint whose counters were written under a
        different (newer) schema used to die with a raw ``KeyError``
        deep in the engine; going through this accessor turns the
        missing key into the documented :class:`CheckpointIncompatible`
        message naming the key and the keys actually recorded.
        """
        if key in self.counters:
            return int(self.counters[key])
        if default is not None:
            return default
        recorded = ", ".join(sorted(self.counters)) or "none"
        raise CheckpointIncompatible(
            f"checkpoint {self.directory} records no {key!r} counter"
            f" (recorded: {recorded}) — it was written by an"
            " incompatible (newer?) config schema; start a fresh run"
            " directory instead"
        )

    def frontier(self, shard: Optional[int] = None) -> "array[int]":
        name = "frontier.u64" if shard is None else f"frontier-{shard:03d}.u64"
        return read_u64_file(self.directory / name)

    def visited_paths(self) -> List[Path]:
        return sorted(self.directory.glob("visited*.u64"))

    def visited(self) -> Iterator[int]:
        """Every visited key, streamed across all shard dump files."""
        return chain.from_iterable(
            read_u64_file(path) for path in self.visited_paths()
        )


class RunCheckpointer:
    """Writes and locates checkpoints for one exploration run.

    ``meta`` is the semantic configuration of the run; on an existing
    directory it is validated against the stored ``meta.json`` (see
    :func:`check_meta_compatible`) before anything else happens.
    """

    def __init__(
        self,
        directory: Path,
        meta: Dict[str, Any],
        every: int = 1_000_000,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.every = max(1, int(every))
        self.meta = dict(meta)
        self._last_admitted = 0
        existing = load_meta(self.directory)
        if existing is None:
            _write_json(self.directory / _META, self.meta)
        else:
            check_meta_compatible(existing, self.meta)

    # -- discovery -----------------------------------------------------
    def _committed_seqs(self) -> List[int]:
        seqs = []
        for entry in self.directory.glob("ckpt-*"):
            if not entry.is_dir() or entry.suffix == ".tmp":
                continue
            if not (entry / _COMMIT).exists():
                continue
            try:
                seqs.append(int(entry.name.split("-", 1)[1]))
            except ValueError:
                continue
        return sorted(seqs)

    def latest(self) -> Optional[Checkpoint]:
        """The newest committed checkpoint, or None for a fresh run."""
        seqs = self._committed_seqs()
        if not seqs:
            return None
        seq = seqs[-1]
        checkpoint = Checkpoint(self.directory / f"ckpt-{seq:06d}", seq)
        self._last_admitted = int(checkpoint.counters.get("admitted", 0))
        return checkpoint

    def completed_result(self) -> Optional[Dict[str, Any]]:
        """The final result of a run that already finished, if any."""
        path = self.directory / _RESULT
        if not path.exists():
            return None
        loaded = json.loads(path.read_text())
        return dict(loaded)

    # -- cadence -------------------------------------------------------
    def due(self, admitted: int) -> bool:
        """True once ``every`` new states were admitted since the last
        checkpoint (or since the run/resume started)."""
        return admitted - self._last_admitted >= self.every

    # -- writing -------------------------------------------------------
    def begin(self) -> Path:
        """Open a staging directory for the next checkpoint's files."""
        seqs = self._committed_seqs()
        seq = (seqs[-1] + 1) if seqs else 0
        tmp = self.directory / f"ckpt-{seq:06d}.tmp"
        if tmp.exists():
            shutil.rmtree(tmp)
        tmp.mkdir()
        return tmp

    def commit(self, staging: Path, counters: Dict[str, Any]) -> Checkpoint:
        """Seal ``staging``: counters, rename, COMMIT stamp, prune old."""
        _write_json(staging / "counters.json", dict(counters))
        final = staging.with_suffix("")
        seq = int(final.name.split("-", 1)[1])
        if final.exists():  # pragma: no cover - only after manual tampering
            shutil.rmtree(final)
        os.replace(staging, final)
        (final / _COMMIT).touch()
        for old_seq in self._committed_seqs():
            if old_seq < seq:
                shutil.rmtree(
                    self.directory / f"ckpt-{old_seq:06d}", ignore_errors=True
                )
        self._last_admitted = int(counters.get("admitted", 0))
        return Checkpoint(final, seq)

    def write(
        self,
        frontier: Iterable[int],
        counters: Dict[str, Any],
        visited: Iterable[int],
    ) -> Checkpoint:
        """One-call checkpoint for the serial engines."""
        staging = self.begin()
        write_u64_file(staging / "frontier.u64", frontier)
        write_u64_file(staging / "visited.u64", visited)
        return self.commit(staging, counters)

    def mark_complete(self, result: Dict[str, Any]) -> None:
        """Record the finished run's verdict; resume then short-circuits."""
        _write_json(self.directory / _RESULT, dict(result))


class SweepCheckpoint:
    """Per-class progress of a multi-class sweep (``classes.json``).

    The class-parallel pool records each wiring class's finished result
    as it lands; a resumed sweep replays recorded classes from disk and
    explores only the remainder.  ``meta`` (when given) is validated
    against the directory's ``meta.json`` exactly like
    :class:`RunCheckpointer` — replaying class results recorded under a
    different budget/symmetry/fingerprint configuration would silently
    mix incomparable runs.
    """

    def __init__(
        self, directory: Path, meta: Optional[Dict[str, Any]] = None
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        if meta is not None:
            existing = load_meta(self.directory)
            if existing is None:
                _write_json(self.directory / _META, dict(meta))
            else:
                check_meta_compatible(existing, dict(meta))
        self.path = self.directory / "classes.json"
        self._results: Dict[str, Dict[str, Any]] = {}
        if self.path.exists():
            loaded = json.loads(self.path.read_text())
            self._results = {str(k): dict(v) for k, v in loaded.items()}

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        return self._results.get(key)

    def record(self, key: str, result: Dict[str, Any]) -> None:
        self._results[key] = dict(result)
        _write_json(self.path, self._results)

    @property
    def results(self) -> Dict[str, Dict[str, Any]]:
        return dict(self._results)
