"""The in-RAM backend: the engines' original visited set, extracted.

Semantics are exactly the pre-store engines': a Python ``set`` of keys,
one entry per distinct state, memory proportional to the number of
states.  The only addition is the one-call :meth:`RamStore.add`
(membership test + insert fused), bound as an instance closure so the
hot loop pays a single call per generated transition instead of the
historical ``in`` + ``.add`` pair.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Sequence, Set

from repro.store.base import FingerprintStore


class RamStore(FingerprintStore):
    """Exact in-memory set; accepts integers of any width."""

    backend = "ram"

    def __init__(self) -> None:
        self._set: Set[int] = set()
        # Hot-path fusion: one closure call per transition.  The
        # closure captures the set and its bound ``add`` directly, so
        # no ``self`` attribute lookups happen per call.
        _set = self._set
        _add = self._set.add

        def add(key: int) -> bool:
            if key in _set:
                return False
            _add(key)
            return True

        self.add: Callable[[int], bool] = add  # type: ignore[method-assign]

    @property
    def raw_set(self) -> Set[int]:
        """The underlying set, for engine fast paths that inline ops."""
        return self._set

    def add(self, key: int) -> bool:  # pragma: no cover - shadowed in __init__
        if key in self._set:
            return False
        self._set.add(key)
        return True

    def __contains__(self, key: int) -> bool:
        return key in self._set

    def contains_many(self, keys: Sequence[int]) -> List[bool]:
        _set = self._set
        return [key in _set for key in keys]

    def add_many(self, keys: Sequence[int]) -> int:
        _set = self._set
        before = len(_set)
        _set.update(keys)
        return len(_set) - before

    def __len__(self) -> int:
        return len(self._set)

    def __iter__(self) -> Iterator[int]:
        # Sorted: set iteration order over ints is insertion/hash
        # dependent; checkpoint dumps must be deterministic artifacts.
        return iter(sorted(self._set))

    def counters(self) -> Dict[str, int]:
        return {"entries": len(self._set)}
