"""The fingerprint-store interface and its picklable configuration.

A :class:`FingerprintStore` is an exact set of unsigned integers — the
64-bit fingerprints (or ≤64-bit packed states) the exploration engines
deduplicate on.  The contract every backend honours:

- :meth:`FingerprintStore.add` inserts and reports newness in one call
  (the hot-path operation: one call per generated transition);
- membership is *exact* — a backend may use probabilistic structures
  only to short-circuit misses, never to answer "present";
- :meth:`FingerprintStore.__iter__` streams every stored key, which is
  what checkpointing dumps and resume reloads;
- behaviour is deterministic: two identical runs against the same
  backend produce identical results, and all backends produce identical
  exploration counts (tested exhaustively for N=2).

:class:`StoreConfig` is the frozen, picklable description engines and
worker processes share; :meth:`StoreConfig.create` builds the actual
backend (optionally namespaced per shard / per wiring class).
"""

from __future__ import annotations

import tempfile
from abc import ABC, abstractmethod
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Maximum key width the disk-backed stores accept: one table slot /
#: run entry is a raw unsigned 64-bit word.
KEY_BITS = 64
KEY_LIMIT = 1 << KEY_BITS

#: Default total memory budget for the capped backends (bytes).
DEFAULT_MEM_CAP = 64 * 1024 * 1024

#: The recognised backend names, in CLI order.
BACKENDS: Tuple[str, ...] = ("ram", "mmap", "spill")


class StoreError(ValueError):
    """A store was misused (bad key, bad configuration, bad backend)."""


class StoreFullError(StoreError):
    """A fixed-capacity store ran out of room.

    Raised by :class:`~repro.store.mmap_table.MmapStore` when the open
    -addressing table exceeds its load limit: the mmap backend trades
    unbounded growth for a hard byte cap, and the spill backend is the
    escape hatch for sets that outgrow it.
    """


def require_u64(key: int) -> int:
    """Validate a key for the disk-backed stores (raw 64-bit slots)."""
    if key < 0 or key >= KEY_LIMIT:
        raise StoreError(
            f"disk-backed stores hold raw 64-bit words; key has"
            f" {key.bit_length()} bits — fingerprint the state first"
            f" (--fingerprint) for state encodings wider than 64 bits"
        )
    return key


def require_cross_process_stable(fingerprint_fn: Callable[..., int]) -> None:
    """Refuse per-interpreter fingerprints for cross-process storage.

    ``fingerprint_state`` builds on ``hash()``, which Python randomizes
    per interpreter: digests from one process are meaningless in
    another, so sharding by them across workers or persisting them for
    resume would silently mis-shard / mis-deduplicate.  Everything that
    moves fingerprints across process boundaries calls this first and
    fails loudly instead.
    """
    # Imported lazily: repro.checker's package __init__ pulls in the
    # engines, which import this module — a top-level import here would
    # close the cycle.
    from repro.checker.fingerprint import is_cross_process_stable

    if not is_cross_process_stable(fingerprint_fn):
        name = getattr(fingerprint_fn, "__name__", repr(fingerprint_fn))
        raise StoreError(
            f"{name} digests are randomized per interpreter (PYTHONHASHSEED),"
            " so they cannot be sharded across worker processes or persisted"
            " for resume — use the deterministic fingerprint_int (the packed"
            "-integer engines) for cross-process runs"
        )


class FingerprintStore(ABC):
    """An exact, deterministic set of unsigned-integer state keys."""

    #: Backend name, matching :data:`BACKENDS`.
    backend: str = "abstract"

    @abstractmethod
    def add(self, key: int) -> bool:
        """Insert ``key``; return True iff it was not already present."""

    @abstractmethod
    def __contains__(self, key: int) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def __iter__(self) -> Iterator[int]:
        """Stream every stored key (order unspecified but deterministic)."""

    def load(self, keys: Iterable[int]) -> int:
        """Bulk-insert (checkpoint resume); returns the number added."""
        added = 0
        for key in keys:
            if self.add(key):
                added += 1
        return added

    def contains_many(self, keys: Sequence[int]) -> List[bool]:
        """Membership for a whole batch: ``[key in self for key in keys]``.

        The level-batched engine (:mod:`repro.checker.batch`) probes a
        whole BFS level in one call.  This default just loops the
        scalar ``__contains__``, so every backend supports the batch
        engine from day one; backends with a cheaper bulk structure
        (the spill store's sorted runs) override it.
        """
        return [key in self for key in keys]

    def add_many(self, keys: Sequence[int]) -> int:
        """Insert a whole batch; returns the number newly added.

        Same contract as calling :meth:`add` per key, in order — the
        default does exactly that.  Callers that pre-deduplicate (the
        batch engine admits only keys its level dedup proved new) still
        get exact semantics from backends that re-check membership.
        """
        added = 0
        add = self.add
        for key in keys:
            if add(key):
                added += 1
        return added

    def file_bytes(self) -> int:
        """Bytes this store currently occupies on disk (0 for RAM)."""
        return 0

    def counters(self) -> Dict[str, int]:
        """Backend-specific operation counters for reports/benchmarks."""
        return {}

    def flush(self) -> None:
        """Push any buffered state toward its backing file (no-op in RAM)."""

    def close(self) -> None:
        """Release files/maps; the store must not be used afterwards."""


@dataclass(frozen=True)
class StoreConfig:
    """Picklable description of a fingerprint-store backend.

    ``directory`` is required by the disk-backed backends; when omitted
    they fall back to a fresh temporary directory (fine for one-shot
    runs, useless for resume — checkpointing requires an explicit
    directory).  ``mem_cap`` is the backend's total memory budget in
    bytes: the mmap table's file size, the spill store's RAM envelope
    (buffer + Bloom filter + run indexes).  ``merge_jobs`` lets the
    spill backend consolidate sorted runs with a worker pool (0/1 =
    serial; the parallel path kicks in only for large merges and falls
    back to serial inside daemonic worker processes).
    """

    backend: str = "ram"
    directory: Optional[str] = None
    mem_cap: int = DEFAULT_MEM_CAP
    merge_jobs: int = 0

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise StoreError(
                f"unknown store backend {self.backend!r};"
                f" choose one of {', '.join(BACKENDS)}"
            )
        if self.mem_cap <= 0:
            raise StoreError("mem_cap must be a positive byte count")
        if self.merge_jobs < 0:
            raise StoreError("merge_jobs must be >= 0 (0/1 = serial merge)")

    def resolve_directory(self, shard: Optional[str] = None) -> Optional[Path]:
        """The directory a store instance should use (created if needed)."""
        if self.backend == "ram":
            return None
        if self.directory is None:
            base = Path(tempfile.mkdtemp(prefix="repro-store-"))
        else:
            base = Path(self.directory)
        if shard is not None:
            base = base / shard
        base.mkdir(parents=True, exist_ok=True)
        return base

    def create(self, shard: Optional[str] = None) -> FingerprintStore:
        """Build the configured backend (namespaced under ``shard``)."""
        from repro.store.mmap_table import MmapStore
        from repro.store.ram import RamStore
        from repro.store.spill import SpillStore

        directory = self.resolve_directory(shard)
        if self.backend == "ram":
            return RamStore()
        assert directory is not None
        if self.backend == "mmap":
            return MmapStore(directory, mem_cap=self.mem_cap)
        return SpillStore(
            directory, mem_cap=self.mem_cap, merge_jobs=self.merge_jobs
        )
