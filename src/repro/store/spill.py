"""Append-only spill store: TLC's disk trade for unbounded state sets.

Keys live in a bounded in-RAM buffer; when the buffer fills it is
sorted and *spilled* to an on-disk run file, and once enough runs
accumulate they are merged into one (a classic sorted-run / LSM
scheme, the design TLC's ``DiskFPSet`` uses).  Because every key is
membership-checked before entering the buffer, runs are pairwise
disjoint and no key is ever stored twice.

RAM usage is bounded by construction whatever the number of visited
states: the buffer holds at most ``buffer_limit`` keys, the Bloom
filter (which short-circuits lookups of never-spilled keys — the
overwhelmingly common case on BFS frontiers) is a fixed bytearray, and
the per-run sparse indexes keep one key per 512-entry block (8 bytes
of index per 4 KiB of run).  Lookups that survive the Bloom filter
binary-search the sparse index and read a single 4 KiB block.

Membership stays *exact*: the Bloom filter only proves absence; any
"maybe" is resolved against the run files themselves.
"""

from __future__ import annotations

import heapq
import multiprocessing
import time
from array import array
from bisect import bisect_right, bisect_left
from pathlib import Path
from typing import (
    BinaryIO,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.checker.fingerprint import splitmix64
from repro.store.base import FingerprintStore, require_u64

#: Keys per run block; one block (4 KiB) is the unit of disk lookup IO.
_BLOCK = 512
_BLOCK_BYTES = _BLOCK * 8
#: Merge all runs into one once this many have accumulated.
_MERGE_AT = 6
#: Bloom probes per key.
_BLOOM_PROBES = 3
_MIN_BUFFER = 1024
#: Conservative bytes-per-entry estimate for a Python set of 64-bit
#: ints (set slot + int object, at worst-case load factor).
_ENTRY_COST = 120
#: Parallel merges only pay off past this many total keys; below it the
#: fork + IPC cost of a worker pool dwarfs the merge itself.
_PARALLEL_MERGE_MIN = 1_000_000


class _Run:
    """One immutable sorted run file with its in-RAM sparse index."""

    def __init__(self, path: Path, index: List[int], count: int) -> None:
        self.path = path
        self.index = index
        self.count = count
        self._handle: Optional[BinaryIO] = None

    def _file(self) -> BinaryIO:
        if self._handle is None:
            self._handle = open(self.path, "rb")
        return self._handle

    def read_block(self, block: int) -> "array[int]":
        handle = self._file()
        handle.seek(block * _BLOCK_BYTES)
        data = handle.read(_BLOCK_BYTES)
        values: "array[int]" = array("Q")
        values.frombytes(data)
        return values

    def contains(self, key: int) -> bool:
        block = bisect_right(self.index, key) - 1
        if block < 0:
            return False
        values = self.read_block(block)
        position = bisect_left(values, key)
        return position < len(values) and values[position] == key

    def __iter__(self) -> Iterator[int]:
        blocks = (self.count + _BLOCK - 1) // _BLOCK
        for block in range(blocks):
            yield from self.read_block(block)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def unlink(self) -> None:
        self.close()
        self.path.unlink(missing_ok=True)


def _write_run(path: Path, keys: Iterator[int]) -> _Run:
    """Stream sorted ``keys`` into a run file, building its index."""
    index: List[int] = []
    count = 0
    block = array("Q")
    with open(path, "wb") as handle:
        for key in keys:
            if count % _BLOCK == 0:
                index.append(key)
            block.append(key)
            count += 1
            if len(block) == _BLOCK:
                block.tofile(handle)
                del block[:]
        if block:
            block.tofile(handle)
    return _Run(path, index, count)


def _run_slice(run: _Run, lo: int, hi: Optional[int]) -> Iterator[int]:
    """Stream a run's keys in ``[lo, hi)`` (``hi=None`` = unbounded).

    The sparse index positions the scan at the first block that can
    contain ``lo``, so a slice reads only the blocks it overlaps.
    """
    block = max(0, bisect_right(run.index, lo) - 1)
    blocks = (run.count + _BLOCK - 1) // _BLOCK
    for position in range(block, blocks):
        for key in run.read_block(position):
            if key < lo:
                continue
            if hi is not None and key >= hi:
                return
            yield key


def _merge_partition(
    task: Tuple[
        List[Tuple[str, List[int], int]], int, Optional[int], str
    ],
) -> Tuple[str, List[int], int]:
    """Worker: merge one key range of every run into a partition file.

    Runs are pairwise disjoint, so the merge is a pure interleave; the
    reply carries the new run's sparse index so the parent never has to
    re-read the file.
    """
    run_specs, lo, hi, out_path = task
    runs = [
        _Run(Path(path), index, count) for path, index, count in run_specs
    ]
    try:
        merged = _write_run(
            Path(out_path),
            iter(heapq.merge(*(_run_slice(run, lo, hi) for run in runs))),
        )
    finally:
        for run in runs:
            run.close()
    return str(merged.path), merged.index, merged.count


class SpillStore(FingerprintStore):
    """Bounded-RAM exact set backed by sorted on-disk runs."""

    backend = "spill"

    def __init__(
        self, directory: Path, mem_cap: int, merge_jobs: int = 0
    ) -> None:
        self.directory = Path(directory)
        self.mem_cap = mem_cap
        self.merge_jobs = merge_jobs
        # RAM envelope: roughly half the cap for the buffer, a fixed
        # sixteenth for the Bloom filter, the rest headroom for run
        # indexes and interpreter slack.
        self.buffer_limit = max(_MIN_BUFFER, (mem_cap // 2) // _ENTRY_COST)
        bloom_bytes = max(4096, mem_cap // 16)
        self._bloom = bytearray(bloom_bytes)
        self._bloom_bits = bloom_bytes * 8
        self._buffer: Set[int] = set()
        self._runs: List[_Run] = []
        self._spilled = 0
        self._next_run = 0
        self._spills = 0
        self._merges = 0
        self._merge_wall_ms = 0
        self._disk_probes = 0
        self._bloom_skips = 0

    # ------------------------------------------------------------------
    def _bloom_positions(self, key: int) -> Iterator[int]:
        mixed = splitmix64(key ^ 0xA5A5A5A5A5A5A5A5)
        for _ in range(_BLOOM_PROBES):
            yield mixed % self._bloom_bits
            mixed = splitmix64(mixed)

    def _bloom_add(self, key: int) -> None:
        for position in self._bloom_positions(key):
            self._bloom[position >> 3] |= 1 << (position & 7)

    def _bloom_maybe(self, key: int) -> bool:
        for position in self._bloom_positions(key):
            if not self._bloom[position >> 3] & (1 << (position & 7)):
                return False
        return True

    def _on_disk(self, key: int) -> bool:
        if not self._runs:
            return False
        if not self._bloom_maybe(key):
            self._bloom_skips += 1
            return False
        for run in self._runs:
            self._disk_probes += 1
            if run.contains(key):
                return True
        return False

    # ------------------------------------------------------------------
    def add(self, key: int) -> bool:
        require_u64(key)
        if key in self._buffer or self._on_disk(key):
            return False
        self._buffer.add(key)
        if len(self._buffer) >= self.buffer_limit:
            self._spill()
        return True

    def __contains__(self, key: int) -> bool:
        require_u64(key)
        return key in self._buffer or self._on_disk(key)

    def contains_many(self, keys: Sequence[int]) -> List[bool]:
        """Bulk membership, resolved run by run with block reuse.

        Keys are screened against the buffer and the Bloom filter
        first; the survivors are then visited in *sorted* order per
        run, so consecutive keys landing in the same 512-key block
        share one disk read.  A whole sorted BFS level (the batch
        engine's probe unit) costs each run at most one streaming pass
        instead of one random block read per key.
        """
        buffer = self._buffer
        out = [False] * len(keys)
        pending: List[Tuple[int, int]] = []
        have_runs = bool(self._runs)
        for position, key in enumerate(keys):
            require_u64(key)
            if key in buffer:
                out[position] = True
            elif have_runs:
                if self._bloom_maybe(key):
                    pending.append((key, position))
                else:
                    self._bloom_skips += 1
        if not pending:
            return out
        pending.sort()
        for run in self._runs:
            index = run.index
            cached_block = -1
            values: Optional["array[int]"] = None
            for key, position in pending:
                if out[position]:
                    continue
                block = bisect_right(index, key) - 1
                if block < 0:
                    continue
                if block != cached_block:
                    values = run.read_block(block)
                    cached_block = block
                    self._disk_probes += 1
                assert values is not None
                at = bisect_left(values, key)
                if at < len(values) and values[at] == key:
                    out[position] = True
        return out

    def add_many(self, keys: Sequence[int]) -> int:
        """Bulk insert; a large batch of new keys becomes a run directly.

        Membership for the whole batch is resolved by
        :meth:`contains_many` (one streaming pass per run), and when
        the fresh keys alone would overflow the RAM buffer they are
        written straight to disk as one sorted run file — the natively
        -sorted path the run format is built around — instead of
        churning through repeated buffer spills.  Fresh keys are by
        construction absent from the buffer and every run, so runs
        stay pairwise disjoint.
        """
        distinct = sorted(set(keys))
        if not distinct:
            return 0
        present = self.contains_many(distinct)
        fresh = [key for key, seen in zip(distinct, present) if not seen]
        if not fresh:
            return 0
        buffered = len(self._buffer)
        if buffered + len(fresh) >= self.buffer_limit and len(fresh) >= _BLOCK:
            self._write_sorted_run(fresh)
        else:
            self._buffer.update(fresh)
            if len(self._buffer) >= self.buffer_limit:
                self._spill()
        return len(fresh)

    def __len__(self) -> int:
        return len(self._buffer) + self._spilled

    def __iter__(self) -> Iterator[int]:
        """Stream all keys in ascending order (runs are disjoint)."""
        sources: List[Iterator[int]] = [iter(run) for run in self._runs]
        if self._buffer:
            sources.append(iter(sorted(self._buffer)))
        return heapq.merge(*sources)

    # ------------------------------------------------------------------
    def _spill(self) -> None:
        keys = sorted(self._buffer)
        self._buffer.clear()
        self._write_sorted_run(keys)

    def _write_sorted_run(self, keys: List[int]) -> None:
        """Persist sorted, store-disjoint ``keys`` as one new run."""
        path = self.directory / f"run-{self._next_run:06d}.u64"
        self._next_run += 1
        run = _write_run(path, iter(keys))
        for key in keys:
            self._bloom_add(key)
        self._runs.append(run)
        self._spilled += len(keys)
        self._spills += 1
        # A parallel merge leaves one run per partition instead of one,
        # so its trigger scales by the partition count — each merge
        # cycle absorbs the same number of spills as the serial scheme.
        partitions = self.merge_jobs if self.merge_jobs > 1 else 1
        if len(self._runs) >= _MERGE_AT + (partitions - 1):
            self._merge()

    def _merge(self) -> None:
        """Consolidate runs (disjoint keys: a pure interleave).

        Serial merges produce one run; large merges with
        ``merge_jobs > 1`` split the key space at sparse-index
        quantiles and merge the ranges concurrently, leaving one run
        per partition (ranges are disjoint and ordered, so lookups and
        iteration are unchanged).
        """
        start = time.monotonic()
        merged = self._merge_parallel() if self._use_parallel_merge() else None
        if merged is None:
            path = self.directory / f"run-{self._next_run:06d}.u64"
            self._next_run += 1
            merged = [_write_run(path, iter(heapq.merge(*self._runs)))]
        for run in self._runs:
            run.unlink()
        self._runs = merged
        self._merges += 1
        self._merge_wall_ms += int((time.monotonic() - start) * 1000)

    def _use_parallel_merge(self) -> bool:
        if self.merge_jobs <= 1:
            return False
        if sum(run.count for run in self._runs) < _PARALLEL_MERGE_MIN:
            return False
        # Daemonic processes (exploration shard workers) cannot fork
        # children of their own; their merges stay serial.
        return not multiprocessing.current_process().daemon

    def _merge_parallel(self) -> Optional[List[_Run]]:
        """Merge runs partition-parallel; ``None`` falls back to serial.

        Split points come from the runs' sparse indexes — every index
        entry is the first key of a 512-key block, so quantiles of the
        concatenated indexes balance the partitions to within a block
        per run without reading any run data.
        """
        pivots = sorted(key for run in self._runs for key in run.index)
        jobs = min(self.merge_jobs, max(1, len(pivots)))
        splits = sorted(
            {pivots[(i * len(pivots)) // jobs] for i in range(1, jobs)}
        )
        bounds = [0] + splits
        run_specs = [
            (str(run.path), run.index, run.count) for run in self._runs
        ]
        tasks = []
        for position, lo in enumerate(bounds):
            hi = (
                bounds[position + 1] if position + 1 < len(bounds) else None
            )
            path = self.directory / f"run-{self._next_run:06d}.u64"
            self._next_run += 1
            tasks.append((run_specs, lo, hi, str(path)))
        if len(tasks) <= 1:
            return None
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX platforms
            ctx = multiprocessing.get_context()
        try:
            pool = ctx.Pool(processes=min(len(tasks), self.merge_jobs))
        except OSError:  # pragma: no cover - fork-less hosts
            return None
        with pool:
            outputs = pool.map(_merge_partition, tasks, chunksize=1)
        merged: List[_Run] = []
        for path, index, count in outputs:
            if count:
                merged.append(_Run(Path(path), index, count))
            else:  # degenerate quantile: an empty range leaves no run
                Path(path).unlink(missing_ok=True)
        return merged

    # ------------------------------------------------------------------
    def file_bytes(self) -> int:
        return sum(run.count * 8 for run in self._runs)

    def counters(self) -> Dict[str, int]:
        return {
            "entries": len(self),
            "runs": len(self._runs),
            "spills": self._spills,
            "merges": self._merges,
            "merge_wall_ms": self._merge_wall_ms,
            "disk_probes": self._disk_probes,
            "bloom_skips": self._bloom_skips,
        }

    def close(self) -> None:
        for run in self._runs:
            run.close()
