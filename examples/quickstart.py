"""Quickstart: the three tasks of the paper in a dozen lines each.

Run:  python examples/quickstart.py

Everything below runs in the fully-anonymous model: the processors are
identical programs distinguished only by their private inputs, and each
one addresses the shared registers through its own hidden permutation.
"""

from repro import run_consensus, run_renaming, run_snapshot


def show(title: str) -> None:
    print()
    print(title)
    print("-" * len(title))


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The snapshot task (Figure 3) — wait-free.
    # ------------------------------------------------------------------
    show("Snapshot task: 5 anonymous processors, 5 anonymous registers")
    result = run_snapshot(inputs=["red", "green", "blue", "cyan", "teal"], seed=2024)
    for pid, snapshot in sorted(result.outputs.items()):
        print(f"  processor {pid} snapshot: {sorted(snapshot)}")
    print("  (every two snapshots are related by containment)")

    # ------------------------------------------------------------------
    # 2. Adaptive renaming (Figure 4) — names in 1..M(M+1)/2 for M groups.
    # ------------------------------------------------------------------
    show("Adaptive renaming: 6 processors in 3 groups")
    group_ids = [1, 2, 3, 1, 2, 3]
    result = run_renaming(group_ids, seed=7)
    for pid, name in sorted(result.outputs.items()):
        print(f"  processor {pid} (group {group_ids[pid]}) -> name {name}")
    bound = 3 * 4 // 2
    print(f"  (names stay within 1..{bound}; same-group processors may share)")

    # ------------------------------------------------------------------
    # 3. Obstruction-free consensus (Figure 5).
    # ------------------------------------------------------------------
    show("Consensus: 4 processors proposing 2 values")
    result = run_consensus(["apple", "pear", "apple", "pear"], seed=99)
    decisions = sorted(set(result.outputs.values()))
    print(f"  decisions: {result.outputs}")
    print(f"  agreement on: {decisions[0] if decisions else '(undecided)'}")


if __name__ == "__main__":
    main()
