"""The eventual pattern: Figure 2, its extension, and Theorem 4.8 live.

Run:  python examples/eventual_pattern_demo.py

Reproduces the paper's Section 4 story end to end:

1. replays the pathological execution of Figure 2 and prints the
   13-row table exactly as in the paper;
2. certifies (by state-repetition detection) that rows 5-13 repeat
   forever, computes the exact stable views, and prints the stable-view
   graph — a DAG with the unique source {1};
3. runs the five-processor extension in which p and p' read constant,
   incomparable collects ad infinitum, refuting the double-collect
   termination rule;
4. samples random periodic schedules and confirms Theorem 4.8 on each.
"""

import random

from repro.analysis import stable_view_graph_from_lasso
from repro.baselines import double_collect_outputs_from_trace
from repro.core import WriteScanMachine
from repro.memory import AnonymousMemory, WiringAssignment
from repro.sim import MachineProcess, PeriodicScheduler, Runner
from repro.sim.scripted import (
    FIGURE2_N_REGISTERS,
    build_extension_runner,
    build_figure2_runner,
    figure2_observed_rows,
    format_figure2_table,
)


def main() -> None:
    print("=" * 72)
    print("1. Figure 2, reproduced")
    print("=" * 72)
    rows = figure2_observed_rows()
    print(format_figure2_table(rows))

    print()
    print("=" * 72)
    print("2. The repetition is real: lasso certification + stable views")
    print("=" * 72)
    runner = build_figure2_runner(detect_lasso=True)
    result = runner.run(100_000)
    lasso = result.lasso
    print(f"state repeats: prefix={lasso.prefix_length} steps,"
          f" cycle={lasso.cycle_length} steps, live pids={lasso.cycle_pids}")
    graph = stable_view_graph_from_lasso(result)
    print("stable-view graph:", graph.describe())
    assert graph.is_dag() and graph.has_unique_source()

    print()
    print("=" * 72)
    print("3. Five-processor extension: double collect refuted")
    print("=" * 72)
    runner = build_extension_runner(n_cycles=12, detect_lasso=True)
    result = runner.run(10 ** 6)
    print(f"lasso: cycle={result.lasso.cycle_length} steps,"
          f" live pids={result.lasso.cycle_pids}")
    outputs = double_collect_outputs_from_trace(
        result.trace, FIGURE2_N_REGISTERS
    )
    p_out, p_prime_out = outputs[3], outputs[4]
    print(f"double-collect rule would output: p -> {sorted(p_out)},"
          f" p' -> {sorted(p_prime_out)}")
    print("incomparable:", not (p_out <= p_prime_out or p_prime_out <= p_out))

    print()
    print("=" * 72)
    print("4. Theorem 4.8 on random periodic schedules")
    print("=" * 72)
    rng = random.Random(4)
    for trial in range(8):
        n = rng.randint(2, 5)
        machine = WriteScanMachine(n)
        wiring = WiringAssignment.random(n, n, rng)
        memory = AnonymousMemory(wiring, machine.register_initial_value())
        processes = [MachineProcess(pid, machine, pid + 1) for pid in range(n)]
        pattern = [rng.randrange(n) for _ in range(rng.randint(1, 3 * n))]
        run = Runner(
            memory, processes, PeriodicScheduler(pattern), detect_lasso=True
        ).run(2_000_000)
        graph = stable_view_graph_from_lasso(run)
        status = "DAG+unique-source" if (
            graph.is_dag() and graph.has_unique_source()
        ) else "VIOLATION"
        print(f"  trial {trial}: N={n} pattern={pattern} -> "
              f"{len(graph.vertices)} stable views, {status}")


if __name__ == "__main__":
    main()
