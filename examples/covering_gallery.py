"""A visual tour of coverings: watch writes erase each other.

Run:  python examples/covering_gallery.py

The paper is about *coverings* — writes poised or landing on registers
in ways that erase information before anyone reads it.  This gallery
renders three executions as ASCII timelines (one lane per processor,
one history row per register; `✗` marks a value that was overwritten
before any other processor read it):

1. the Figure 2 churn — the canonical erasure cycle;
2. the §2.1 lower-bound execution — N-1 poised writes wiping a solo
   processor's entire trace;
3. the non-linearizable final scan — the covering choreography that
   keeps the memory union different from a snapshot output throughout
   the scan that produced it.
"""

from repro.analysis import (
    collect_statistics,
    erasure_summary,
    render_lanes,
    render_register_history,
)
from repro.core import SnapshotMachine
from repro.sim.adversaries import run_covering_execution
from repro.sim.non_linearizable import build_non_linearizable_scan_demo
from repro.sim.scripted import build_figure2_runner


def section(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def main() -> None:
    section("1. Figure 2 churn: values erased before anyone reads them")
    runner = build_figure2_runner(n_cycles=2)
    result = runner.run(10 ** 6)
    print(render_lanes(result.trace, max_events=40))
    print()
    print(render_register_history(result.trace, 3, max_entries_per_register=9))
    stats = collect_statistics(result.trace)
    print(f"\n{stats.unread_overwrites} values erased unread"
          f" ({stats.cross_overwrites} cross-processor overwrites total)")

    section("2. The §2.1 lower bound: poised writes wipe a processor")
    outcome = run_covering_execution(
        SnapshotMachine(4, n_registers=3), inputs=[1, 2, 3, 4]
    )
    # The trace lives in the runner's memory; re-run to render it.
    print("memory after p's solo run:   "
          + "  ".join(str(r) for r in outcome.memory_after_solo))
    print("memory after the coverings:  "
          + "  ".join(str(r) for r in outcome.memory_after_covering))
    print(f"p's output {sorted(outcome.solo_output)} rests on information"
          f" that no longer exists anywhere")

    section("3. The non-linearizable scan: a token always one step ahead")
    demo = build_non_linearizable_scan_demo()
    trace = demo.runner.memory.trace
    print(render_lanes(trace, max_events=64))
    print()
    print(render_register_history(trace, 3, max_entries_per_register=14))
    print(f"\nwitness output: {sorted(demo.output)}; memory union during"
          f" its final scan: {sorted(demo.unions_during_final_scan[0])}"
          f" at every instant")
    print("erasures per register:",
          erasure_summary(trace, 3))


if __name__ == "__main__":
    main()
