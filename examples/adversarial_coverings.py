"""The Section 2.1 lower bound, live: coverings erase information.

Run:  python examples/adversarial_coverings.py

With fewer than N registers, an adversary can (1) bring every processor
but one to the brink of its first write, with the poised writes covering
all registers, (2) let the remaining processor p run solo to completion,
and (3) release the poised writes — wiping every trace of p from the
shared memory.  Twin executions differing only in p's input are then
bit-for-bit indistinguishable to everyone else: no non-trivial read-write
coordination is possible below N registers.

The demo runs the construction against the paper's own snapshot
algorithm, shows the before/after memory, verifies indistinguishability,
and then shows the resulting snapshot-task violation — and that with the
full N registers the erasure no longer works.
"""

from repro.core import SnapshotMachine
from repro.sim.adversaries import demonstrate_erasure, run_covering_execution


def print_memory(label, memory):
    print(f"  {label}: " + "  ".join(str(record) for record in memory))


def main() -> None:
    n = 4
    print(f"{n} processors, {n - 1} registers (below the lower bound)")
    print("=" * 64)

    demo = demonstrate_erasure(
        lambda: SnapshotMachine(n, n_registers=n - 1),
        inputs=[1, 2, 3, 4],
        alternate_input=99,
    )

    print("Run A: p has input 1")
    print_memory("after p's solo run    ", demo.first.memory_after_solo)
    print_memory("after the poised writes", demo.first.memory_after_covering)
    print(f"  p output: {sorted(demo.first.solo_output)}")
    print()
    print("Run B: p has input 99 (everything else identical)")
    print_memory("after p's solo run    ", demo.second.memory_after_solo)
    print_memory("after the poised writes", demo.second.memory_after_covering)
    print(f"  p output: {sorted(demo.second.solo_output)}")
    print()
    print(f"memory indistinguishable to Q: {demo.memory_indistinguishable}")
    print(f"Q's own observations identical: {demo.q_indistinguishable}")
    print(f"=> complete erasure: {demo.erasure_complete}")

    print()
    print(f"Control: same construction with the full {n} registers")
    print("=" * 64)
    outcome = run_covering_execution(
        SnapshotMachine(n, n_registers=n), inputs=[1, 2, 3, 4], n_registers=n
    )
    print_memory("after the poised writes", outcome.memory_after_covering)
    survived = any(1 in record.view for record in outcome.memory_after_covering)
    print(f"  p's information survives somewhere: {survived}")


if __name__ == "__main__":
    main()
