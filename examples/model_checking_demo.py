"""Model checking the snapshot algorithm, TLC-style.

Run:  python examples/model_checking_demo.py

The paper validates Figure 3 with the TLC model checker.  This example
runs the reproduction's explicit-state checker:

1. exhaustively explores every 2-processor execution (all wirings up to
   relabelling), checking the snapshot safety invariants on every
   reachable state and certifying wait-freedom via lasso analysis;
2. runs the fast bitmask explorer over the canonical 3-processor wiring
   classes with a state budget, reporting TLC-style statistics;
3. hunts for the paper's claim-B counterexample (an output the memory
   never contained) and replays any find.
"""

import os

from repro.checker import Explorer, SystemSpec
from repro.checker.fast_snapshot import (
    FastSnapshotSpec,
    canonical_wiring_classes,
)
from repro.checker.liveness import check_wait_freedom
from repro.checker.properties import SNAPSHOT_SAFETY
from repro.core import SnapshotMachine
from repro.memory.wiring import enumerate_wiring_assignments

#: Per-class state budget for the 3-processor sweep; raise via
#: REPRO_MC_BUDGET for deeper runs.
BUDGET = int(os.environ.get("REPRO_MC_BUDGET", "300000"))


def main() -> None:
    print("=" * 72)
    print("1. N=2: exhaustive, safety + wait-freedom")
    print("=" * 72)
    for wiring in enumerate_wiring_assignments(2, 2):
        spec = SystemSpec(SnapshotMachine(2), [1, 2], wiring)
        result = Explorer(spec, SNAPSHOT_SAFETY, keep_edges=True).run()
        violations = check_wait_freedom(spec, result)
        print(f"  wiring {wiring.permutations()}: {result.states} states,"
              f" {result.transitions} transitions, depth {result.depth};"
              f" safety={'OK' if result.ok else 'VIOLATED'},"
              f" wait-free={'OK' if not violations else 'VIOLATED'}")

    print()
    print("=" * 72)
    print(f"2. N=3: canonical wiring classes, budget {BUDGET} states/class")
    print("=" * 72)
    for index, wiring in enumerate(canonical_wiring_classes(3, 3)):
        fast = FastSnapshotSpec([1, 2, 3], wiring)
        result = fast.explore(max_states=BUDGET)
        scope = "exhaustive" if result.complete else f"first {result.states}"
        print(f"  class {index} {wiring}: {scope} states,"
              f" {result.transitions} transitions,"
              f" safety={'OK' if result.ok else result.violation}")

    print()
    print("=" * 72)
    print("3. Claim B investigated (see EXPERIMENTS.md §E5)")
    print("=" * 72)
    from repro.checker.claim_b import exhaustive_claim_b_search
    from repro.sim.non_linearizable import build_non_linearizable_scan_demo

    result = exhaustive_claim_b_search(((0, 1, 2), (0, 1, 2), (0, 1, 2)))
    verdict = "EXHAUSTED, no counterexample" if result.exhausted else "budget hit"
    print(f"  abstracted candidate region (identity wiring):"
          f" {result.states} states — {verdict}")
    print("  => under the union-of-views reading, no 3-processor execution"
          " outputs a set the memory avoided throughout")

    demo = build_non_linearizable_scan_demo()
    print(f"  but constructively: a witness outputs {sorted(demo.output)}"
          f" while the union is {sorted(demo.unions_during_final_scan[0])}"
          f" at every instant of its final scan —")
    print("  the output is not linearizable as an atomic collect within"
          " its own operation")


if __name__ == "__main__":
    main()
