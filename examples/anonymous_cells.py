"""Anonymous cells reaching a tissue-level decision.

Run:  python examples/anonymous_cells.py

The fully-anonymous model is motivated by biology (Rashid et al., cited
in the paper's introduction): identical cells interact through shared
chemical deposits at physical locations, with *no common frame of
reference* — cell A's "site 1" may be cell B's "site 3".  That is
exactly processor anonymity plus memory anonymity.

This example builds a synthetic epigenetic-consensus workload:

1. a colony of identical cells, each sensing a local stimulus
   (its private input),
2. **consensus** (Figure 5) on a single expression state for the whole
   tissue, communicating only through anonymous sites,
3. **renaming** (Figure 4) so that cells holding distinct stimuli
   acquire distinct regulatory roles (slots), despite having no
   identities,
4. a per-colony report of how much churn (overwrites of each other's
   deposits) the anonymity cost.
"""

import random

from repro.analysis import collect_statistics
from repro.api import run_consensus, run_renaming

STIMULI = ["methylate", "acetylate"]


def run_colony(n_cells: int, seed: int) -> None:
    rng = random.Random(seed)
    stimuli = [rng.choice(STIMULI) for _ in range(n_cells)]
    print(f"colony of {n_cells} cells; stimuli: {stimuli}")

    # 1. Agree on a single expression state (obstruction-free consensus).
    consensus = run_consensus(stimuli, seed=seed, max_steps=5_000_000)
    decisions = set(consensus.outputs.values())
    assert len(decisions) <= 1, "agreement violated?!"
    if decisions:
        (state,) = decisions
        print(f"  tissue converged on: {state!r}"
              f" ({len(consensus.outputs)}/{n_cells} cells decided)")
    else:
        print("  colony still contending (obstruction-free, not wait-free)")

    stats = collect_statistics(consensus.trace)
    print(f"  churn: {stats.cross_overwrites} cross-overwrites over"
          f" {stats.total_steps} steps")

    # 2. Distinct roles for distinct stimuli (adaptive renaming).
    renaming = run_renaming(stimuli, seed=seed + 1)
    roles = renaming.outputs
    groups = len(set(stimuli))
    bound = groups * (groups + 1) // 2
    print(f"  roles (namespace 1..{bound} for {groups} stimuli):")
    for pid in sorted(roles):
        print(f"    cell {pid} [{stimuli[pid]:>9}] -> role {roles[pid]}")
    # Sanity: different stimuli never share a role.
    for p in roles:
        for q in roles:
            if stimuli[p] != stimuli[q]:
                assert roles[p] != roles[q]


def main() -> None:
    for seed, n_cells in [(11, 4), (29, 6), (47, 5)]:
        run_colony(n_cells, seed)
        print()


if __name__ == "__main__":
    main()
