"""End-to-end properties of the snapshot algorithm under many schedules.

These are the statistical counterpart of experiment E4: the safety
properties of Section 5.3 (containment, validity, self-inclusion) and
wait-free termination, across seeds, sizes, wirings, schedulers, and
group structures (duplicate inputs).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.api import build_runner, run_snapshot
from repro.core import SnapshotMachine
from repro.core.views import all_comparable
from repro.memory.wiring import WiringAssignment
from repro.sim import RoundRobinScheduler, SoloScheduler
from repro.tasks import SnapshotTask, check_group_solution

from tests.helpers import assert_snapshot_outputs_valid


class TestRandomSchedules:
    @pytest.mark.parametrize("n", [2, 3, 4, 5, 7])
    def test_terminates_and_valid_across_sizes(self, n):
        for seed in range(10):
            result = run_snapshot(list(range(1, n + 1)), seed=seed * 31 + n)
            assert result.all_terminated
            assert_snapshot_outputs_valid(
                {pid: pid + 1 for pid in range(n)}, result.outputs
            )

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=50, deadline=None)
    def test_containment_property(self, seed):
        result = run_snapshot([1, 2, 3, 4], seed=seed)
        assert result.all_terminated
        assert all_comparable(result.outputs.values())

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_largest_output_is_superset_of_all(self, seed):
        result = run_snapshot([1, 2, 3], seed=seed)
        largest = max(result.outputs.values(), key=len)
        assert all(view <= largest for view in result.outputs.values())


class TestSchedulerVariety:
    def test_round_robin(self):
        machine = SnapshotMachine(4)
        runner = build_runner(
            machine, [1, 2, 3, 4], seed=3, scheduler=RoundRobinScheduler()
        )
        result = runner.run(100_000)
        assert result.all_terminated
        assert_snapshot_outputs_valid(
            {pid: pid + 1 for pid in range(4)}, result.outputs
        )

    def test_solo_run_terminates_with_singleton(self):
        """A solo processor must output just its own input (wait-freedom
        without any step from the others)."""
        machine = SnapshotMachine(4)
        wiring = WiringAssignment.random(4, 4, random.Random(9))
        runner = build_runner(
            machine, [1, 2, 3, 4], seed=9, wiring=wiring,
            scheduler=SoloScheduler(0),
        )
        result = runner.run(100_000)
        assert result.outputs == {0: frozenset({1})}

    def test_solo_step_count_is_cubic(self):
        """A solo climb is Θ(N^3): N fill cycles to own every register,
        then ~N^2 climb cycles — the level is min(levels read) + 1, and
        the minimum register level only rises after a full round-robin
        rewrite, so each of the N levels costs ~N cycles of N+1 steps."""
        for n in (3, 5, 8):
            machine = SnapshotMachine(n)
            wiring = WiringAssignment.random(n, n, random.Random(n))
            runner = build_runner(
                machine, list(range(n)), seed=n, wiring=wiring,
                scheduler=SoloScheduler(0),
            )
            result = runner.run(10 ** 6)
            solo_steps = result.trace.step_counts()[0]
            assert solo_steps <= 2 * (n * n + 2 * n) * (n + 1)
            assert solo_steps >= n * n  # genuinely superlinear


class TestGroupConfigurations:
    @given(
        st.lists(st.sampled_from(["a", "b", "c"]), min_size=2, max_size=6),
        st.integers(min_value=0, max_value=2**32),
    )
    @settings(max_examples=40, deadline=None)
    def test_group_solves_snapshot_task(self, group_ids, seed):
        """Definition 3.4 holds on every finished execution (duplicate
        inputs = groups)."""
        result = run_snapshot(group_ids, seed=seed)
        assert result.all_terminated
        inputs = {pid: group_ids[pid] for pid in range(len(group_ids))}
        check = check_group_solution(SnapshotTask(), inputs, result.outputs)
        assert check.valid, check.reason

    def test_same_group_processors_may_share_exact_output(self):
        result = run_snapshot(["g", "g", "g"], seed=0)
        assert all("g" in view for view in result.outputs.values())
        assert all(view == frozenset({"g"}) for view in result.outputs.values())


class TestRegisterSurplus:
    """More registers than processors must stay safe (M >= N regime)."""

    @pytest.mark.parametrize("extra", [1, 2, 4])
    def test_extra_registers_safe(self, extra):
        n = 3
        for seed in range(5):
            result = run_snapshot(
                [1, 2, 3], seed=seed, n_registers=n + extra
            )
            assert result.all_terminated
            assert_snapshot_outputs_valid(
                {pid: pid + 1 for pid in range(n)}, result.outputs
            )


class TestDeterministicReplay:
    def test_same_seed_same_execution(self):
        first = run_snapshot([1, 2, 3], seed=1234)
        second = run_snapshot([1, 2, 3], seed=1234)
        assert first.outputs == second.outputs
        assert first.schedule == second.schedule
        assert first.steps == second.steps

    def test_different_seeds_differ_somewhere(self):
        schedules = {tuple(run_snapshot([1, 2, 3], seed=s).schedule) for s in range(5)}
        assert len(schedules) > 1


class TestFootnote4Variant:
    """Terminating at level N-1 (paper's footnote 4) is also safe."""

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_level_n_minus_1_safe(self, seed):
        result = run_snapshot([1, 2, 3, 4], seed=seed, level_target=3)
        assert result.all_terminated
        assert_snapshot_outputs_valid(
            {pid: pid + 1 for pid in range(4)}, result.outputs
        )

    def test_lower_levels_are_not_tested_as_safe(self):
        """Sanity guard: level target 1 is known-unsound (a single clean
        scan is refuted by the paper); we don't assert anything about
        it here beyond the machine accepting the configuration."""
        machine = SnapshotMachine(3, level_target=1)
        assert machine.level_target == 1
