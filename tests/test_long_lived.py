"""Tests for the long-lived snapshot (Section 7)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.long_lived import PHASE_READY, LongLivedSnapshotMachine
from repro.core.views import all_comparable
from repro.memory.wiring import WiringAssignment
from repro.sim import MachineProcess, RandomPolicy, RandomScheduler, Runner
from repro.memory import AnonymousMemory


@pytest.fixture
def machine():
    return LongLivedSnapshotMachine(3)


class TestReadyPhase:
    def drive_solo_until_ready(self, machine, state, memory, pid=0):
        """Drive one processor alone until its invocation completes."""
        from repro.sim.ops import Read

        for _ in range(100_000):
            if machine.is_ready(state):
                return state
            op = machine.enabled_ops(state)[0]
            if isinstance(op, Read):
                result = memory.read(pid, op.reg)
            else:
                memory.write(pid, op.reg, op.value)
                result = None
            state = machine.apply(state, op, result)
        raise AssertionError("never became ready")

    def test_parks_ready_instead_of_terminating(self, machine):
        memory = AnonymousMemory(
            WiringAssignment.identity(3, 3), machine.register_initial_value()
        )
        state = self.drive_solo_until_ready(machine, machine.initial_state(1), memory)
        assert state.phase == PHASE_READY
        assert machine.enabled_ops(state) == ()
        assert machine.output(state) == frozenset({1})

    def test_ready_state_keeps_fairness_cycle(self, machine):
        """Unlike single-shot termination, ready states must keep their
        round-robin position so later invocations stay fair."""
        memory = AnonymousMemory(
            WiringAssignment.identity(3, 3), machine.register_initial_value()
        )
        state = self.drive_solo_until_ready(machine, machine.initial_state(1), memory)
        assert state.unwritten != frozenset()

    def test_invoke_resets_level_and_adds_input(self, machine):
        memory = AnonymousMemory(
            WiringAssignment.identity(3, 3), machine.register_initial_value()
        )
        state = self.drive_solo_until_ready(machine, machine.initial_state(1), memory)
        invoked = machine.invoke(state, 2)
        assert invoked.level == 0
        assert invoked.view == frozenset({1, 2})
        assert machine.enabled_ops(invoked) != ()

    def test_second_invocation_completes(self, machine):
        memory = AnonymousMemory(
            WiringAssignment.identity(3, 3), machine.register_initial_value()
        )
        state = self.drive_solo_until_ready(machine, machine.initial_state(1), memory)
        state = machine.invoke(state, 2)
        state = self.drive_solo_until_ready(machine, state, memory)
        assert machine.output(state) == frozenset({1, 2})

    def test_output_contains_all_inputs_used_so_far(self, machine):
        """Section 7's second guarantee."""
        memory = AnonymousMemory(
            WiringAssignment.identity(3, 3), machine.register_initial_value()
        )
        state = machine.initial_state("a")
        used = {"a"}
        for next_input in ["b", "c", "d"]:
            state = self.drive_solo_until_ready(machine, state, memory)
            assert used <= machine.output(state)
            state = machine.invoke(state, next_input)
            used.add(next_input)


class TestConcurrentInvocations:
    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=25, deadline=None)
    def test_all_outputs_across_invocations_comparable(self, seed):
        """Section 7's third guarantee: every two outputs, including
        outputs of different invocations, are containment-related."""
        rng = random.Random(seed)
        n = 3
        machine = LongLivedSnapshotMachine(n)
        wiring = WiringAssignment.random(n, n, rng)
        memory = AnonymousMemory(wiring, machine.register_initial_value())
        processes = [
            MachineProcess(pid, machine, (pid, 0), RandomPolicy(rng))
            for pid in range(n)
        ]
        runner = Runner(memory, processes, RandomScheduler(rng))
        outputs = []
        invocation_count = {pid: 0 for pid in range(n)}
        for _ in range(30_000):
            enabled = runner.enabled_pids()
            # Re-invoke any ready processor with a fresh input, up to 3
            # invocations each.
            for process in runner.processes:
                if machine.is_ready(process.state):
                    outputs.append(machine.output(process.state))
                    invocation_count[process.pid] += 1
                    if invocation_count[process.pid] < 3:
                        process.state = machine.invoke(
                            process.state, (process.pid, invocation_count[process.pid])
                        )
            enabled = runner.enabled_pids()
            if not enabled:
                break
            runner.step_process(rng.choice(enabled))
        assert outputs, "no invocation ever completed"
        assert all_comparable(outputs)

    def test_outputs_only_contain_used_inputs(self):
        rng = random.Random(7)
        n = 3
        machine = LongLivedSnapshotMachine(n)
        wiring = WiringAssignment.random(n, n, rng)
        memory = AnonymousMemory(wiring, machine.register_initial_value())
        processes = [
            MachineProcess(pid, machine, ("in", pid), RandomPolicy(rng))
            for pid in range(n)
        ]
        runner = Runner(memory, processes, RandomScheduler(rng))
        runner.run(20_000)
        legal = {("in", pid) for pid in range(n)}
        for process in runner.processes:
            assert process.state.view <= legal


class TestInvokeValidation:
    def test_invoke_from_running_phase_allowed(self, machine):
        # The spec allows re-invocation from any live phase (used by the
        # consensus wrapper only from ready, but harmless elsewhere).
        state = machine.initial_state(1)
        invoked = machine.invoke(state, 2)
        assert invoked.view == frozenset({1, 2})
        assert invoked.level == 0
