"""Tests for §7's future-work item: group solvability of the long-lived
snapshot, and its empirical validation on the actual algorithm."""

import random

import pytest

from repro.core.long_lived import LongLivedSnapshotMachine
from repro.memory import AnonymousMemory, WiringAssignment
from repro.sim import MachineProcess, RandomPolicy, Runner, RandomScheduler
from repro.tasks import (
    Invocation,
    LongLivedHistory,
    check_long_lived_group_snapshot,
)


class TestHistoryRecorder:
    def test_begin_complete_roundtrip(self):
        history = LongLivedHistory()
        history.begin(0, "a")
        invocation = history.complete(0, frozenset({"a"}))
        assert invocation == Invocation(0, 0, "a", frozenset({"a"}))

    def test_indices_count_per_processor(self):
        history = LongLivedHistory()
        history.begin(0, "a")
        history.begin(1, "b")
        history.begin(0, "c")
        history.complete(0, frozenset({"a"}))
        history.complete(0, frozenset({"a", "c"}))
        assert [inv.index for inv in history.invocations] == [0, 1]
        assert history.invocations[1].input == "c"

    def test_completion_without_begin_rejected(self):
        history = LongLivedHistory()
        with pytest.raises(ValueError):
            history.complete(0, frozenset({"a"}))


class TestCheckerOnSyntheticHistories:
    def build(self, entries):
        """entries: list of (pid, input, output-or-None)."""
        history = LongLivedHistory()
        for pid, value, output in entries:
            history.begin(pid, value)
            if output is not None:
                history.complete(pid, frozenset(output))
        return history

    def test_valid_chain_history(self):
        history = self.build([
            (0, "a", {"a"}),
            (1, "b", {"a", "b"}),
            (0, "c", {"a", "b", "c"}),
        ])
        result = check_long_lived_group_snapshot(history)
        assert result.valid, result.reason

    def test_output_missing_own_earlier_input_invalid(self):
        """Section 7's second guarantee: outputs contain all inputs the
        processor has used so far."""
        history = LongLivedHistory()
        history.begin(0, "a")
        history.complete(0, frozenset({"a"}))
        history.begin(0, "c")
        history.complete(0, frozenset({"c"}))  # lost its own earlier "a"
        result = check_long_lived_group_snapshot(history)
        assert not result.valid
        assert "misses" in result.reason

    def test_incomparable_outputs_across_groups_invalid(self):
        history = self.build([
            (0, "a", {"a", "b"}),
            (1, "b", {"b", "c"}),
            (2, "c", {"a", "b", "c"}),
        ])
        result = check_long_lived_group_snapshot(history)
        assert not result.valid
        assert "incomparable" in result.reason

    def test_same_group_incomparable_outputs_legal(self):
        """The group escape hatch, now across invocations: two logical
        processors of the same group may return incomparable sets."""
        history = self.build([
            (0, "g", {"g", "x"}),
            (1, "g", {"g", "y"}),
            (2, "x", {"g", "x", "y"}),
            (2, "y", None),  # begun, not completed: participates only
        ])
        # wait: "y" group began via pid 2's second invocation
        result = check_long_lived_group_snapshot(history)
        assert result.valid, result.reason

    def test_non_participating_group_in_output_invalid(self):
        history = self.build([(0, "a", {"a", "zz"})])
        result = check_long_lived_group_snapshot(history)
        assert not result.valid
        assert "non-participating" in result.reason

    def test_group_of_mapping_collapses_values(self):
        """Distinct input values can be mapped into shared groups."""
        history = self.build([
            (0, "a1", {"A", "B"}),
            (1, "b1", {"A", "B"}),
        ])
        # outputs are already group-level here; map inputs to groups.
        result = check_long_lived_group_snapshot(
            history, group_of={"a1": "A", "b1": "B"}
        )
        assert result.valid, result.reason

    def test_empty_history_valid(self):
        assert check_long_lived_group_snapshot(LongLivedHistory()).valid


class TestOnTheRealAlgorithm:
    """Empirical counterpart of the deferred future-work proof: the
    long-lived snapshot's histories satisfy the §7 group definition."""

    def run_history(self, seed, n=3, invocations_per_proc=3, steps=60_000):
        rng = random.Random(seed)
        machine = LongLivedSnapshotMachine(n)
        wiring = WiringAssignment.random(n, n, rng)
        memory = AnonymousMemory(wiring, machine.register_initial_value())
        history = LongLivedHistory()
        processes = []
        for pid in range(n):
            first_input = ("v", pid, 0)
            history.begin(pid, first_input)
            processes.append(
                MachineProcess(pid, machine, first_input, RandomPolicy(rng))
            )
        runner = Runner(memory, processes, RandomScheduler(rng))
        counts = {pid: 0 for pid in range(n)}
        retired = set()
        for _ in range(steps):
            for process in processes:
                if process.pid in retired:
                    continue
                if machine.is_ready(process.state):
                    history.complete(process.pid, machine.output(process.state))
                    counts[process.pid] += 1
                    if counts[process.pid] < invocations_per_proc:
                        next_input = ("v", process.pid, counts[process.pid])
                        history.begin(process.pid, next_input)
                        process.state = machine.invoke(
                            process.state, next_input
                        )
                    else:
                        retired.add(process.pid)
            enabled = runner.enabled_pids()
            if not enabled:
                break
            runner.step_process(rng.choice(enabled))
        return history

    @pytest.mark.parametrize("seed", range(12))
    def test_histories_group_solve_long_lived_snapshot(self, seed):
        history = self.run_history(seed)
        assert history.invocations, "no invocation completed"
        result = check_long_lived_group_snapshot(history)
        assert result.valid, result.reason

    @pytest.mark.parametrize("seed", range(6))
    def test_histories_with_shared_groups(self, seed):
        """Map invocation inputs onto two groups; Definition 3.4's
        long-lived lift must still hold."""
        history = self.run_history(seed + 100)
        group_of = {
            value: ("G", value[1] % 2)
            for used in history.inputs_used.values()
            for value in used
        }
        result = check_long_lived_group_snapshot(history, group_of=group_of)
        assert result.valid, result.reason
