"""The level-batched (numpy) exploration kernel vs the scalar oracle.

The batch engine's whole value proposition is "same verdicts, much
faster", so the load-bearing contract here is *byte-identical
results*: for every unreduced configuration both engines support,
``asdict`` of the two :class:`FastExplorationResult` objects must be
equal — same verdict and violation message, same
admitted/transition/truncated counts even mid-budget, same
covered-state totals under symmetry.  Backend-specific counters
(``store_counters``) are the one documented exception: the engines
issue different probe patterns against the same visited set.

POR is the other documented carve-out: the batch engine's
level-synchronous cycle proviso (C3 against ``visited ∪
earlier-in-level``) legitimately picks different — equally sound —
ample sets than the scalar selector's mid-level one, so batch+POR
conformance is *verdict-level* (same ok/violation/complete, plus the
``PORCounters`` accounting invariant), not count-identical.

numpy is a soft dependency.  The conformance matrix skips cleanly
without it; the degradation tests below run regardless (they simulate
absence by flipping ``HAVE_NUMPY``) and prove every batch entry point
fails with a clear :class:`BatchEngineUnavailable` instead of a
traceback.
"""

import random
from dataclasses import asdict

import pytest

import repro.checker.batch as batch_mod
from repro.checker import parallel
from repro.checker.batch import BatchEngineUnavailable
from repro.checker.fast_snapshot import FastSnapshotSpec
from repro.checker.fingerprint import fingerprint_int, splitmix64
from repro.checker.parallel import check_snapshot_classes, explore_sharded
from repro.store import StoreConfig

requires_numpy = pytest.mark.skipif(
    not batch_mod.HAVE_NUMPY, reason="numpy not installed"
)

if batch_mod.HAVE_NUMPY:
    import numpy as np

#: Both N=2 wiring classes (canonical representatives).
N2_CLASSES = [((0, 1), (0, 1)), ((0, 1), (1, 0))]

#: One N=3 class for budgeted multi-level coverage.
N3_CLASS = ((0, 1, 2), (0, 1, 2), (1, 2, 0))

_SEEDED_MESSAGE = "seeded violation: a processor terminated"


def _seed_violation(monkeypatch):
    """Flag any state with a DONE processor (snapshot is actually safe).

    Patching the *class* before the batch module's vectorized check
    runs exercises the stock-check identity guard: the batch engine
    must notice ``check_outputs`` was overridden and fall back to the
    per-state scalar call, or the seeded fault would be invisible to
    its vectorized mask.
    """
    original = FastSnapshotSpec.check_outputs

    def seeded(self, state):
        for pid in range(self.n):
            local = (state >> self.local_offsets[pid]) & self.local_mask
            if (local >> self.o_phase) & 3 == 2:  # DONE
                return _SEEDED_MESSAGE
        return original(self, state)

    monkeypatch.setattr(FastSnapshotSpec, "check_outputs", seeded)


def _both(wiring, inputs=(1, 2), **kwargs):
    """(scalar result, batch result) as dicts, for equality asserts."""
    scalar = FastSnapshotSpec(list(inputs), wiring).explore(
        engine="scalar", **kwargs
    )
    batch = FastSnapshotSpec(list(inputs), wiring).explore(
        engine="batch", **kwargs
    )
    return asdict(scalar), asdict(batch)


def _verdict(result):
    """The POR-conformance projection: verdict fields only.

    Works on results and their ``asdict`` forms alike.  Under POR the
    two engines' C3 oracles legitimately pick different ample sets, so
    state/transition counts are not comparable — only verdicts are.
    """
    if not isinstance(result, dict):
        result = asdict(result)
    return (
        result["violation"] is None,
        result["violation"],
        result["complete"],
    )


def _assert_por_accounting(batch_dict):
    """The batch selector must keep the scalar counters' invariant."""
    counters = batch_dict["por_counters"]
    assert counters is not None
    assert (
        counters["ample_states"] + counters["fully_expanded_states"]
        == batch_dict["states"]
    )


# ----------------------------------------------------------------------
# Satellite: batched splitmix64 === scalar splitmix64 (shared constants)
# ----------------------------------------------------------------------


@requires_numpy
class TestFingerprintParity:
    def test_splitmix_agrees_on_random_u64s_and_edges(self):
        rng = random.Random(0xE15)
        samples = [rng.getrandbits(64) for _ in range(10_000)]
        samples += [0, 2**64 - 1, 1, 2**63, 2**63 - 1]
        arr = np.array(samples, dtype=np.uint64)
        batched = batch_mod.splitmix64_many(arr)
        for value, out in zip(samples, batched.tolist()):
            assert out == splitmix64(value)

    def test_fingerprint_many_matches_fingerprint_int(self):
        rng = random.Random(0x51A7)
        samples = [rng.getrandbits(64) for _ in range(10_000)]
        samples += [0, 2**64 - 1]
        arr = np.array(samples, dtype=np.uint64)
        batched = batch_mod.fingerprint_many(arr)
        for value, out in zip(samples, batched.tolist()):
            assert out == fingerprint_int(value)

    def test_engines_share_one_constants_module(self):
        import repro.checker.constants as constants
        import repro.checker.fingerprint as fingerprint

        # Not merely equal values: the scalar module must re-export the
        # shared constants, so a future edit cannot desynchronize them.
        assert fingerprint.SPLITMIX_GAMMA is constants.SPLITMIX_GAMMA
        assert fingerprint.MASK64 is constants.MASK64


# ----------------------------------------------------------------------
# Tentpole: serial conformance — the scalar engine is the oracle
# ----------------------------------------------------------------------


@requires_numpy
class TestSerialConformance:
    @pytest.mark.parametrize("wiring", N2_CLASSES)
    @pytest.mark.parametrize("symmetry", [False, True])
    @pytest.mark.parametrize("por", [False, True])
    def test_exhaustive_n2_matrix(self, wiring, symmetry, por):
        scalar, batch = _both(wiring, symmetry=symmetry, por=por)
        if por:
            # Verdict-level conformance: the level-synchronous C3
            # oracle legitimately picks different ample sets (see
            # module docstring); both reductions must stay sound.
            unreduced, _ = _both(wiring, symmetry=symmetry)
            assert _verdict(scalar) == _verdict(batch) == _verdict(unreduced)
            _assert_por_accounting(batch)
            assert batch["por_counters"]["transitions_pruned"] > 0
            assert batch["transitions"] < unreduced["transitions"]
        else:
            assert scalar == batch

    @pytest.mark.parametrize("fingerprint", [False, True])
    @pytest.mark.parametrize("symmetry", [False, True])
    @pytest.mark.parametrize("por", [False, True])
    def test_exhaustive_n2_fingerprint(self, fingerprint, symmetry, por):
        scalar, batch = _both(
            N2_CLASSES[1], fingerprint=fingerprint, symmetry=symmetry,
            por=por,
        )
        if por:
            assert _verdict(scalar) == _verdict(batch)
            _assert_por_accounting(batch)
        else:
            assert scalar == batch

    def test_batch_por_cycle_proviso_seam(self):
        # The snapshot machine's reachable graph is a DAG, so disabling
        # C3 must not change the verdict — it only removes proviso
        # blocks (the livelock regression that *needs* C3 lives in
        # tests/test_por.py on the generic engine).
        spec = FastSnapshotSpec([1, 2], N2_CLASSES[1])
        guarded = spec.explore(engine="batch", por=True)
        unguarded = spec.explore(
            engine="batch", por=True, por_cycle_proviso=False
        )
        assert _verdict(guarded) == _verdict(unguarded)
        assert unguarded.por_counters["cycle_proviso_expansions"] == 0

    @pytest.mark.parametrize("budget", [1, 2, 7, 50, 500])
    @pytest.mark.parametrize("symmetry", [False, True])
    def test_budget_clipped_counts_match_exactly(self, budget, symmetry):
        # Mid-level budget trips are where the two loops most easily
        # diverge: the truncated-transition count depends on *where*
        # inside a level the (B+1)-th fresh state appeared.
        scalar, batch = _both(
            N2_CLASSES[1], max_states=budget, symmetry=symmetry
        )
        assert scalar == batch

    def test_budgeted_n3_multi_level(self):
        scalar, batch = _both(
            N3_CLASS, inputs=(1, 2, 3), max_states=3_000, fingerprint=True
        )
        assert scalar == batch

    def test_seeded_violation_matches_and_defeats_vectorized_mask(
        self, monkeypatch
    ):
        _seed_violation(monkeypatch)
        scalar, batch = _both(N2_CLASSES[1])
        assert scalar == batch
        assert batch["violation"] == _SEEDED_MESSAGE
        assert not batch["complete"] or batch["violation"] is not None

    def test_seeded_violation_after_batch_import(self, monkeypatch):
        # Patch order must not matter: importing batch first, then
        # patching, then exploring still sees the seeded fault.
        import repro.checker.batch  # noqa: F401  (already imported)

        _seed_violation(monkeypatch)
        scalar, batch = _both(N2_CLASSES[0], symmetry=True)
        assert scalar == batch
        assert batch["violation"] == _SEEDED_MESSAGE

    def test_unknown_engine_rejected(self):
        spec = FastSnapshotSpec([1, 2], N2_CLASSES[0])
        with pytest.raises(ValueError, match="unknown engine"):
            spec.explore(engine="simd")

    def test_wait_freedom_refused_on_batch(self):
        spec = FastSnapshotSpec([1, 2], N2_CLASSES[0])
        with pytest.raises(ValueError, match="edge"):
            spec.explore(engine="batch", check_wait_freedom=True)


@requires_numpy
class TestStoreConformance:
    @pytest.mark.parametrize("backend", ["ram", "mmap", "spill"])
    @pytest.mark.parametrize("symmetry", [False, True])
    @pytest.mark.parametrize("por", [False, True])
    def test_backends_match_scalar(self, backend, symmetry, por, tmp_path):
        def run(engine, sub):
            return FastSnapshotSpec([1, 2], N2_CLASSES[1]).explore(
                engine=engine, fingerprint=True, symmetry=symmetry,
                por=por,
                store=StoreConfig(
                    backend=backend, directory=str(tmp_path / sub)
                ),
            )

        scalar = asdict(run("scalar", "scalar"))
        batch = asdict(run("batch", "batch"))
        if por:
            assert _verdict(scalar) == _verdict(batch)
            _assert_por_accounting(batch)
            return
        # The engines probe the same visited set with different call
        # patterns (scalar add/contains vs one bulk call per level), so
        # operation counters legitimately differ; everything else must
        # not.
        scalar.pop("store_counters")
        batch.pop("store_counters")
        assert scalar == batch


# ----------------------------------------------------------------------
# Tentpole: sharded conformance (whole levels across the wire)
# ----------------------------------------------------------------------


@requires_numpy
class TestShardedConformance:
    @pytest.fixture(autouse=True)
    def force_two_workers(self, monkeypatch):
        # A single-core host would collapse jobs to 1 (serial fallback)
        # and never exercise the array wire format.
        monkeypatch.setattr(
            parallel, "effective_jobs", lambda requested: requested
        )

    @pytest.mark.parametrize("symmetry", [False, True])
    @pytest.mark.parametrize("fingerprint", [False, True])
    def test_exhaustive_n2_matches_scalar_workers(self, symmetry, fingerprint):
        kwargs = dict(jobs=2, symmetry=symmetry, fingerprint=fingerprint)
        scalar = explore_sharded(
            [1, 2], N2_CLASSES[1], engine="scalar", **kwargs
        )
        batch = explore_sharded([1, 2], N2_CLASSES[1], engine="batch", **kwargs)
        assert asdict(scalar) == asdict(batch)

    def test_budgeted_n3_matches_scalar_workers(self):
        scalar = explore_sharded(
            [1, 2, 3], N3_CLASS, jobs=2, max_states=2_000, engine="scalar"
        )
        batch = explore_sharded(
            [1, 2, 3], N3_CLASS, jobs=2, max_states=2_000, engine="batch"
        )
        assert asdict(scalar) == asdict(batch)

    @pytest.mark.parametrize("symmetry", [False, True])
    def test_por_batch_workers_verdict_conformant(self, symmetry):
        scalar = explore_sharded(
            [1, 2], N2_CLASSES[1], jobs=2, por=True, symmetry=symmetry,
            engine="scalar",
        )
        batch = explore_sharded(
            [1, 2], N2_CLASSES[1], jobs=2, por=True, symmetry=symmetry,
            engine="batch",
        )
        # Workers run the level-synchronous selector, which certifies
        # novelty against a smaller snapshot than the scalar selector's
        # mid-level visited set: verdicts must agree, counts may not.
        assert _verdict(scalar) == _verdict(batch)
        assert batch.por_counters is not None
        assert batch.por_counters["transitions_pruned"] > 0
        _assert_por_accounting(asdict(batch))

    def test_class_sweep_matches_scalar(self):
        scalar = check_snapshot_classes(2, jobs=2, engine="scalar")
        batch = check_snapshot_classes(2, jobs=2, engine="batch")
        assert len(scalar) == len(batch)
        for (w_scalar, r_scalar), (w_batch, r_batch) in zip(scalar, batch):
            assert w_scalar == w_batch
            assert asdict(r_scalar) == asdict(r_batch)

    def test_checkpoint_interrupt_resume_roundtrip(self, tmp_path):
        from repro.store.checkpoint import RunCheckpointer

        meta = {"n": 3, "engine_test": "batch"}
        kwargs = dict(jobs=2, max_states=3_000, engine="batch")
        uninterrupted = explore_sharded([1, 2, 3], N3_CLASS, **kwargs)
        fired = []

        def interrupt_once():
            fired.append(True)
            if len(fired) == 1:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            explore_sharded(
                [1, 2, 3], N3_CLASS, **kwargs,
                checkpointer=RunCheckpointer(tmp_path, meta, every=500),
                _after_checkpoint=interrupt_once,
            )
        resumed = explore_sharded(
            [1, 2, 3], N3_CLASS, **kwargs,
            checkpointer=RunCheckpointer(tmp_path, meta, every=500),
        )
        assert asdict(resumed) == asdict(uninterrupted)


# ----------------------------------------------------------------------
# Graceful degradation without numpy (runs with numpy installed too —
# absence is simulated by flipping HAVE_NUMPY)
# ----------------------------------------------------------------------


class TestWithoutNumpy:
    @pytest.fixture(autouse=True)
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "HAVE_NUMPY", False)

    def test_require_numpy_raises_with_guidance(self):
        with pytest.raises(BatchEngineUnavailable, match="--engine scalar"):
            batch_mod.require_numpy()

    def test_explore_batch_refused(self):
        spec = FastSnapshotSpec([1, 2], N2_CLASSES[0])
        with pytest.raises(BatchEngineUnavailable):
            spec.explore(engine="batch")

    def test_explore_sharded_batch_refused(self, monkeypatch):
        monkeypatch.setattr(
            parallel, "effective_jobs", lambda requested: requested
        )
        with pytest.raises(BatchEngineUnavailable):
            explore_sharded([1, 2], N2_CLASSES[0], jobs=2, engine="batch")

    def test_scalar_engine_unaffected(self):
        result = FastSnapshotSpec([1, 2], N2_CLASSES[0]).explore()
        assert result.ok and result.states == 7235

    def test_cli_exits_2_with_message(self, capsys):
        from repro.cli import main

        assert main(["check", "--n", "2", "--engine", "batch"]) == 2
        out = capsys.readouterr().out
        assert "numpy is not installed" in out


# ----------------------------------------------------------------------
# CLI happy path
# ----------------------------------------------------------------------


@requires_numpy
class TestCliBatchEngine:
    def test_check_n2_engine_batch_runs_class_sweep(self, capsys):
        from repro.cli import main

        assert main(["check", "--n", "2", "--engine", "batch"]) == 0
        out = capsys.readouterr().out
        # the batch engine triggers the fast class sweep on top of the
        # full-edge liveness pass
        assert "class sweep" in out
        assert out.count("7235 states") >= 2

    def test_unknown_engine_rejected_by_argparse(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["check", "--n", "2", "--engine", "simd"])


# ----------------------------------------------------------------------
# _unique_first's sorted fast path (spill merges hand back whole levels
# in key order; re-sorting them was measurable pure waste)
# ----------------------------------------------------------------------


@requires_numpy
class TestUniqueFirstSortedPath:
    def test_sorted_input_skips_the_sort_and_matches_the_oracle(
        self, monkeypatch
    ):
        rng = np.random.default_rng(7)
        keys = np.sort(rng.integers(0, 50, size=4096, dtype=np.uint64))
        oracle_uniq, oracle_first = np.unique(keys, return_index=True)
        argsorts = []
        real_argsort = np.argsort
        monkeypatch.setattr(
            np, "argsort",
            lambda *args, **kw: (
                argsorts.append(1), real_argsort(*args, **kw)
            )[1],
        )
        uniq, first = batch_mod._unique_first(keys)
        assert argsorts == []  # the fast path must not sort again
        assert np.array_equal(uniq, oracle_uniq)
        assert np.array_equal(first, oracle_first)

    @pytest.mark.parametrize("size", [0, 1, 2, 257])
    def test_edge_shapes_sorted_and_unsorted(self, size):
        rng = np.random.default_rng(size)
        raw = rng.integers(0, max(1, size // 3), size=size, dtype=np.uint64)
        for keys in (raw, np.sort(raw)):
            uniq, first = batch_mod._unique_first(keys)
            oracle_uniq, oracle_first = np.unique(keys, return_index=True)
            assert np.array_equal(uniq, oracle_uniq)
            assert np.array_equal(first, oracle_first)

    def test_unsorted_input_still_reports_minimal_positions(self):
        keys = np.array([9, 3, 9, 3, 1, 1, 9], dtype=np.uint64)
        uniq, first = batch_mod._unique_first(keys)
        assert uniq.tolist() == [1, 3, 9]
        assert first.tolist() == [4, 1, 0]

    def test_spill_level_dedup_accounting_unchanged(self, tmp_path):
        # The spill store's merge path is what feeds already-sorted key
        # arrays back into the level dedup; the fast path must leave
        # every admitted/transition count identical to the RAM run.
        def run(backend, sub):
            return asdict(FastSnapshotSpec([1, 2, 3], N3_CLASS).explore(
                engine="batch", fingerprint=True, max_states=3_000,
                store=StoreConfig(
                    backend=backend, directory=str(tmp_path / sub)
                ),
            ))

        ram = run("ram", "ram")
        spill = run("spill", "spill")
        ram.pop("store_counters")
        spill.pop("store_counters")
        assert ram == spill
