"""Tests for AnonymousMemory (wiring translation, tracing) and Trace queries."""


from repro.memory import AnonymousMemory, WiringAssignment
from repro.memory.trace import ReadEvent, Trace, WriteEvent
from repro.memory.wiring import Wiring


def make_memory():
    # p0 identity, p1 rotated by one, over 3 registers.
    wiring = WiringAssignment([Wiring.identity(3), Wiring.rotation(3, 1)])
    return AnonymousMemory(wiring, initial_value=frozenset())


class TestTranslation:
    def test_write_goes_through_wiring(self):
        memory = make_memory()
        memory.write(1, 0, frozenset({"x"}))  # p1 local 0 -> physical 1
        assert memory.snapshot() == (frozenset(), frozenset({"x"}), frozenset())

    def test_read_goes_through_wiring(self):
        memory = make_memory()
        memory.write(0, 1, frozenset({"y"}))  # p0 local 1 -> physical 1
        assert memory.read(1, 0) == frozenset({"y"})  # p1 local 0 -> physical 1

    def test_same_local_index_different_physical(self):
        memory = make_memory()
        memory.write(0, 0, frozenset({"a"}))  # physical 0
        memory.write(1, 0, frozenset({"b"}))  # physical 1
        assert memory.snapshot()[0] == frozenset({"a"})
        assert memory.snapshot()[1] == frozenset({"b"})

    def test_counts(self):
        memory = make_memory()
        assert memory.n_registers == 3
        assert memory.n_processors == 2


class TestTraceRecording:
    def test_events_carry_both_coordinates(self):
        memory = make_memory()
        memory.write(1, 2, frozenset({"v"}))  # p1 local 2 -> physical 0
        event = memory.trace[0]
        assert isinstance(event, WriteEvent)
        assert event.local_index == 2
        assert event.physical_index == 0
        assert event.pid == 1

    def test_read_from_tracks_last_writer(self):
        memory = make_memory()
        memory.write(0, 0, frozenset({"v"}))
        memory.read(1, 2)  # p1 local 2 -> physical 0, written by p0
        read = memory.trace[1]
        assert isinstance(read, ReadEvent)
        assert read.read_from == 0

    def test_read_from_initial_value_is_none(self):
        memory = make_memory()
        memory.read(0, 0)
        assert memory.trace[0].read_from is None

    def test_overwrite_metadata(self):
        memory = make_memory()
        memory.write(0, 0, frozenset({"a"}))
        memory.write(1, 2, frozenset({"b"}))  # physical 0 again
        event = memory.trace[1]
        assert event.overwritten == frozenset({"a"})
        assert event.overwrote == 0

    def test_clock_advances_per_event(self):
        memory = make_memory()
        memory.write(0, 0, frozenset())
        memory.read(0, 0)
        memory.record_output(0, "done")
        assert memory.clock == 3
        assert [event.time for event in memory.trace] == [0, 1, 2]


class TestTraceQueries:
    def build_trace(self):
        memory = make_memory()
        memory.write(0, 0, frozenset({"a"}))   # t0: p0 -> phys 0
        memory.read(1, 2)                       # t1: p1 reads phys 0 (from p0)
        memory.write(1, 0, frozenset({"b"}))   # t2: p1 -> phys 1
        memory.read(0, 1)                       # t3: p0 reads phys 1 (from p1)
        memory.record_output(0, frozenset({"a", "b"}))  # t4
        return memory

    def test_participants(self):
        memory = self.build_trace()
        assert memory.trace.participants() == (0, 1)

    def test_step_counts_exclude_outputs(self):
        memory = self.build_trace()
        assert memory.trace.step_counts() == {0: 2, 1: 2}

    def test_reads_writes_outputs_partition(self):
        trace = self.build_trace().trace
        assert len(trace.reads()) == 2
        assert len(trace.writes()) == 2
        assert len(trace.outputs()) == 1
        assert len(trace) == 5

    def test_reads_from_predicate(self):
        trace = self.build_trace().trace
        assert trace.reads_from(1, [0])
        assert trace.reads_from(0, [1])
        assert not trace.reads_from(1, [1])

    def test_reads_from_pairs(self):
        trace = self.build_trace().trace
        assert trace.reads_from_pairs() == [(1, 0, 1), (0, 1, 3)]

    def test_events_of(self):
        trace = self.build_trace().trace
        assert [event.time for event in trace.events_of(0)] == [0, 3, 4]

    def test_memory_history(self):
        trace = self.build_trace().trace
        history = trace.memory_history(3, initial_value=frozenset())
        assert history[0] == (frozenset(),) * 3
        assert history[1][0] == frozenset({"a"})
        # final state: phys0 = {a}, phys1 = {b}
        assert history[-1][0] == frozenset({"a"})
        assert history[-1][1] == frozenset({"b"})
        # one entry per event plus the initial state
        assert len(history) == len(trace) + 1

    def test_format_table_mentions_all_events(self):
        trace = self.build_trace().trace
        text = trace.format_table()
        assert text.count("\n") == len(trace) - 1
        assert "outputs" in text
        assert "reads" in text and "writes" in text

    def test_empty_trace(self):
        trace = Trace()
        assert len(trace) == 0
        assert trace.participants() == ()
        assert trace.step_counts() == {}
        assert trace.memory_history(2) == [(None, None)]


class TestAnonymityEnforcement:
    def test_algorithms_cannot_see_physical_indices(self):
        """The memory API only accepts local indices; physical layout is
        recoverable exclusively from the (meta-level) trace."""
        memory = make_memory()
        # Two processors writing "their" register 0 hit different
        # physical registers — neither can tell.
        memory.write(0, 0, frozenset({"p0"}))
        memory.write(1, 0, frozenset({"p1"}))
        values = {memory.read(0, i) for i in range(3)}
        assert values == {frozenset({"p0"}), frozenset({"p1"}), frozenset()}
