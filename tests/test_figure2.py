"""Experiment E1 tests: Figure 2 reproduced cell-for-cell, and certified
infinite (lasso), with the stable-view graph of the paper."""

import pytest

from repro.analysis import stable_view_graph_from_lasso, stable_views_of_lasso
from repro.core.views import view
from repro.sim.scripted import (
    FIGURE2_EXPECTED_ROWS,
    build_figure2_runner,
    figure2_observed_rows,
    figure2_schedule,
    figure2_wiring,
    format_figure2_table,
)


class TestFigure2Table:
    @pytest.fixture(scope="class")
    def rows(self):
        return figure2_observed_rows()

    def test_thirteen_rows(self, rows):
        assert len(rows) == 13

    @pytest.mark.parametrize("index", range(13))
    def test_row_matches_paper(self, rows, index):
        got = rows[index]
        want = FIGURE2_EXPECTED_ROWS[index]
        assert got.registers == want.registers, f"row {index + 1} registers"
        assert got.views == want.views, f"row {index + 1} views"

    def test_row13_equals_row4(self, rows):
        assert rows[12].registers == rows[3].registers
        assert rows[12].views == rows[3].views

    def test_views_incomparable_forever(self, rows):
        final = rows[-1]
        p2_view, p3_view = final.views[1], final.views[2]
        assert not (p2_view <= p3_view or p3_view <= p2_view)

    def test_format_table_renders_all_rows(self, rows):
        text = format_figure2_table(rows)
        assert text.count("\n") == 13  # header + 13 rows
        assert "overwrites" in text


class TestFigure2Lasso:
    @pytest.fixture(scope="class")
    def result(self):
        runner = build_figure2_runner(detect_lasso=True)
        return runner.run(100_000)

    def test_lasso_certified(self, result):
        assert result.lasso is not None

    def test_cycle_is_rows_5_to_13(self, result):
        # Rows 5-13 are nine write+scan iterations = 36 steps.
        assert result.lasso.cycle_length == 36

    def test_all_three_processors_live(self, result):
        assert result.lasso.cycle_pids == (0, 1, 2)

    def test_stable_views_match_paper(self, result):
        views = stable_views_of_lasso(result)
        assert views == {0: view(1), 1: view(1, 2), 2: view(1, 3)}


class TestFigure2StableViewGraph:
    @pytest.fixture(scope="class")
    def graph(self):
        runner = build_figure2_runner(detect_lasso=True)
        return stable_view_graph_from_lasso(runner.run(100_000))

    def test_vertices(self, graph):
        assert graph.vertices == {view(1), view(1, 2), view(1, 3)}

    def test_edges(self, graph):
        assert graph.edges == {
            (view(1), view(1, 2)),
            (view(1), view(1, 3)),
        }

    def test_dag_with_unique_source(self, graph):
        assert graph.is_dag()
        assert graph.has_unique_source()
        assert graph.sources() == [view(1)]

    def test_networkx_export(self, graph):
        nx_graph = graph.to_networkx()
        assert nx_graph.number_of_nodes() == 3
        assert nx_graph.number_of_edges() == 2

    def test_describe_mentions_source(self, graph):
        assert "sources" in graph.describe()


class TestScheduleConstruction:
    def test_schedule_length_one_cycle(self):
        # Row 1: 8 steps; rows 2-13: 12 x 4 steps.
        assert len(figure2_schedule(1)) == 8 + 12 * 4

    def test_extra_cycles_append_36_steps_each(self):
        assert len(figure2_schedule(3)) == len(figure2_schedule(1)) + 2 * 36

    def test_wiring_shapes(self):
        wiring = figure2_wiring(5)
        assert wiring.n_processors == 5
        assert wiring.n_registers == 3
        # p1, p, p' share the rotation; p2, p3 the identity.
        assert wiring[0] == wiring[3] == wiring[4]
        assert wiring[1] == wiring[2]
        assert wiring[0] != wiring[1]
