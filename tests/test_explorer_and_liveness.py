"""Tests for the BFS explorer, invariant machinery, and liveness analysis."""

import pytest

from repro.checker import Explorer, SystemSpec
from repro.checker.liveness import check_wait_freedom, certify_wait_free, _scc_ids
from repro.checker.properties import SNAPSHOT_SAFETY
from repro.core import SnapshotMachine, WriteScanMachine
from repro.memory.wiring import WiringAssignment, enumerate_wiring_assignments


class TestExplorerOnSnapshotN2:
    @pytest.fixture(scope="class")
    def exploration(self):
        spec = SystemSpec(
            SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        explorer = Explorer(
            spec, SNAPSHOT_SAFETY, keep_edges=True, collect_final_states=True
        )
        return spec, explorer.run()

    def test_complete_and_safe(self, exploration):
        _, result = exploration
        assert result.complete
        assert result.ok

    def test_state_and_transition_counts_stable(self, exploration):
        """Pin the exact exhaustive counts: any unintended semantic
        change to the algorithm shows up here first."""
        _, result = exploration
        assert result.states == 7235
        assert result.transitions == 15500

    def test_final_states_all_terminated_and_valid(self, exploration):
        spec, result = exploration
        assert result.final_states
        for state in result.final_states:
            assert spec.all_terminated(state)
            outputs = spec.outputs(state)
            assert set(outputs) == {0, 1}
            views = sorted(outputs.values(), key=len)
            assert views[0] <= views[1]

    def test_wait_freedom_certified(self, exploration):
        spec, result = exploration
        assert check_wait_freedom(spec, result) == []
        assert certify_wait_free(spec, result) is None

    def test_both_n2_wirings_safe(self):
        for wiring in enumerate_wiring_assignments(2, 2):
            spec = SystemSpec(SnapshotMachine(2), [1, 2], wiring)
            result = Explorer(spec, SNAPSHOT_SAFETY).run()
            assert result.ok and result.complete


class TestExplorerMechanics:
    def test_budget_makes_exploration_incomplete(self):
        spec = SystemSpec(
            SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        result = Explorer(spec, max_states=100).run()
        assert not result.complete
        assert result.states == 100

    def test_violating_invariant_yields_shortest_path(self):
        spec = SystemSpec(
            SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )

        # An artificial "invariant": no processor ever writes register 1
        # twice... simpler: flag any state where p0's view has 2 inputs.
        def no_full_view(spec_, state):
            if len(state.locals[0].view) == 2:
                return "p0 learned the other input"
            return None

        result = Explorer(spec, [no_full_view]).run()
        assert result.violation is not None
        path = result.violation.path
        assert path, "violation needs a non-empty path"
        # Replay the path and confirm it reaches the violation.
        state = spec.initial_state()
        for action in path:
            _, state = spec.apply(state, action.pid, action.op)
        assert len(state.locals[0].view) == 2
        # BFS guarantees minimality: p0 needs p1's write plus a scan
        # read, plus its own first write to be scanning.
        assert len(path) <= 5

    def test_violation_in_initial_state_detected(self):
        spec = SystemSpec(
            SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        result = Explorer(spec, [lambda s, st: "always broken"]).run()
        assert result.violation is not None
        assert result.violation.path == []
        assert result.states == 1

    def test_liveness_requires_edges(self):
        spec = SystemSpec(
            SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        result = Explorer(spec).run()
        with pytest.raises(ValueError):
            check_wait_freedom(spec, result)

    def test_liveness_requires_complete_exploration(self):
        spec = SystemSpec(
            SnapshotMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        result = Explorer(spec, keep_edges=True, max_states=50).run()
        with pytest.raises(ValueError):
            check_wait_freedom(spec, result)


class TestLivenessDetectsNonTermination:
    def test_write_scan_loop_is_flagged_as_never_terminating(self):
        """The write-scan loop (no levels) runs forever: every processor
        has a bad lasso.  This validates the liveness analysis itself —
        the same machinery that certifies the snapshot algorithm
        wait-free must flag the loop without termination."""
        spec = SystemSpec(
            WriteScanMachine(2), [1, 2], WiringAssignment.identity(2, 2)
        )
        result = Explorer(spec, keep_edges=True).run()
        assert result.complete
        violations = check_wait_freedom(spec, result)
        assert {v.pid for v in violations} == {0, 1}


class TestSCCHelper:
    def test_simple_cycle(self):
        adjacency = {0: [1], 1: [2], 2: [0]}
        component = _scc_ids(adjacency, 3)
        assert component[0] == component[1] == component[2] != -1

    def test_dag_components_distinct(self):
        adjacency = {0: [1], 1: [2]}
        component = _scc_ids(adjacency, 3)
        assert len({component[0], component[1], component[2]}) == 3

    def test_two_cycles(self):
        adjacency = {0: [1], 1: [0], 2: [3], 3: [2], 1: [0, 2]}
        component = _scc_ids(adjacency, 4)
        assert component[0] == component[1]
        assert component[2] == component[3]
        assert component[0] != component[2]

    def test_self_loop_is_its_own_component(self):
        adjacency = {0: [0]}
        component = _scc_ids(adjacency, 1)
        assert component[0] != -1

    def test_deep_chain_no_recursion_error(self):
        n = 50_000
        adjacency = {i: [i + 1] for i in range(n - 1)}
        component = _scc_ids(adjacency, n)
        assert component[0] != component[n - 1]
