"""Unit and property tests for the write-scan loop (Figure 1)."""


import pytest
from hypothesis import given, settings, strategies as st

from repro.api import run_write_scan
from repro.core.write_scan import PHASE_SCAN, PHASE_WRITE, WriteScanMachine
from repro.sim.ops import Read, Write


@pytest.fixture
def machine():
    return WriteScanMachine(3)


class TestInitialState:
    def test_view_is_own_input(self, machine):
        state = machine.initial_state("x")
        assert state.view == frozenset({"x"})

    def test_starts_in_write_phase_with_all_registers(self, machine):
        state = machine.initial_state(1)
        assert state.phase == PHASE_WRITE
        assert state.unwritten == frozenset({0, 1, 2})

    def test_register_initial_value_is_empty_view(self, machine):
        assert machine.register_initial_value() == frozenset()

    def test_never_outputs(self, machine):
        assert machine.output(machine.initial_state(1)) is None

    def test_rejects_zero_registers(self):
        with pytest.raises(ValueError):
            WriteScanMachine(0)


class TestWritePhase:
    def test_enabled_writes_cover_unwritten(self, machine):
        state = machine.initial_state(1)
        ops = machine.enabled_ops(state)
        assert {op.reg for op in ops} == {0, 1, 2}
        assert all(isinstance(op, Write) for op in ops)

    def test_write_carries_current_view(self, machine):
        state = machine.initial_state(1)
        assert all(op.value == frozenset({1}) for op in machine.enabled_ops(state))

    def test_write_moves_to_scan(self, machine):
        state = machine.initial_state(1)
        new = machine.apply(state, Write(1, state.view), None)
        assert new.phase == PHASE_SCAN
        assert new.scan_pos == 0
        assert new.unwritten == frozenset({0, 2})

    def test_fairness_cycle_refills(self, machine):
        state = machine.initial_state(1)
        # Walk one full cycle: write each register (with scans between).
        written = []
        for _ in range(3):
            op = machine.enabled_ops(state)[0]
            written.append(op.reg)
            state = machine.apply(state, op, None)
            for reg in range(3):
                state = machine.apply(state, Read(reg), frozenset())
        assert sorted(written) == [0, 1, 2]
        assert state.unwritten == frozenset({0, 1, 2})

    def test_disabled_write_rejected(self, machine):
        state = machine.initial_state(1)
        state = machine.apply(state, Write(0, state.view), None)
        with pytest.raises(ValueError):
            machine.apply(state, Write(0, state.view), None)


class TestScanPhase:
    def test_scan_reads_in_local_order(self, machine):
        state = machine.apply(machine.initial_state(1), Write(0, frozenset({1})), None)
        for expected in range(3):
            ops = machine.enabled_ops(state)
            assert ops == (Read(expected),)
            state = machine.apply(state, ops[0], frozenset())
        assert state.phase == PHASE_WRITE

    def test_reads_grow_view(self, machine):
        state = machine.apply(machine.initial_state(1), Write(0, frozenset({1})), None)
        state = machine.apply(state, Read(0), frozenset({2}))
        state = machine.apply(state, Read(1), frozenset({3}))
        state = machine.apply(state, Read(2), frozenset())
        assert state.view == frozenset({1, 2, 3})

    def test_out_of_order_read_rejected(self, machine):
        state = machine.apply(machine.initial_state(1), Write(0, frozenset({1})), None)
        with pytest.raises(ValueError):
            machine.apply(state, Read(2), frozenset())

    def test_read_while_writing_rejected(self, machine):
        state = machine.initial_state(1)
        with pytest.raises(ValueError):
            machine.apply(state, Read(0), frozenset())


class TestViewMonotonicity:
    @given(st.integers(min_value=0, max_value=2**32), st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_views_never_shrink(self, seed, n):
        """Views only grow (the premise of Section 4.2)."""
        from repro.api import build_runner
        from repro.core.write_scan import WriteScanMachine

        machine = WriteScanMachine(n)
        runner = build_runner(machine, list(range(1, n + 1)), seed=seed)
        previous = {p.pid: p.state.view for p in runner.processes}
        for _ in range(200):
            enabled = runner.enabled_pids()
            pick = runner.scheduler.choose(0, enabled)
            runner.step_process(pick)
            for process in runner.processes:
                assert previous[process.pid] <= process.state.view
                previous[process.pid] = process.state.view

    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30, deadline=None)
    def test_views_contain_own_input_and_only_inputs(self, seed):
        result = run_write_scan([10, 20, 30], steps=600, seed=seed)
        for pid, state in result.final_states.items():
            assert (pid + 1) * 10 in state.view
            assert state.view <= {10, 20, 30}

    def test_fair_run_converges_to_full_view(self):
        """Under fair scheduling every view eventually reaches the full
        input set (no adversarial churn)."""
        result = run_write_scan([1, 2, 3, 4], steps=20_000, seed=5)
        for state in result.final_states.values():
            assert state.view == frozenset({1, 2, 3, 4})


class TestRegisterContents:
    def test_registers_only_ever_hold_views_of_inputs(self):
        result = run_write_scan([1, 2, 3], steps=2_000, seed=11)
        for event in result.trace.writes():
            assert event.value <= frozenset({1, 2, 3})

    def test_writer_always_includes_own_input(self):
        result = run_write_scan([1, 2, 3], steps=2_000, seed=12)
        for event in result.trace.writes():
            assert (event.pid + 1) in event.value
